//! Integration checks that the analytic artifacts match the paper
//! exactly, and that key measured relationships from the evaluation hold
//! qualitatively even at test scale.

use cgct::{RegionPermission, RegionState, StorageModel};
use cgct_cache::ReqKind;
use cgct_interconnect::{DistanceClass, LatencyModel};
use cgct_system::{CoherenceMode, Machine, SystemConfig};
use cgct_workloads::by_name;

#[test]
fn table1_broadcast_column() {
    // "Broadcast Needed?" column of Table 1, for data reads.
    use RegionState::*;
    let yes = [Invalid, CleanDirty, DirtyDirty];
    let never = [CleanInvalid, DirtyInvalid];
    let for_modifiable = [CleanClean, DirtyClean];
    for s in yes {
        assert_eq!(s.permission(ReqKind::Read), RegionPermission::Broadcast);
        assert_eq!(
            s.permission(ReqKind::ReadShared),
            RegionPermission::Broadcast
        );
    }
    for s in never {
        assert_ne!(s.permission(ReqKind::Read), RegionPermission::Broadcast);
        assert_ne!(
            s.permission(ReqKind::ReadExclusive),
            RegionPermission::Broadcast
        );
    }
    for s in for_modifiable {
        assert_ne!(
            s.permission(ReqKind::ReadShared),
            RegionPermission::Broadcast
        );
        assert_eq!(
            s.permission(ReqKind::ReadExclusive),
            RegionPermission::Broadcast
        );
    }
}

#[test]
fn table2_exact_reproduction() {
    let m = StorageModel::paper_default();
    // (entries, region, total bits, tag-space %, cache-space %)
    let expected = [
        (4096u64, 256u64, 76u32, 10.2, 1.6),
        (4096, 512, 76, 10.2, 1.6),
        (4096, 1024, 76, 10.2, 1.6),
        (8192, 256, 73, 19.6, 3.0),
        (8192, 512, 73, 19.6, 3.0),
        (8192, 1024, 73, 19.6, 3.0),
        (16384, 256, 71, 38.2, 5.9),
        (16384, 512, 71, 38.2, 5.9),
        (16384, 1024, 71, 38.2, 5.9),
    ];
    for (entries, region, bits, tag_pct, cache_pct) in expected {
        let row = m.row(entries, region);
        assert_eq!(row.total_bits, bits, "{entries}/{region}");
        assert!(
            (row.tag_space_overhead * 100.0 - tag_pct).abs() < 0.5,
            "{entries}/{region}: tag {:.1} vs {tag_pct}",
            row.tag_space_overhead * 100.0
        );
        assert!(
            (row.cache_space_overhead * 100.0 - cache_pct).abs() < 0.1,
            "{entries}/{region}: cache {:.2} vs {cache_pct}",
            row.cache_space_overhead * 100.0
        );
    }
}

#[test]
fn figure6_exact_scenarios() {
    let lat = LatencyModel::paper_default();
    // System-cycle totals straight from Figure 6.
    assert_eq!(lat.snoop_memory_access(DistanceClass::SameChip), 250);
    assert_eq!(lat.snoop_memory_access(DistanceClass::SameSwitch), 250);
    assert_eq!(lat.snoop_memory_access(DistanceClass::SameBoard), 300);
    assert_eq!(lat.snoop_memory_access(DistanceClass::Remote), 350);
    assert_eq!(lat.direct_memory_access(DistanceClass::SameChip), 181); // "~18 cycles"
    assert_eq!(lat.direct_memory_access(DistanceClass::SameSwitch), 200);
    assert_eq!(lat.direct_memory_access(DistanceClass::SameBoard), 270);
    assert_eq!(lat.direct_memory_access(DistanceClass::Remote), 340);
}

#[test]
fn upgrades_and_dcbz_complete_without_external_requests_in_exclusive_regions() {
    // §1.2: "Some requests that do not require a data transfer, such as
    // requests to upgrade a shared copy to a modifiable state and DCB
    // operations, can be completed immediately without an external
    // request."
    for s in [RegionState::CleanInvalid, RegionState::DirtyInvalid] {
        assert_eq!(
            s.permission(ReqKind::Upgrade),
            RegionPermission::CompleteLocally
        );
        assert_eq!(
            s.permission(ReqKind::Dcbz),
            RegionPermission::CompleteLocally
        );
    }
}

#[test]
fn measured_rca_evictions_favor_empty_regions() {
    // §3.2: "an average of 65.1% empty evicted regions, followed by 17.2%
    // and 5.1% having only one or two cached lines". Reproducing the
    // eviction-steady-state statistic needs the paper's 8:1
    // RCA-reach-to-cache ratio with real pressure, so this runs the
    // quarter-scale system (256 KB L2, 2K-set RCA). The run must be long
    // enough for the RCA to cycle well past its reach: shorter runs see
    // only the first conflict evictions among hot (non-empty) regions
    // and report a misleadingly low empty fraction.
    let mut cfg = SystemConfig::quarter_scale(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    cfg.perturbation = 0;
    let spec = by_name("tpc-w").unwrap();
    let mut m = Machine::new(cfg, &spec, 3);
    let r = m.run_warmed(50_000, 100_000, 400_000_000);
    assert!(r.rca.evictions >= 100, "only {} evictions", r.rca.evictions);
    assert!(
        r.rca.evicted_empty_fraction > 0.35,
        "empty fraction {:.2}",
        r.rca.evicted_empty_fraction
    );
    assert!(
        r.rca.evicted_empty_fraction > r.rca.evicted_one_line_fraction,
        "empty {:.2} should exceed one-line {:.2}",
        r.rca.evicted_empty_fraction,
        r.rca.evicted_one_line_fraction
    );
    m.check_invariants().unwrap();
}

#[test]
fn measured_lines_per_region_in_paper_band() {
    // §5.2: "the average number of lines cached per region ranges from
    // 2.8 to 5" — allow a wider band at test scale.
    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    cfg.perturbation = 0;
    let spec = by_name("ocean").unwrap();
    let mut m = Machine::new(cfg, &spec, 3);
    let r = m.run(5_000, 10_000_000);
    assert!(
        r.rca.mean_lines_per_region > 1.0 && r.rca.mean_lines_per_region <= 8.0,
        "lines/region {:.2}",
        r.rca.mean_lines_per_region
    );
}

#[test]
fn self_invalidation_mechanism_fires_only_when_enabled() {
    // §3.1's self-invalidation. The mechanism must fire under migratory
    // pressure when enabled and never when disabled (its aggregate
    // performance effect is workload-dependent; see EXPERIMENTS.md).
    let spec = by_name("tpc-b").unwrap();
    let mode = CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    };
    let mut with = SystemConfig::quarter_scale(mode);
    with.perturbation = 0;
    let mut without = with.clone();
    without.self_invalidation = false;
    let r_with = Machine::new(with, &spec, 5).run_warmed(10_000, 10_000, 100_000_000);
    let r_without = Machine::new(without, &spec, 5).run_warmed(10_000, 10_000, 100_000_000);
    assert!(
        r_with.rca.self_invalidations > 0,
        "self-invalidation never fired"
    );
    assert_eq!(r_without.rca.self_invalidations, 0);
    // Both configurations remain coherent and effective.
    assert!(r_with.metrics.avoided_fraction() > 0.2);
    assert!(r_without.metrics.avoided_fraction() > 0.2);
}
