//! Semantics of the machine-level runner: warmup epochs, trace-driven
//! sources, and aggregate accounting.

use cgct_cpu::{Uop, UopKind, UopSource};
use cgct_system::{run_averaged, CoherenceMode, Machine, RunPlan, SystemConfig};
use cgct_workloads::{by_name, trace, WorkloadThread};

fn cfg(mode: CoherenceMode) -> SystemConfig {
    let mut c = SystemConfig::paper_default(mode);
    c.perturbation = 0;
    c
}

#[test]
fn warmup_resets_measurement_but_keeps_cache_state() {
    let spec = by_name("specweb99").unwrap();
    // Measured-only run vs warmed run of the same total length: the
    // warmed measurement must see far fewer cold misses per instruction.
    let mut cold = Machine::new(cfg(CoherenceMode::Baseline), &spec, 1);
    let rc = cold.run_warmed(0, 4_000, 50_000_000);
    let mut warm = Machine::new(cfg(CoherenceMode::Baseline), &spec, 1);
    let rw = warm.run_warmed(8_000, 4_000, 50_000_000);
    let cold_mpki = rc.metrics.l2_misses as f64 / rc.committed as f64;
    let warm_mpki = rw.metrics.l2_misses as f64 / rw.committed as f64;
    assert!(
        warm_mpki < cold_mpki,
        "warm {warm_mpki:.4} should be below cold {cold_mpki:.4}"
    );
    // The measured runtime excludes the warmup cycles.
    assert!(rw.runtime_cycles < warm.now().0);
}

#[test]
fn committed_counts_measured_instructions_only() {
    let spec = by_name("ocean").unwrap();
    let mut m = Machine::new(cfg(CoherenceMode::Baseline), &spec, 2);
    let r = m.run_warmed(3_000, 2_000, 50_000_000);
    // The reported count is what the cores actually committed during
    // the measured phase: within one tick's commit width of the quota
    // on either side (the warmup and measured phases each stop at tick
    // granularity, so a core can enter the measured phase slightly
    // ahead or leave it slightly over).
    assert_eq!(r.committed_per_core.len(), 4);
    for &c in &r.committed_per_core {
        assert!((1_936..2_064).contains(&c), "per-core committed {c}");
    }
    assert_eq!(r.committed, r.committed_per_core.iter().sum::<u64>());
}

#[test]
fn truncated_run_reports_actual_committed_and_ipc() {
    // Deliberately truncate: the cycle cap lands mid-measurement, so
    // cores commit only part of their quota. `committed` and `ipc`
    // must reflect what actually happened, not the target count (the
    // old accounting reported quota * n — wildly inflating IPC on
    // truncated runs).
    let spec = by_name("ocean").unwrap();
    let mut m = Machine::new(cfg(CoherenceMode::Baseline), &spec, 2);
    let r = m.run_warmed(1_000, 1_000_000, 20_000);
    assert!(r.truncated);
    let measured: u64 = r.committed_per_core.iter().sum();
    assert_eq!(r.committed, measured);
    assert!(
        r.committed < 4 * 1_000_000,
        "a truncated run cannot have committed its full quota"
    );
    for &c in &r.committed_per_core {
        assert!(c > 0, "every core ran for some of the measured phase");
    }
    let n = r.committed_per_core.len() as u64;
    let expected_ipc = r.committed as f64 / (r.runtime_cycles as f64 * n as f64);
    assert!((r.ipc - expected_ipc).abs() < 1e-12, "ipc {}", r.ipc);
    // Sanity bound: per-core IPC can never exceed the commit width.
    assert!(r.ipc > 0.0 && r.ipc < 8.0);
}

#[test]
fn run_averaged_confidence_interval_brackets_each_run() {
    let spec = by_name("barnes").unwrap();
    let mut config = SystemConfig::paper_default(CoherenceMode::Baseline);
    config.perturbation = 3;
    let plan = RunPlan {
        warmup_per_core: 1_000,
        instructions_per_core: 2_000,
        max_cycles: 50_000_000,
        runs: 3,
        base_seed: 1,
    };
    let agg = run_averaged(&config, &spec, &plan);
    let ci = agg.runtime.confidence_interval_95();
    assert!(ci.contains(agg.runtime.mean()));
    assert!(agg.runtime.min() >= ci.low - 1.0 || agg.runtime.max() <= ci.high + 1.0);
    assert_eq!(agg.runs.len(), 3);
}

#[test]
fn trace_driven_machine_is_deterministic() {
    // Record one trace, replay it twice: identical runs.
    let spec = by_name("raytrace").unwrap();
    let texts: Vec<String> = (0..4)
        .map(|c| {
            let mut src = WorkloadThread::new(spec.clone(), c, 4, 5);
            trace::to_jsonl(&trace::record(&mut src, 5_000)).unwrap()
        })
        .collect();
    let run = || {
        let sources: Vec<Box<dyn UopSource + Send>> = texts
            .iter()
            .map(|t| {
                Box::new(trace::TraceThread::from_jsonl(t).unwrap()) as Box<dyn UopSource + Send>
            })
            .collect();
        let mut m = Machine::from_sources(
            cfg(CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            }),
            sources,
            "trace",
            7,
        );
        let r = m.run(2_000, 50_000_000);
        m.check_invariants().unwrap();
        (
            r.runtime_cycles,
            r.metrics.broadcasts,
            r.metrics.direct.total(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn synthetic_uop_source_closure_drives_machine() {
    // Machine::from_sources accepts arbitrary sources — here a pure
    // closure stream of private strided loads.
    let mk = |core: usize| {
        let mut pc = 0u64;
        let base = 0x1000_0000u64 * (core as u64 + 1);
        move || {
            pc += 4;
            if pc.is_multiple_of(3) {
                Uop::simple(
                    pc,
                    UopKind::Load {
                        addr: cgct_cache::Addr(base + (pc * 16) % 0x8000),
                        store_intent: false,
                    },
                )
            } else {
                Uop::simple(pc, UopKind::IntAlu)
            }
        }
    };
    let sources: Vec<Box<dyn UopSource + Send>> = (0..4)
        .map(|c| Box::new(mk(c)) as Box<dyn UopSource + Send>)
        .collect();
    let mut m = Machine::from_sources(
        cfg(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        }),
        sources,
        "closures",
        1,
    );
    let r = m.run(3_000, 50_000_000);
    assert!(!r.truncated);
    // Fully private streams: CGCT avoids nearly everything after the
    // first touch of each region.
    assert!(
        r.metrics.avoided_fraction() > 0.5,
        "avoided {:.2}",
        r.metrics.avoided_fraction()
    );
    m.check_invariants().unwrap();
}

#[test]
#[should_panic(expected = "one source per core")]
fn from_sources_validates_core_count() {
    let sources: Vec<Box<dyn UopSource + Send>> = vec![];
    let _ = Machine::from_sources(cfg(CoherenceMode::Baseline), sources, "empty", 0);
}
