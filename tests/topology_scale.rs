//! Larger-topology integration tests: the 16-core two-board machine
//! exercises all four distance classes and a shared address network under
//! four times the load.

use cgct_interconnect::Topology;
use cgct_system::{CoherenceMode, Machine, SystemConfig};
use cgct_workloads::by_name;

fn sixteen_core_cfg(mode: CoherenceMode) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default(mode);
    cfg.topology = Topology::two_boards();
    cfg.perturbation = 0;
    cfg
}

#[test]
fn sixteen_cores_run_and_hold_invariants() {
    for mode in [
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
    ] {
        let spec = by_name("specjbb2000").unwrap();
        let mut m = Machine::new(sixteen_core_cfg(mode), &spec, 1);
        let r = m.run(800, 10_000_000);
        assert!(!r.truncated, "{}", mode.label());
        assert!(r.committed >= 16 * 800);
        m.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
    }
}

#[test]
fn cgct_relieves_the_shared_bus_at_scale() {
    let spec = by_name("tpc-w").unwrap();
    let base =
        Machine::new(sixteen_core_cfg(CoherenceMode::Baseline), &spec, 2).run(1_000, 20_000_000);
    let cgct = Machine::new(
        sixteen_core_cfg(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        }),
        &spec,
        2,
    )
    .run(1_000, 20_000_000);
    assert!(
        cgct.metrics.broadcasts < base.metrics.broadcasts,
        "{} vs {}",
        cgct.metrics.broadcasts,
        base.metrics.broadcasts
    );
    assert!(cgct.runtime_cycles <= base.runtime_cycles);
}

#[test]
fn remote_sharing_crosses_boards_correctly() {
    use cgct_cache::Addr;
    use cgct_interconnect::CoreId;
    use cgct_sim::Cycle;
    use cgct_system::MemorySystem;

    let mut cfg = sixteen_core_cfg(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    cfg.stream_prefetch = false;
    let mut mem = MemorySystem::new(cfg, 1);
    let a = Addr(0x9000);
    // Core 0 (board 0) dirties a line; core 15 (board 1) reads it:
    // a remote cache-to-cache transfer.
    mem.store(CoreId(0), Cycle(0), a);
    let t0 = Cycle(10_000);
    let done = mem.load(CoreId(15), t0, a, false);
    assert!(mem.metrics.cache_to_cache >= 1);
    // Remote c2c costs snoop (160) + remote transfer (120) = 280 cycles
    // plus L2/bus overhead.
    assert!(done - t0 >= 280, "remote transfer too fast: {}", done - t0);
    mem.check_invariants().unwrap();
}

#[test]
fn owner_prediction_works_at_machine_scale() {
    let spec = by_name("tpc-h").unwrap(); // cache-to-cache heavy merge
    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    cfg.perturbation = 0;
    cfg.owner_prediction = true;
    let mut m = Machine::new(cfg, &spec, 3);
    let r = m.run_warmed(4_000, 4_000, 20_000_000);
    assert!(
        r.metrics.owner_prediction_hits + r.metrics.owner_prediction_misses > 0,
        "predictor never consulted"
    );
    m.check_invariants().unwrap();
}
