//! Cross-crate integration tests: whole-machine runs of every benchmark
//! under every coherence mode, with the global invariants checked.

use cgct_system::{CoherenceMode, Machine, SystemConfig};
use cgct_workloads::{all_benchmarks, by_name};

const INSTR: u64 = 2_500;
const MAX_CYCLES: u64 = 8_000_000;

fn machine(mode: CoherenceMode, bench: &str, seed: u64) -> Machine {
    let mut cfg = SystemConfig::paper_default(mode);
    cfg.perturbation = 0;
    let spec = by_name(bench).expect("benchmark exists");
    Machine::new(cfg, &spec, seed)
}

const MODES: [CoherenceMode; 4] = [
    CoherenceMode::Baseline,
    CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    },
    CoherenceMode::Scaled {
        region_bytes: 512,
        sets: 8192,
    },
    CoherenceMode::RegionScout { region_bytes: 512 },
];

#[test]
fn every_benchmark_runs_under_every_mode() {
    for spec in all_benchmarks() {
        for mode in MODES {
            let mut m = machine(mode, spec.name, 1);
            let r = m.run(1_000, MAX_CYCLES);
            assert!(
                !r.truncated,
                "{} under {} truncated",
                spec.name,
                mode.label()
            );
            assert!(
                r.committed >= 4_000,
                "{}: {} committed",
                spec.name,
                r.committed
            );
            m.check_invariants()
                .unwrap_or_else(|e| panic!("{} under {}: {e}", spec.name, mode.label()));
        }
    }
}

#[test]
fn cgct_never_increases_broadcasts() {
    for bench in ["ocean", "specint2000rate", "tpc-w"] {
        let base = machine(CoherenceMode::Baseline, bench, 3).run(INSTR, MAX_CYCLES);
        let cgct = machine(
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
            bench,
            3,
        )
        .run(INSTR, MAX_CYCLES);
        assert!(
            cgct.metrics.broadcasts < base.metrics.broadcasts,
            "{bench}: {} vs {}",
            cgct.metrics.broadcasts,
            base.metrics.broadcasts
        );
    }
}

#[test]
fn all_tracking_modes_reduce_traffic_in_order_of_precision() {
    // The full 7-state RCA captures at least as much as the scaled 3-state
    // variant, which in turn beats the tiny RegionScout filter, on a
    // private-heavy workload.
    let bench = "specint2000rate";
    let base = machine(CoherenceMode::Baseline, bench, 5).run(INSTR, MAX_CYCLES);
    let results: Vec<u64> = MODES[1..]
        .iter()
        .map(|&mode| {
            machine(mode, bench, 5)
                .run(INSTR, MAX_CYCLES)
                .metrics
                .broadcasts
        })
        .collect();
    let (cgct, scaled, scout) = (results[0], results[1], results[2]);
    assert!(cgct < base.metrics.broadcasts);
    assert!(scaled < base.metrics.broadcasts);
    assert!(scout < base.metrics.broadcasts);
    // Precision ordering (allow 10% slack for small-run noise).
    assert!(
        (cgct as f64) < scaled as f64 * 1.1,
        "7-state {cgct} should be <= scaled {scaled}"
    );
    assert!(
        (scaled as f64) < scout as f64 * 1.1,
        "scaled {scaled} should be <= scout {scout}"
    );
}

#[test]
fn multiprogrammed_mix_has_more_opportunity_than_fine_grain_sharing() {
    // Figure 2's extremes: SPECint-rate (private everything) vs Barnes
    // (fine-grain sharing).
    let specint = machine(CoherenceMode::Baseline, "specint2000rate", 2).run(INSTR, MAX_CYCLES);
    let barnes = machine(CoherenceMode::Baseline, "barnes", 2).run(INSTR, MAX_CYCLES);
    assert!(
        specint.metrics.unnecessary_fraction() > barnes.metrics.unnecessary_fraction(),
        "specint {:.2} should exceed barnes {:.2}",
        specint.metrics.unnecessary_fraction(),
        barnes.metrics.unnecessary_fraction()
    );
}

#[test]
fn region_size_sweep_all_complete_with_invariants() {
    for region_bytes in [256, 512, 1024] {
        let mut m = machine(
            CoherenceMode::Cgct {
                region_bytes,
                sets: 8192,
            },
            "tpc-b",
            4,
        );
        let r = m.run(INSTR, MAX_CYCLES);
        assert!(!r.truncated);
        assert!(
            r.metrics.avoided_fraction() > 0.05,
            "{region_bytes}B avoided nothing"
        );
        m.check_invariants().unwrap();
    }
}

#[test]
fn half_size_rca_still_effective() {
    let full = machine(
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
        "specjbb2000",
        6,
    )
    .run(INSTR, MAX_CYCLES);
    let half = machine(
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 4096,
        },
        "specjbb2000",
        6,
    )
    .run(INSTR, MAX_CYCLES);
    // Figure 9: halving the array loses only a little effectiveness.
    assert!(half.metrics.avoided_fraction() > full.metrics.avoided_fraction() * 0.5);
}

#[test]
fn runs_are_deterministic_per_seed_across_modes() {
    for mode in MODES {
        let a = machine(mode, "raytrace", 11).run(1_500, MAX_CYCLES);
        let b = machine(mode, "raytrace", 11).run(1_500, MAX_CYCLES);
        assert_eq!(a.runtime_cycles, b.runtime_cycles, "{}", mode.label());
        assert_eq!(a.metrics.broadcasts, b.metrics.broadcasts);
        assert_eq!(a.metrics.requests.total(), b.metrics.requests.total());
    }
}

#[test]
fn directory_mode_runs_all_benchmarks_without_broadcasts() {
    for spec in all_benchmarks() {
        let mut m = machine(CoherenceMode::Directory, spec.name, 9);
        let r = m.run(1_000, MAX_CYCLES);
        assert!(!r.truncated, "{}", spec.name);
        assert_eq!(r.metrics.broadcasts, 0, "{}", spec.name);
        m.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn snooping_beats_directory_on_cache_to_cache_transfers() {
    // The paper (1.2): a directory pays three hops (request -> home DRAM
    // lookup -> owner -> requester) for dirty data; the snooping
    // broadcast finds the owner in one snoop. Measure the exact transfer.
    use cgct_cache::Addr;
    use cgct_interconnect::CoreId;
    use cgct_sim::Cycle;
    use cgct_system::MemorySystem;

    let c2c_latency = |mode: CoherenceMode| {
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        let mut mem = MemorySystem::new(cfg, 1);
        let a = Addr(0xC000);
        mem.store(CoreId(0), Cycle(0), a);
        let t0 = Cycle(10_000);
        let done = mem.load(CoreId(2), t0, a, false);
        mem.check_invariants().unwrap();
        done - t0
    };
    let snoop = c2c_latency(CoherenceMode::Baseline);
    let dir = c2c_latency(CoherenceMode::Directory);
    assert!(
        snoop < dir,
        "snooped c2c ({snoop}) should beat the directory 3-hop ({dir})"
    );

    // ...while both serve unshared data with comparable low latency
    // (the directory benefit CGCT replicates on a broadcast machine).
    let unshared_latency = |mode: CoherenceMode| {
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        let mut mem = MemorySystem::new(cfg, 1);
        // Touch the region first so CGCT's second access goes direct.
        mem.load(CoreId(0), Cycle(0), Addr(0xE000), false);
        let t0 = Cycle(10_000);
        let done = mem.load(CoreId(0), t0, Addr(0xE000 + 64), false);
        done - t0
    };
    let cgct = unshared_latency(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    let dir_unshared = unshared_latency(CoherenceMode::Directory);
    let dir_cgct = unshared_latency(CoherenceMode::DirectoryCgct {
        region_bytes: 512,
        sets: 8192,
    });
    let snoop_unshared = unshared_latency(CoherenceMode::Baseline);
    assert!(
        cgct < snoop_unshared,
        "cgct {cgct} vs snoop {snoop_unshared}"
    );
    // The flat directory serializes its in-memory lookup before the
    // data access, so it loses the unshared race to the snooping bus —
    // the region-tracking directory's lookup bypass wins it back.
    assert!(
        dir_unshared > snoop_unshared,
        "directory {dir_unshared} vs snoop {snoop_unshared}"
    );
    assert!(
        dir_cgct < dir_unshared,
        "dir-cgct {dir_cgct} vs directory {dir_unshared}"
    );
    assert!(
        dir_cgct < snoop_unshared,
        "dir-cgct {dir_cgct} vs snoop {snoop_unshared}"
    );
}

#[test]
fn writeback_direct_routing_requires_region_state() {
    // Baseline write-backs always broadcast; CGCT routes them direct
    // using the memory-controller index in the region entry (§5.1).
    // Dirty lines are forced out via set conflicts in the 2-way L2.
    use cgct_cache::Addr;
    use cgct_interconnect::CoreId;
    use cgct_sim::Cycle;
    use cgct_system::MemorySystem;

    for (mode, expect_direct) in [
        (CoherenceMode::Baseline, false),
        (
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
            true,
        ),
    ] {
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        let mut mem = MemorySystem::new(cfg, 1);
        let l2_span = 8192 * 64; // lines that conflict in the same set
        let mut now = Cycle(0);
        for i in 0..32u64 {
            let set_base = 0x10_0000 + i * 64;
            mem.store(CoreId(0), now, Addr(set_base));
            now += 1000;
            // Two conflicting fills evict the dirty line (2 ways).
            mem.load(CoreId(0), now, Addr(set_base + l2_span), false);
            now += 1000;
            mem.load(CoreId(0), now, Addr(set_base + 2 * l2_span), false);
            now += 1000;
        }
        assert!(
            mem.metrics.requests.writeback >= 32,
            "{}: only {} write-backs",
            mode.label(),
            mem.metrics.requests.writeback
        );
        if expect_direct {
            assert!(
                mem.metrics.direct.writeback * 2 > mem.metrics.requests.writeback,
                "most write-backs should go direct: {}/{}",
                mem.metrics.direct.writeback,
                mem.metrics.requests.writeback
            );
        } else {
            assert_eq!(mem.metrics.direct.writeback, 0);
        }
        mem.check_invariants().unwrap();
    }
}
