//! Property-based safety tests: arbitrary request interleavings must
//! preserve every coherence, inclusion, and exclusivity invariant — and
//! debug builds additionally assert that no broadcast bypass is ever
//! unsafe (see `MemorySystem::assert_direct_is_safe`).

use cgct_cache::Addr;
use cgct_interconnect::CoreId;
use cgct_sim::check::{check, gen_vec};
use cgct_sim::{Cycle, Xoshiro256pp};
use cgct_system::{CoherenceMode, MemorySystem, SystemConfig};

/// One memory operation in a generated scenario.
#[derive(Debug, Clone, Copy)]
enum Op {
    Load { core: u8, slot: u16, intent: bool },
    Store { core: u8, slot: u16 },
    Ifetch { core: u8, slot: u16 },
    Dcbz { core: u8, slot: u16 },
}

fn gen_op(g: &mut Xoshiro256pp, cores: u8, slots: u16) -> Op {
    let core = g.gen_range(0..cores);
    let slot = g.gen_range(0..slots);
    match g.gen_range(0u8..4) {
        0 => Op::Load {
            core,
            slot,
            intent: g.gen_bool(0.5),
        },
        1 => Op::Store { core, slot },
        2 => Op::Ifetch { core, slot },
        _ => Op::Dcbz { core, slot },
    }
}

/// Maps slots to addresses that deliberately collide in regions and in
/// cache sets: slots cover few regions so cores constantly interact.
fn addr_of(slot: u16) -> Addr {
    // 64 lines spread over 8 regions (512 B) with set collisions.
    let line = (slot as u64) % 64;
    Addr(0x10_000 + line * 64)
}

fn apply(mem: &mut MemorySystem, now: Cycle, op: Op) {
    match op {
        Op::Load { core, slot, intent } => {
            mem.load(CoreId(core as usize), now, addr_of(slot), intent);
        }
        Op::Store { core, slot } => {
            mem.store(CoreId(core as usize), now, addr_of(slot));
        }
        Op::Ifetch { core, slot } => {
            mem.ifetch(CoreId(core as usize), now, addr_of(slot));
        }
        Op::Dcbz { core, slot } => {
            mem.dcbz(CoreId(core as usize), now, addr_of(slot));
        }
    }
}

fn run_scenario(mode: CoherenceMode, ops: &[Op]) {
    let mut cfg = SystemConfig::paper_default(mode);
    cfg.perturbation = 0;
    let mut mem = MemorySystem::new(cfg, 1);
    let mut now = Cycle(0);
    for (i, op) in ops.iter().enumerate() {
        apply(&mut mem, now, *op);
        now += 7;
        if i % 64 == 63 {
            mem.check_invariants().expect("mid-run invariants");
        }
    }
    mem.check_invariants().expect("final invariants");
}

/// Runs `cases` generated scenarios of up to `max_ops` ops in `mode`.
fn check_mode(name: &str, mode: CoherenceMode, max_ops: usize) {
    check(name, 64, |g| {
        let ops = gen_vec(g, 1..max_ops, |g| gen_op(g, 4, 256));
        run_scenario(mode, &ops);
    });
}

#[test]
fn cgct_invariants_hold_for_arbitrary_interleavings() {
    check_mode(
        "safety::cgct_invariants_hold_for_arbitrary_interleavings",
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
        400,
    );
}

#[test]
fn cgct_small_regions_invariants() {
    check_mode(
        "safety::cgct_small_regions_invariants",
        CoherenceMode::Cgct {
            region_bytes: 256,
            sets: 8192,
        },
        300,
    );
}

#[test]
fn cgct_large_regions_invariants() {
    check_mode(
        "safety::cgct_large_regions_invariants",
        CoherenceMode::Cgct {
            region_bytes: 1024,
            sets: 8192,
        },
        300,
    );
}

#[test]
fn scaled_protocol_invariants() {
    check_mode(
        "safety::scaled_protocol_invariants",
        CoherenceMode::Scaled {
            region_bytes: 512,
            sets: 8192,
        },
        300,
    );
}

#[test]
fn regionscout_invariants() {
    check_mode(
        "safety::regionscout_invariants",
        CoherenceMode::RegionScout { region_bytes: 512 },
        300,
    );
}

#[test]
fn baseline_invariants() {
    check_mode("safety::baseline_invariants", CoherenceMode::Baseline, 300);
}

#[test]
fn directory_invariants() {
    check_mode(
        "safety::directory_invariants",
        CoherenceMode::Directory,
        300,
    );
}

/// All §6 extensions enabled at once (owner prediction, prefetch
/// filter, DRAM-speculation filter) must preserve every invariant.
#[test]
fn extensions_preserve_invariants() {
    check("safety::extensions_preserve_invariants", 64, |g| {
        let ops = gen_vec(g, 1..300, |g| gen_op(g, 4, 256));
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.perturbation = 0;
        cfg.owner_prediction = true;
        cfg.region_prefetch_filter = true;
        cfg.dram_speculation_filter = true;
        cfg.shared_read_bypass = true;
        let mut mem = MemorySystem::new(cfg, 1);
        let mut now = Cycle(0);
        for op in &ops {
            apply(&mut mem, now, *op);
            now += 7;
        }
        mem.check_invariants().expect("invariants with extensions");
    });
}

/// A tiny RCA (2 sets) forces constant region evictions and
/// inclusion flushes — the stress case for the line counts.
#[test]
fn tiny_rca_forces_inclusion_machinery() {
    check("safety::tiny_rca_forces_inclusion_machinery", 64, |g| {
        let ops = gen_vec(g, 1..300, |g| gen_op(g, 4, 512));
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.perturbation = 0;
        // Shrink the RCA indirectly by shrinking its source config: use a
        // dedicated mode with few sets.
        cfg.mode = CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 2,
        };
        let mut mem = MemorySystem::new(cfg, 1);
        let mut now = Cycle(0);
        for op in &ops {
            apply(&mut mem, now, *op);
            now += 7;
        }
        mem.check_invariants().expect("invariants with tiny RCA");
    });
}

#[test]
fn deterministic_scenario_replay() {
    // The same scenario must produce byte-identical metrics.
    let ops: Vec<Op> = (0..200)
        .map(|i| match i % 4 {
            0 => Op::Load {
                core: (i % 4) as u8,
                slot: (i * 7 % 256) as u16,
                intent: i % 8 == 0,
            },
            1 => Op::Store {
                core: (i % 3) as u8,
                slot: (i * 13 % 256) as u16,
            },
            2 => Op::Ifetch {
                core: (i % 4) as u8,
                slot: (i * 3 % 64) as u16,
            },
            _ => Op::Dcbz {
                core: (i % 2) as u8,
                slot: (i * 11 % 256) as u16,
            },
        })
        .collect();
    let snapshot = |ops: &[Op]| {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.perturbation = 0;
        let mut mem = MemorySystem::new(cfg, 9);
        let mut now = Cycle(0);
        for op in ops {
            apply(&mut mem, now, *op);
            now += 5;
        }
        (
            mem.metrics.broadcasts,
            mem.metrics.requests.total(),
            mem.metrics.direct.total(),
            mem.metrics.local.total(),
        )
    };
    assert_eq!(snapshot(&ops), snapshot(&ops));
}
