//! Umbrella crate for the CGCT reproduction workspace.
//!
//! Re-exports the public API of each member crate so that examples and
//! integration tests can use a single import root.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use cgct as core;
pub use cgct_cache as cache;
pub use cgct_cpu as cpu;
pub use cgct_interconnect as interconnect;
pub use cgct_sim as sim;
pub use cgct_system as system;
pub use cgct_workloads as workloads;
