//! Design-space what-ifs without running the simulator: the analytic
//! models behind Table 2 (RCA storage overhead) and Figure 6 (latency
//! scenarios), applied to configurations beyond the paper's.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use cgct::StorageModel;
use cgct_interconnect::{DistanceClass, LatencyModel};

fn main() {
    println!("== RCA storage overhead (Table 2 model) ==\n");
    let model = StorageModel::paper_default();
    println!("entries  region   bits/set  tag-space  cache-space");
    for row in model.table2() {
        println!(
            "{:>6}  {:>5} B   {:>7}   {:>7.1}%   {:>9.1}%",
            row.entries,
            row.region_bytes,
            row.total_bits,
            row.tag_space_overhead * 100.0,
            row.cache_space_overhead * 100.0
        );
    }

    // Beyond the paper: a 2 MB L2 with 128-byte lines (Power-style).
    println!("\nWhat if the cache had 128B lines (like IBM Power)?");
    let power_style = StorageModel {
        phys_addr_bits: 40,
        cache_sets: 8192,
        cache_ways: 2,
        cache_line_bytes: 128,
        rca_ways: 2,
    };
    let r = power_style.row(16 * 1024, 512);
    println!(
        "  16K entries, 512B regions: {:.1}% of cache space (paper notes the\n  relative overhead is less for 128-byte-line systems)",
        r.cache_space_overhead * 100.0
    );

    println!("\n== Memory latency scenarios (Figure 6 model) ==\n");
    let lat = LatencyModel::paper_default();
    println!("location       snooped   direct   advantage");
    for d in DistanceClass::ALL {
        println!(
            "{:<12}  {:>6}c   {:>5}c   {:>6}c ({:.0}%)",
            format!("{d:?}"),
            lat.snoop_memory_access(d),
            lat.direct_memory_access(d),
            lat.direct_advantage(d),
            100.0 * lat.direct_advantage(d) as f64 / lat.snoop_memory_access(d) as f64
        );
    }

    println!("\nWhat if DRAM were twice as fast?");
    let mut fast = LatencyModel::paper_default();
    fast.dram = cgct_sim::SystemCycle(8);
    fast.dram_after_snoop = cgct_sim::SystemCycle(0); // fully hidden by the snoop
    for d in [DistanceClass::SameChip, DistanceClass::Remote] {
        println!(
            "  {:?}: snoop {}c vs direct {}c (advantage {}c)",
            d,
            fast.snoop_memory_access(d),
            fast.direct_memory_access(d),
            fast.direct_advantage(d)
        );
    }
    println!("  -> faster memory shrinks CGCT's latency edge: once DRAM hides");
    println!("     entirely behind the snoop, the direct path's win is the");
    println!("     arbitration/queueing it skips, not raw latency.");
}
