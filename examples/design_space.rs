//! Design-space what-ifs: the analytic models behind Table 2 (RCA
//! storage overhead) and Figure 6 (latency scenarios) applied to
//! configurations beyond the paper's, then a small *simulated* sweep
//! that checks the analytic trade-off against the cycle-level model.
//!
//! ```text
//! cargo run --release --example design_space              # analytic only
//! cargo run --release --example design_space -- sweep     # + simulated sweep
//! CGCT_JOBS=8 cargo run --release --example design_space -- sweep
//! ```
//!
//! The sweep fans its (region size × RCA sets) grid out across the
//! deterministic thread pool; the printed table is identical for any
//! `CGCT_JOBS` value because each grid cell's seed is derived from the
//! cell, never from the worker that ran it.

use cgct::StorageModel;
use cgct_interconnect::{DistanceClass, LatencyModel};
use cgct_sim::pool;
use cgct_system::{run_once, CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::by_name;

/// One cell of the simulated sweep: avoided-broadcast fraction bought
/// per percent of cache space spent on the RCA.
fn sweep(model: &StorageModel) {
    println!("\n== Simulated sweep: coverage bought per storage spent ==\n");
    let spec = by_name("tpc-b").expect("tpc-b is a paper benchmark");
    let plan = RunPlan {
        warmup_per_core: 20_000,
        instructions_per_core: 10_000,
        max_cycles: 20_000_000,
        runs: 1,
        base_seed: 11,
    };
    let grid: Vec<(u64, usize)> = [256u64, 512, 1024]
        .iter()
        .flat_map(|&rb| [2048usize, 8192].map(|sets| (rb, sets)))
        .collect();
    println!(
        "running {} configurations of {} on {} worker(s)...",
        grid.len(),
        spec.name,
        pool::jobs()
    );
    // Each cell is pure: its seed comes from the plan, so results merge
    // in grid order no matter which worker finished first.
    let rows = pool::run(grid, |_, (region_bytes, sets)| {
        let mode = CoherenceMode::Cgct { region_bytes, sets };
        let cfg = SystemConfig::paper_default(mode);
        let r = run_once(&cfg, &spec, plan.seed_for(0), &plan);
        (region_bytes, sets, r.metrics.avoided_fraction())
    });
    println!("\nregion    sets   cache-space   avoided");
    for (region_bytes, sets, avoided) in rows {
        let entries = sets as u64 * model.rca_ways as u64;
        let overhead = model.row(entries, region_bytes).cache_space_overhead;
        println!(
            "{region_bytes:>5} B  {sets:>5}   {:>9.1}%   {:>6.1}%",
            overhead * 100.0,
            avoided * 100.0
        );
    }
    println!("\n(the paper settles on 512 B x 8192 sets — but note how little");
    println!(" coverage the quarter-size RCA gives up: replacement favors");
    println!(" empty regions, so a smaller array still covers the hot set)");
}

fn main() {
    println!("== RCA storage overhead (Table 2 model) ==\n");
    let model = StorageModel::paper_default();
    println!("entries  region   bits/set  tag-space  cache-space");
    for row in model.table2() {
        println!(
            "{:>6}  {:>5} B   {:>7}   {:>7.1}%   {:>9.1}%",
            row.entries,
            row.region_bytes,
            row.total_bits,
            row.tag_space_overhead * 100.0,
            row.cache_space_overhead * 100.0
        );
    }

    // Beyond the paper: a 2 MB L2 with 128-byte lines (Power-style).
    println!("\nWhat if the cache had 128B lines (like IBM Power)?");
    let power_style = StorageModel {
        phys_addr_bits: 40,
        cache_sets: 8192,
        cache_ways: 2,
        cache_line_bytes: 128,
        rca_ways: 2,
    };
    let r = power_style.row(16 * 1024, 512);
    println!(
        "  16K entries, 512B regions: {:.1}% of cache space (paper notes the\n  relative overhead is less for 128-byte-line systems)",
        r.cache_space_overhead * 100.0
    );

    println!("\n== Memory latency scenarios (Figure 6 model) ==\n");
    let lat = LatencyModel::paper_default();
    println!("location       snooped   direct   advantage");
    for d in DistanceClass::ALL {
        println!(
            "{:<12}  {:>6}c   {:>5}c   {:>6}c ({:.0}%)",
            format!("{d:?}"),
            lat.snoop_memory_access(d),
            lat.direct_memory_access(d),
            lat.direct_advantage(d),
            100.0 * lat.direct_advantage(d) as f64 / lat.snoop_memory_access(d) as f64
        );
    }

    println!("\nWhat if DRAM were twice as fast?");
    let mut fast = LatencyModel::paper_default();
    fast.dram = cgct_sim::SystemCycle(8);
    fast.dram_after_snoop = cgct_sim::SystemCycle(0); // fully hidden by the snoop
    for d in [DistanceClass::SameChip, DistanceClass::Remote] {
        println!(
            "  {:?}: snoop {}c vs direct {}c (advantage {}c)",
            d,
            fast.snoop_memory_access(d),
            fast.direct_memory_access(d),
            fast.direct_advantage(d)
        );
    }
    println!("  -> faster memory shrinks CGCT's latency edge: once DRAM hides");
    println!("     entirely behind the snoop, the direct path's win is the");
    println!("     arbitration/queueing it skips, not raw latency.");

    if std::env::args().any(|a| a == "sweep") {
        sweep(&model);
    }
}
