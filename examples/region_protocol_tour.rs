//! A guided tour of the region protocol: drive the memory system by hand
//! and watch region states evolve through the scenarios of Figures 3-5 —
//! exclusive regions, clean sharing, upgrades, and the self-invalidation
//! that recovers migratory regions.
//!
//! ```text
//! cargo run --release --example region_protocol_tour
//! ```

use cgct_cache::Addr;
use cgct_interconnect::CoreId;
use cgct_sim::Cycle;
use cgct_system::{CoherenceMode, MemorySystem, SystemConfig};

fn main() {
    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    cfg.perturbation = 0;
    cfg.stream_prefetch = false;
    let mut mem = MemorySystem::new(cfg, 1);
    let geom = mem.geometry();

    let a = Addr(0x4_0000); // first line of some region
    let region = geom.region_of(a);
    let cpu0 = CoreId(0);
    let cpu1 = CoreId(2); // on the other chip

    let state = |mem: &MemorySystem, core: CoreId| {
        mem.rca(core).expect("cgct mode").state(region).to_string()
    };

    println!("== 1. First touch: cpu0 loads a line of the region");
    println!("   region state before: cpu0={}", state(&mem, cpu0));
    mem.load(cpu0, Cycle(0), a, false);
    println!(
        "   after the broadcast found nobody caching the region: cpu0={}",
        state(&mem, cpu0)
    );
    println!("   (DI: exclusive — the fill took a modifiable E copy)\n");

    println!("== 2. Spatial reuse: cpu0 stores to ANOTHER line of the region");
    let before = mem.metrics.broadcasts;
    mem.store(cpu0, Cycle(1_000), a.offset(128));
    println!(
        "   broadcasts issued: {} (request went straight to memory)",
        mem.metrics.broadcasts - before
    );
    println!("   region state: cpu0={}\n", state(&mem, cpu0));

    println!("== 3. dcbz in an exclusive region completes with NO external request");
    let before = (mem.metrics.broadcasts, mem.metrics.direct.total());
    mem.dcbz(cpu0, Cycle(2_000), a.offset(192));
    println!(
        "   broadcasts: +{}, direct: +{}, completed locally: {}",
        mem.metrics.broadcasts - before.0,
        mem.metrics.direct.total() - before.1,
        mem.metrics.local.total()
    );
    println!("   region state: cpu0={}\n", state(&mem, cpu0));

    println!("== 4. Another processor reads the region: downgrade (Figure 5)");
    mem.load(cpu1, Cycle(3_000), a, false);
    println!(
        "   region states: cpu0={} cpu1={}",
        state(&mem, cpu0),
        state(&mem, cpu1)
    );
    println!("   (cpu0 saw the external read; nobody is exclusive now)\n");

    println!("== 5. Migratory recovery: cpu0's lines leave its cache...");
    // Conflict-evict cpu0's region lines (2-way L2: two conflicting fills).
    let l2_span = 8192u64 * 64;
    mem.load(cpu0, Cycle(4_000), Addr(a.0 + l2_span), false);
    mem.load(cpu0, Cycle(5_000), Addr(a.0 + 2 * l2_span), false);
    mem.load(cpu0, Cycle(6_000), Addr(a.0 + 128 + l2_span), false);
    mem.load(cpu0, Cycle(7_000), Addr(a.0 + 128 + 2 * l2_span), false);
    mem.load(cpu0, Cycle(8_000), Addr(a.0 + 192 + l2_span), false);
    mem.load(cpu0, Cycle(9_000), Addr(a.0 + 192 + 2 * l2_span), false);
    let count = mem
        .rca(cpu0)
        .unwrap()
        .entry(region)
        .map(|e| e.line_count)
        .unwrap_or(0);
    println!("   cpu0 region line count is now {count}");
    println!("   ...and cpu1 writes to the region:");
    mem.store(cpu1, Cycle(10_000), a.offset(320));
    println!(
        "   region states: cpu0={} cpu1={}",
        state(&mem, cpu0),
        state(&mem, cpu1)
    );
    println!(
        "   cpu0 self-invalidations so far: {}",
        mem.rca(cpu0).unwrap().stats().self_invalidations
    );
    println!("   (cpu0's empty region self-invalidated so cpu1 got it exclusively)\n");

    println!("== 6. cpu1 now owns the region: its stores avoid the bus");
    let before = mem.metrics.broadcasts;
    mem.store(cpu1, Cycle(11_000), a.offset(384));
    mem.store(cpu1, Cycle(12_000), a.offset(448));
    println!(
        "   broadcasts issued for two more stores: {}",
        mem.metrics.broadcasts - before
    );

    mem.check_invariants().expect("coherence invariants hold");
    println!("\nall coherence and inclusion invariants verified.");
}
