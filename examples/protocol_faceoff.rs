//! Three coherence organizations, one workload: conventional snooping,
//! snooping + Coarse-Grain Coherence Tracking, and a full-map directory —
//! the comparison behind the paper's §1.2 positioning.
//!
//! ```text
//! cargo run --release --example protocol_faceoff [benchmark]
//! ```

use cgct_system::report::ascii_bars;
use cgct_system::{run_once, CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::by_name;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "tpc-b".into());
    let Some(spec) = by_name(&bench) else {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    };
    let plan = RunPlan {
        warmup_per_core: 100_000,
        instructions_per_core: 60_000,
        max_cycles: 200_000_000,
        runs: 1,
        base_seed: 3,
    };
    println!(
        "protocol face-off on {bench} ({} instructions/core)\n",
        plan.instructions_per_core
    );

    let modes = [
        ("snooping", CoherenceMode::Baseline),
        (
            "snoop+CGCT",
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
        ),
        ("directory", CoherenceMode::Directory),
    ];
    let mut runtimes = Vec::new();
    let mut latencies = Vec::new();
    let mut traffic = Vec::new();
    for (name, mode) in modes {
        let cfg = SystemConfig::paper_default(mode);
        let r = run_once(&cfg, &spec, 3, &plan);
        println!(
            "{name:<11} runtime {:>9} cycles | demand latency {:>4.0} | broadcasts {:>6} | c2c {:>5}",
            r.runtime_cycles,
            r.metrics.demand_latency.mean(),
            r.metrics.broadcasts,
            r.metrics.cache_to_cache,
        );
        runtimes.push((name.to_string(), r.runtime_cycles as f64));
        latencies.push((name.to_string(), r.metrics.demand_latency.mean()));
        traffic.push((name.to_string(), r.metrics.broadcasts as f64));
    }

    println!("\nruntime (cycles):\n{}", ascii_bars(&runtimes, 44));
    println!(
        "mean demand latency (cycles):\n{}",
        ascii_bars(&latencies, 44)
    );
    println!("broadcasts:\n{}", ascii_bars(&traffic, 44));
    println!(
        "the paper's claim (§1.2): CGCT keeps the snooping substrate's fast\n\
         two-hop cache-to-cache transfers while matching the directory's\n\
         low-latency access to unshared data — the best of both columns."
    );
}
