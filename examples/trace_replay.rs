//! Trace-driven simulation: record a dynamic instruction trace, save it
//! as JSON lines, and replay it through the full machine — the workflow a
//! downstream user follows to simulate their *own* workloads.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use cgct_cpu::UopSource;
use cgct_system::{CoherenceMode, Machine, SystemConfig};
use cgct_workloads::{by_name, trace, WorkloadThread};

fn main() {
    // 1. Record a short trace per core (here from the synthetic TPC-B;
    //    a real user would convert a Pin/DynamoRIO/QEMU trace instead).
    let spec = by_name("tpc-b").unwrap();
    let n_cores = 4;
    let per_core = 30_000usize;
    let traces: Vec<Vec<cgct_cpu::Uop>> = (0..n_cores)
        .map(|c| {
            let mut src = WorkloadThread::new(spec.clone(), c, n_cores, 123);
            trace::record(&mut src, per_core)
        })
        .collect();
    println!(
        "recorded {} instructions across {n_cores} cores",
        per_core * n_cores
    );

    // 2. Round-trip through the portable JSON-lines format.
    let serialized: Vec<String> = traces
        .iter()
        .map(|t| trace::to_jsonl(t).expect("serializable"))
        .collect();
    let bytes: usize = serialized.iter().map(String::len).sum();
    println!("serialized to {:.1} MB of JSON lines", bytes as f64 / 1e6);

    // 3. Replay the identical trace under both coherence modes.
    let mut runtimes = Vec::new();
    for mode in [
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
    ] {
        let sources: Vec<Box<dyn UopSource + Send>> = serialized
            .iter()
            .map(|text| {
                Box::new(trace::TraceThread::from_jsonl(text).expect("valid trace"))
                    as Box<dyn UopSource + Send>
            })
            .collect();
        let cfg = SystemConfig::paper_default(mode);
        let mut machine = Machine::from_sources(cfg, sources, "tpc-b-trace", 7);
        let r = machine.run_warmed(10_000, 15_000, 100_000_000);
        println!(
            "{:<12} runtime {:>9} cycles, broadcasts {:>6}, avoided {:>5.1}%",
            r.mode,
            r.runtime_cycles,
            r.metrics.broadcasts,
            r.metrics.avoided_fraction() * 100.0
        );
        machine.check_invariants().expect("invariants hold");
        runtimes.push(r.runtime_cycles);
    }
    println!(
        "\ntrace-driven run-time reduction: {:.1}%",
        100.0 * (1.0 - runtimes[1] as f64 / runtimes[0] as f64)
    );
}
