//! Explore any of the nine benchmarks under any coherence mode.
//!
//! ```text
//! cargo run --release --example benchmark_explorer -- tpc-b cgct 512
//! cargo run --release --example benchmark_explorer -- barnes baseline
//! cargo run --release --example benchmark_explorer -- ocean scaled 1024
//! cargo run --release --example benchmark_explorer -- tpc-w regionscout
//! cargo run --release --example benchmark_explorer -- tpc-b cgct 512 8
//! ```
//!
//! A fourth argument asks for that many perturbed seeds; they fan out
//! across the deterministic thread pool (`CGCT_JOBS` controls the
//! worker count) and are reported as mean ± 95% CI. The numbers do not
//! depend on the worker count — only on the seeds.

use cgct_system::{run_averaged, run_once, CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::{all_benchmarks, by_name};

fn usage() -> ! {
    eprintln!(
        "usage: benchmark_explorer <benchmark> [baseline|cgct|scaled|regionscout] [region_bytes] [runs]"
    );
    eprintln!(
        "benchmarks: {}",
        all_benchmarks()
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("tpc-b");
    let Some(spec) = by_name(bench) else { usage() };
    let mode_name = args.get(1).map(String::as_str).unwrap_or("cgct");
    let region: u64 = args
        .get(2)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(512);
    let mode = match mode_name {
        "baseline" => CoherenceMode::Baseline,
        "cgct" => CoherenceMode::Cgct {
            region_bytes: region,
            sets: 8192,
        },
        "scaled" => CoherenceMode::Scaled {
            region_bytes: region,
            sets: 8192,
        },
        "regionscout" => CoherenceMode::RegionScout {
            region_bytes: region,
        },
        _ => usage(),
    };

    let runs: u64 = args
        .get(3)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(1);
    if runs == 0 {
        usage()
    }

    let cfg = SystemConfig::paper_default(mode);
    let plan = RunPlan {
        warmup_per_core: 100_000,
        instructions_per_core: 60_000,
        max_cycles: 100_000_000,
        runs,
        base_seed: 7,
    };
    println!(
        "{} under {} ({} B regions), {} instructions/core after {} warmup",
        spec.name,
        mode.label(),
        mode.region_bytes(),
        plan.instructions_per_core,
        plan.warmup_per_core
    );

    if runs > 1 {
        // Multi-seed mode: fan the perturbed runs out across the pool
        // and report mean ± 95% CI instead of one run's detail.
        println!(
            "averaging {} perturbed seeds on {} worker(s)",
            runs,
            cgct_sim::pool::jobs()
        );
        let agg = run_averaged(&cfg, &spec, &plan);
        let rt = agg.runtime.confidence_interval_95();
        println!();
        println!(
            "runtime:          {:.0} ± {:.0} cycles (95% CI over {} runs)",
            agg.runtime.mean(),
            rt.half_width(),
            agg.runs.len()
        );
        println!(
            "avoided fraction: {:.2}% ± {:.2}%",
            agg.avoided_fraction.mean() * 100.0,
            agg.avoided_fraction.confidence_interval_95().half_width() * 100.0
        );
        println!(
            "L2 miss ratio:    {:.2}% ± {:.2}%",
            agg.l2_miss_ratio.mean() * 100.0,
            agg.l2_miss_ratio.confidence_interval_95().half_width() * 100.0
        );
        println!(
            "avg traffic:      {:.1} broadcasts/window (peak {:.0})",
            agg.avg_traffic.mean(),
            agg.peak_traffic.max()
        );
        println!();
        println!("per-seed runtimes (seed order, identical for any CGCT_JOBS):");
        for (i, r) in agg.runs.iter().enumerate() {
            println!(
                "  seed {:>3}: {:>12} cycles (IPC {:.3})",
                plan.seed_for(i as u64),
                r.runtime_cycles,
                r.ipc
            );
        }
        return;
    }

    let r = run_once(&cfg, &spec, 7, &plan);

    let ki = r.committed as f64 / 1000.0;
    println!();
    println!(
        "runtime:            {} cycles (IPC {:.3})",
        r.runtime_cycles, r.ipc
    );
    println!("branch mispredict:  {:.2}%", r.mispredict_rate * 100.0);
    println!(
        "L2 miss ratio:      {:.2}%",
        r.metrics.l2_miss_ratio() * 100.0
    );
    println!(
        "demand latency:     {:.0} cycles mean",
        r.metrics.demand_latency.mean()
    );
    println!();
    println!("coherence-point requests per kilo-instruction:");
    println!(
        "  data reads/writes {:>7.2}",
        r.metrics.requests.data as f64 / ki
    );
    println!(
        "  write-backs       {:>7.2}",
        r.metrics.requests.writeback as f64 / ki
    );
    println!(
        "  ifetches          {:>7.2}",
        r.metrics.requests.ifetch as f64 / ki
    );
    println!(
        "  dcb ops           {:>7.2}",
        r.metrics.requests.dcb as f64 / ki
    );
    println!(
        "  prefetch issues   {:>7.2}",
        r.metrics.prefetches as f64 / ki
    );
    println!();
    println!(
        "broadcasts:         {} ({:.1} per kinstr; peak {}/100K cycles)",
        r.metrics.broadcasts,
        r.metrics.broadcasts as f64 / ki,
        r.metrics.peak_traffic()
    );
    println!(
        "sent direct:        {} | completed locally: {}",
        r.metrics.direct.total(),
        r.metrics.local.total()
    );
    println!(
        "avoided fraction:   {:.1}% of all requests",
        r.metrics.avoided_fraction() * 100.0
    );
    if r.metrics.unnecessary.total() > 0 {
        println!(
            "oracle-unnecessary: {:.1}% of all requests (of what was broadcast)",
            r.metrics.unnecessary_fraction() * 100.0
        );
    }
    println!(
        "cache-to-cache:     {} transfers | memory fills: {}",
        r.metrics.cache_to_cache, r.metrics.memory_fills
    );
    if r.rca.evictions > 0 {
        println!();
        println!("RCA behaviour:");
        println!(
            "  evicted regions: {} ({:.1}% empty, {:.1}% one line, {:.1}% two lines)",
            r.rca.evictions,
            r.rca.evicted_empty_fraction * 100.0,
            r.rca.evicted_one_line_fraction * 100.0,
            r.rca.evicted_two_lines_fraction * 100.0
        );
        println!(
            "  self-invalidations: {} | mean lines per region: {:.2}",
            r.rca.self_invalidations, r.rca.mean_lines_per_region
        );
    }
}
