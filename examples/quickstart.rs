//! Quickstart: simulate one benchmark with and without Coarse-Grain
//! Coherence Tracking and report what the technique bought.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cgct_system::{run_once, CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::by_name;

fn main() {
    // The paper's four-processor machine (Table 3) running the TPC-W
    // database tier — its biggest winner.
    let spec = by_name("tpc-w").expect("tpc-w is a registered benchmark");
    let plan = RunPlan {
        warmup_per_core: 100_000,
        instructions_per_core: 60_000,
        max_cycles: 100_000_000,
        runs: 1,
        base_seed: 42,
    };

    println!(
        "simulating {} ({} instructions/core)...",
        spec.name, plan.instructions_per_core
    );

    let baseline_cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
    let baseline = run_once(&baseline_cfg, &spec, 42, &plan);

    let cgct_cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    let cgct = run_once(&cgct_cfg, &spec, 42, &plan);

    println!();
    println!("                      baseline      cgct-512B");
    println!(
        "runtime (cycles)    {:>10}     {:>10}",
        baseline.runtime_cycles, cgct.runtime_cycles
    );
    println!(
        "IPC                 {:>10.3}     {:>10.3}",
        baseline.ipc, cgct.ipc
    );
    println!(
        "broadcasts          {:>10}     {:>10}",
        baseline.metrics.broadcasts, cgct.metrics.broadcasts
    );
    println!(
        "direct requests     {:>10}     {:>10}",
        baseline.metrics.direct.total(),
        cgct.metrics.direct.total()
    );
    println!(
        "avoided entirely    {:>10}     {:>10}",
        baseline.metrics.local.total(),
        cgct.metrics.local.total()
    );
    println!(
        "mean demand latency {:>10.0}     {:>10.0}",
        baseline.metrics.demand_latency.mean(),
        cgct.metrics.demand_latency.mean()
    );
    println!();
    let reduction = 100.0 * (1.0 - cgct.runtime_cycles as f64 / baseline.runtime_cycles as f64);
    println!("run-time reduction: {reduction:.1}%  (paper: up to 21.7% for TPC-W at 512B regions)");
    println!(
        "requests avoiding the broadcast: {:.1}%",
        cgct.metrics.avoided_fraction() * 100.0
    );
}
