//! Span-conservation property for the request-lifetime tracer.
//!
//! Every coherence-point request that issues must retire exactly one
//! complete span; a span's segments must be non-overlapping and sum
//! exactly to `retire - issue`; and the number of complete spans must
//! equal the memory system's own request count. Checked across all nine
//! benchmarks for both coherence classes (broadcast baseline and CGCT),
//! with the traced run's architectural outcome compared against an
//! untraced twin — tracing must be pure observation.
//!
//! The runs use the `--quick` suite's warm-then-measure plan
//! (60k warmup + 20k measured instructions per core); the same matrix
//! is also exercised end-to-end in release by `scripts/ci.sh` via
//! `experiments --trace` + `trace_check`.

use cgct_sim::check::check;
use cgct_system::{CoherenceMode, Machine, SystemConfig};
use cgct_workloads::all_benchmarks;

const WARMUP: u64 = 60_000;
const MEASURE: u64 = 20_000;
const MAX_CYCLES: u64 = 40_000_000;

fn run_pair_and_check(mode: CoherenceMode, seed: u64) {
    for spec in all_benchmarks() {
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        let mut plain = Machine::new(cfg, &spec, seed);
        plain.set_trace(false);
        let untraced = plain.run_warmed(WARMUP, MEASURE, MAX_CYCLES);

        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        let mut m = Machine::new(cfg, &spec, seed);
        m.set_trace(true);
        let traced = m.run_warmed(WARMUP, MEASURE, MAX_CYCLES);

        // Pure observation: identical architectural outcome.
        assert_eq!(
            traced.runtime_cycles, untraced.runtime_cycles,
            "{}: tracing changed the runtime",
            spec.name
        );
        assert_eq!(traced.metrics.broadcasts, untraced.metrics.broadcasts);
        assert_eq!(
            traced.metrics.requests.total(),
            untraced.metrics.requests.total()
        );

        let report = traced.trace.expect("tracing was on");
        assert_eq!(report.dropped_events, 0, "{}: ring overflowed", spec.name);
        assert_eq!(
            report.incomplete, 0,
            "{}: requests issued but never retired",
            spec.name
        );
        assert_eq!(
            report.orphans, 0,
            "{}: milestones without a matching issue",
            spec.name
        );
        // Exactly one complete span per counted request.
        assert_eq!(
            report.spans.len() as u64,
            traced.metrics.requests.total(),
            "{}: span count != request count",
            spec.name
        );
        for span in &report.spans {
            // Segments are contiguous (non-overlapping by construction)
            // and partition the lifetime exactly.
            let mut at = span.issue;
            for seg in &span.segments {
                assert_eq!(seg.start, at, "{}: gap/overlap in {span:?}", spec.name);
                assert!(seg.end >= seg.start);
                at = seg.end;
            }
            if !span.segments.is_empty() {
                assert_eq!(
                    at, span.retire,
                    "{}: segments end early {span:?}",
                    spec.name
                );
            }
            let total: u64 = span.segments.iter().map(|s| s.cycles()).sum();
            assert_eq!(
                total,
                span.latency(),
                "{}: segments must sum to the latency of {span:?}",
                spec.name
            );
        }
    }
}

#[test]
fn spans_conserved_for_every_benchmark_baseline() {
    check("span_conservation::baseline", 1, |g| {
        run_pair_and_check(CoherenceMode::Baseline, g.gen_range(1u64..1_000_000));
    });
}

#[test]
fn spans_conserved_for_every_benchmark_cgct() {
    check("span_conservation::cgct", 1, |g| {
        run_pair_and_check(
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
            g.gen_range(1u64..1_000_000),
        );
    });
}
