//! The conservative epoch engine must be deterministic *by worker
//! count*: a run with `CGCT_INTRA_JOBS=4` (four worker threads sharing
//! the node LPs) must produce results byte-identical to `--intra-serial`
//! (the same epoch algorithm on one worker, no threads at all) —
//! including the delivered-event count, since sub-queue deliveries are
//! folded back into the shared total in canonical node order.
//!
//! Every benchmark runs under baseline and CGCT at one, two, and four
//! workers (set explicitly via [`Machine::set_intra`], not the
//! environment, so parallel test binaries can't race on `set_var`), and
//! all fingerprints must agree. This is the epoch-engine mirror of
//! `parallel_determinism.rs` (across-run sharding) and
//! `event_skip_equivalence.rs` (event-driven vs cycle-stepped clock).

use cgct_system::{CoherenceMode, Machine, RunResult, SystemConfig};
use cgct_workloads::all_benchmarks;

fn run_intra(mode: CoherenceMode, bench: &str, seed: u64, workers: usize) -> (RunResult, Machine) {
    let cfg = SystemConfig::paper_default(mode);
    let spec = all_benchmarks()
        .iter()
        .find(|s| s.name == bench)
        .expect("benchmark exists")
        .clone();
    let mut m = Machine::new(cfg, &spec, seed);
    m.set_intra(Some(workers));
    let r = m.run_warmed(500, 1500, 2_000_000);
    (r, m)
}

/// Byte-exact comparison via `Debug` (shortest round-trip `f64`
/// formatting makes string equality the same as bit equality here).
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn epoch_engine_is_byte_identical_at_any_worker_count() {
    let modes = [
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
    ];
    for spec in all_benchmarks() {
        for mode in modes {
            let label = format!("{}/{}", spec.name, mode.label());
            let (serial, m) = run_intra(mode, spec.name, 7, 1);
            assert!(!serial.truncated, "{label}: truncated");
            // The memory system actually ran: completions were scheduled
            // into LP sub-queues and delivered during the measured phase.
            assert!(serial.mem_events > 0, "{label}: no events delivered");
            m.check_invariants()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            for workers in [2usize, 4] {
                let (parallel, m) = run_intra(mode, spec.name, 7, workers);
                assert_eq!(
                    serial.mem_events, parallel.mem_events,
                    "{label}: delivered-event counts diverged at {workers} workers"
                );
                assert_eq!(
                    fingerprint(&serial),
                    fingerprint(&parallel),
                    "{label}: results diverged at {workers} workers"
                );
                m.check_invariants()
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
            }
        }
    }
}

/// The scale-out machines route requests through home directories and
/// cluster buses instead of the single snoop bus; the epoch engine
/// must stay byte-identical across its worker counts for them too.
/// The hierarchical machine runs on a 16-core, two-cluster topology so
/// cross-cluster traffic actually happens.
#[test]
fn directory_and_hierarchical_modes_are_byte_identical_across_workers() {
    use cgct_interconnect::Topology;
    let cases = [
        (
            CoherenceMode::DirectoryCgct {
                region_bytes: 512,
                sets: 8192,
            },
            4usize,
        ),
        (
            CoherenceMode::Hierarchical {
                region_bytes: 512,
                sets: 8192,
            },
            16,
        ),
    ];
    let bench = all_benchmarks()[0].name;
    for (mode, cores) in cases {
        let label = format!("{}/{}c", mode.label(), cores);
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.topology = Topology::for_cores(cores);
        let spec = all_benchmarks()[0].clone();
        let run = |workers: usize| {
            let mut m = Machine::new(cfg.clone(), &spec, 7);
            m.set_intra(Some(workers));
            let r = m.run_warmed(500, 1500, 4_000_000);
            (r, m)
        };
        let (serial, m) = run(1);
        assert!(!serial.truncated, "{label}: truncated");
        assert!(serial.mem_events > 0, "{label}: no events delivered");
        m.check_invariants()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        for workers in [2usize, 4] {
            let (parallel, m) = run(workers);
            assert_eq!(
                serial.mem_events, parallel.mem_events,
                "{label}: delivered-event counts diverged at {workers} workers"
            );
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "{label}: results diverged at {workers} workers ({bench})"
            );
            m.check_invariants()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}

/// Asking for more workers than there are nodes must degrade gracefully
/// to one LP per worker, still byte-identical.
#[test]
fn worker_count_above_node_count_is_harmless() {
    let mode = CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    };
    let bench = all_benchmarks()[0].name;
    let (reference, _) = run_intra(mode, bench, 11, 1);
    let (oversubscribed, _) = run_intra(mode, bench, 11, 64);
    assert_eq!(fingerprint(&reference), fingerprint(&oversubscribed));
}
