//! The event-driven memory system must be invisible: putting bus
//! grants, snoop completions, DRAM accesses, data-port releases, and
//! MSHR fills on the event queue changes how the clock finds the next
//! interesting cycle, never what the machine computes.
//!
//! Every benchmark runs under baseline and CGCT twice — once with the
//! event-driven loop (the default) and once with the cycle-stepped
//! reference (`CGCT_NO_SKIP` / `Machine::set_cycle_skip(false)`) — and
//! the two `RunResult`s must be *byte-identical*, including the
//! delivered-event count itself: both loops pass every scheduled
//! completion time, so `mem_events` agrees even though only the
//! event-driven loop uses those times to jump.

use cgct_system::{CoherenceMode, Machine, RunResult, SystemConfig};
use cgct_workloads::all_benchmarks;

fn run_mode(mode: CoherenceMode, bench: &str, seed: u64, skip: bool) -> (RunResult, Machine) {
    let cfg = SystemConfig::paper_default(mode);
    let spec = all_benchmarks()
        .iter()
        .find(|s| s.name == bench)
        .expect("benchmark exists")
        .clone();
    let mut m = Machine::new(cfg, &spec, seed);
    m.set_cycle_skip(skip);
    let r = m.run_warmed(500, 1500, 2_000_000);
    (r, m)
}

/// Byte-exact comparison via `Debug` (shortest round-trip `f64`
/// formatting makes string equality the same as bit equality here).
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn event_driven_and_reference_loops_are_byte_identical() {
    let modes = [
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
    ];
    for spec in all_benchmarks() {
        for mode in modes {
            let label = format!("{}/{}", spec.name, mode.label());
            let (event, m) = run_mode(mode, spec.name, 7, true);
            let (reference, _) = run_mode(mode, spec.name, 7, false);
            assert!(!event.truncated, "{label}: truncated");
            // The memory system actually ran event-driven: completions
            // were scheduled and delivered during the measured phase.
            assert!(event.mem_events > 0, "{label}: no events delivered");
            assert_eq!(
                event.mem_events, reference.mem_events,
                "{label}: delivered-event counts diverged"
            );
            assert_eq!(
                fingerprint(&event),
                fingerprint(&reference),
                "{label}: results diverged"
            );
            m.check_invariants()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}

/// At the end of a completed run no event can still be pending before
/// the final cycle: the clock never jumps past an undelivered
/// completion.
#[test]
fn no_event_is_left_behind_the_clock() {
    let (_, m) = run_mode(CoherenceMode::Baseline, all_benchmarks()[0].name, 3, true);
    if let Some(t) = m.memory().next_event_time() {
        assert!(
            t > m.now(),
            "pending event at {t:?} is not ahead of now {:?}",
            m.now()
        );
    }
}
