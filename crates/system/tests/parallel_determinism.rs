//! The parallel runner's core guarantee: results are a function of the
//! work list, never of the worker count or scheduling order.
//!
//! These tests run the same tiny suite serially and on 2 and 8 workers
//! and require *bit-identical* aggregates — not "close", identical —
//! plus the `CGCT_JOBS=1` escape hatch degrading to the calling thread.

use cgct_sim::pool;
use cgct_system::experiments::Suite;
use cgct_system::{CoherenceMode, RunPlan};

fn tiny_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 0,
        instructions_per_core: 1_200,
        max_cycles: 2_000_000,
        runs: 2,
        base_seed: 5,
    }
}

fn tiny_modes() -> Vec<CoherenceMode> {
    vec![
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
    ]
}

/// Every observable output of a suite, flattened to exactly comparable
/// values (u64 cycles and the raw bits of every f64 statistic).
fn fingerprint(suite: &Suite) -> Vec<(String, String, Vec<u64>)> {
    suite
        .results
        .iter()
        .map(|((bench, mode), agg)| {
            let mut words: Vec<u64> = agg.runs.iter().map(|r| r.runtime_cycles).collect();
            words.extend(agg.runs.iter().map(|r| r.metrics.broadcasts));
            words.push(agg.runtime.mean().to_bits());
            words.push(agg.avoided_fraction.mean().to_bits());
            words.push(agg.l2_miss_ratio.mean().to_bits());
            words.push(agg.runtime.confidence_interval_95().half_width().to_bits());
            (bench.clone(), mode.clone(), words)
        })
        .collect()
}

#[test]
fn worker_count_never_changes_results() {
    let plan = tiny_plan();
    let modes = tiny_modes();
    let serial = Suite::run_configured(plan, &modes, |c| c, 1, |_| {});
    let two = Suite::run_configured(plan, &modes, |c| c, 2, |_| {});
    let eight = Suite::run_configured(plan, &modes, |c| c, 8, |_| {});

    let want = fingerprint(&serial);
    assert!(!want.is_empty());
    assert_eq!(fingerprint(&two), want, "2 workers diverged from serial");
    assert_eq!(fingerprint(&eight), want, "8 workers diverged from serial");
}

#[test]
fn worker_count_never_changes_results_for_directory_modes() {
    // The directory and hierarchical machines route work through the
    // home controllers and cluster buses; their results must be just as
    // independent of worker count as the bus modes'.
    let plan = tiny_plan();
    let modes = vec![
        CoherenceMode::Directory,
        CoherenceMode::DirectoryCgct {
            region_bytes: 512,
            sets: 8192,
        },
        CoherenceMode::Hierarchical {
            region_bytes: 512,
            sets: 8192,
        },
    ];
    let serial = Suite::run_configured(plan, &modes, |c| c, 1, |_| {});
    let four = Suite::run_configured(plan, &modes, |c| c, 4, |_| {});

    let want = fingerprint(&serial);
    assert!(!want.is_empty());
    assert_eq!(fingerprint(&four), want, "4 workers diverged from serial");
}

#[test]
fn timing_labels_stay_in_canonical_order() {
    // Whatever order items *complete* in, the timing rows come back in
    // build order: benchmark-major, then mode, then seed.
    let plan = tiny_plan();
    let modes = tiny_modes();
    let suite = Suite::run_configured(plan, &modes, |c| c, 4, |_| {});
    let labels: Vec<&str> = suite
        .timings
        .iter()
        .map(|(l, _, _, _, _)| l.as_str())
        .collect();
    // Every suite item is a real simulation, so every row must carry a
    // non-zero simulated-cycle count (and some delivered memory
    // completion events) for the timing log's throughput figures.
    assert!(suite.timings.iter().all(|(_, _, cycles, _, _)| *cycles > 0));
    assert!(suite.timings.iter().all(|(_, _, _, events, _)| *events > 0));
    let first_bench = cgct_workloads::all_benchmarks()[0].name;
    assert_eq!(labels[0], format!("{first_bench}/baseline#s5"));
    assert_eq!(labels[1], format!("{first_bench}/baseline#s6"));
    assert_eq!(labels[2], format!("{first_bench}/cgct-512B#s5"));
    assert_eq!(
        labels.len(),
        cgct_workloads::all_benchmarks().len() * modes.len() * plan.runs as usize
    );
}

#[test]
fn observer_sees_every_item_exactly_once() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let plan = tiny_plan();
    let modes = tiny_modes();
    let seen = AtomicUsize::new(0);
    let suite = Suite::run_configured(
        plan,
        &modes,
        |c| c,
        3,
        |report| {
            seen.fetch_add(1, Ordering::SeqCst);
            assert!(report.done >= 1 && report.done <= report.total);
        },
    );
    assert_eq!(seen.load(Ordering::SeqCst), suite.timings.len());
}

#[test]
fn cgct_jobs_one_degrades_to_the_calling_thread() {
    // `--serial` (and CGCT_JOBS=1) must run items in order on the
    // calling thread with no workers spawned. This test owns the env
    // var: the other tests in this binary pass `jobs` explicitly and
    // never read it, so there is no race.
    std::env::set_var("CGCT_JOBS", "1");
    assert_eq!(pool::jobs(), 1);
    let main_thread = std::thread::current().id();
    let order = pool::run(vec![10u64, 20, 30], |i, x| {
        assert_eq!(std::thread::current().id(), main_thread);
        (i, x)
    });
    assert_eq!(order, vec![(0, 10), (1, 20), (2, 30)]);
    std::env::remove_var("CGCT_JOBS");

    // Out-of-range and garbage values fall back to auto-detection.
    assert_eq!(pool::jobs_from(Some("0")), pool::jobs_from(None));
    assert_eq!(pool::jobs_from(Some("lots")), pool::jobs_from(None));
}
