//! Cycle skipping must be invisible: advancing `now` straight to the
//! next wakeup instead of ticking stalled cores may change how fast the
//! simulator runs, never what it computes.
//!
//! Every benchmark runs under every coherence mode twice — once with the
//! event-driven loop (the default) and once with the plain cycle-stepped
//! reference (`CGCT_NO_SKIP` / `Machine::set_cycle_skip(false)`) — and
//! the two `RunResult`s must be *bit-identical*: same `runtime_cycles`,
//! same memory metrics to the last counter, same RCA statistics, same
//! perturbation-RNG draws. Any drift means a wakeup was reported too
//! late (a tick that mattered got skipped) and is a correctness bug, not
//! a tolerance question.

use cgct_system::{CoherenceMode, Machine, RunResult, SystemConfig};
use cgct_workloads::all_benchmarks;

fn run_mode(mode: CoherenceMode, bench: &str, seed: u64, skip: bool) -> (RunResult, Machine) {
    let cfg = SystemConfig::paper_default(mode);
    let spec = all_benchmarks()
        .iter()
        .find(|s| s.name == bench)
        .expect("benchmark exists")
        .clone();
    let mut m = Machine::new(cfg, &spec, seed);
    m.set_cycle_skip(skip);
    let r = m.run_warmed(500, 1500, 2_000_000);
    (r, m)
}

/// Every field of a `RunResult`, flattened to an exactly-comparable
/// string. `Debug` for `f64` prints the shortest round-trip
/// representation, so two results format equal iff they are bit-equal
/// (modulo -0.0, which never arises from these counters).
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

fn modes() -> Vec<CoherenceMode> {
    vec![
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
        CoherenceMode::Scaled {
            region_bytes: 512,
            sets: 8192,
        },
        CoherenceMode::RegionScout { region_bytes: 512 },
        CoherenceMode::Directory,
    ]
}

#[test]
fn skip_and_no_skip_agree_on_every_benchmark_and_mode() {
    for spec in all_benchmarks() {
        for mode in modes() {
            let label = format!("{}/{}", spec.name, mode.label());
            let (skip, m) = run_mode(mode, spec.name, 42, true);
            let (noskip, _) = run_mode(mode, spec.name, 42, false);
            assert!(!skip.truncated, "{label}: truncated");
            assert_eq!(
                skip.runtime_cycles, noskip.runtime_cycles,
                "{label}: runtime diverged"
            );
            assert_eq!(
                fingerprint(&skip),
                fingerprint(&noskip),
                "{label}: results diverged"
            );
            // The run must also leave a coherent machine behind (this
            // exercises the region-line reverse index validation).
            m.check_invariants()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}

/// The cycle cap is exclusive and truncation lands on the identical
/// cycle in both modes — including the once-off-by-one case where the
/// warmup phase itself exhausts the cap.
#[test]
fn truncation_is_identical_across_modes() {
    for &(warmup, instr, cap) in &[(0u64, 1_000_000u64, 700u64), (1_000_000, 1_000, 700)] {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = all_benchmarks()[0].clone();
        let mut a = Machine::new(cfg.clone(), &spec, 9);
        a.set_cycle_skip(true);
        let ra = a.run_warmed(warmup, instr, cap);
        let mut b = Machine::new(cfg, &spec, 9);
        b.set_cycle_skip(false);
        let rb = b.run_warmed(warmup, instr, cap);
        assert!(ra.truncated && rb.truncated);
        assert_eq!(a.now().0, cap, "skip mode must stop exactly at the cap");
        assert_eq!(b.now().0, cap, "no-skip mode must stop exactly at the cap");
        assert_eq!(fingerprint(&ra), fingerprint(&rb));
    }
}
