//! Checkpoint/resume byte-equality across benchmarks and modes.
//!
//! The contract under test: interrupting a measured run at an arbitrary
//! cycle boundary, serializing it to JSON, dropping every live object,
//! resuming from the bytes, and finishing produces the byte-identical
//! `RunResult` of an uninterrupted run — for the baseline snooping
//! machine and the CGCT machine alike — and a snapshot survives a
//! restore unchanged (idempotence).

use cgct_sim::{Json, Snap};
use cgct_system::{CheckpointRun, CoherenceMode, Machine, SystemConfig};
use cgct_workloads::by_name;

const BENCHMARKS: [&str; 3] = ["ocean", "barnes", "tpc-w"];
const MODES: [CoherenceMode; 2] = [
    CoherenceMode::Baseline,
    CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    },
];
const WARMUP: u64 = 300;
const INSTRUCTIONS: u64 = 1_200;
const MAX_CYCLES: u64 = 2_000_000;
const SEED: u64 = 7;

fn machine(bench: &str, mode: CoherenceMode) -> Machine {
    let cfg = SystemConfig::paper_default(mode);
    let mut m = Machine::new(cfg, &by_name(bench).unwrap(), SEED);
    m.set_trace(false);
    m.set_intra(None);
    m
}

#[test]
fn resumed_runs_byte_equal_uninterrupted_across_benchmarks_and_modes() {
    for bench in BENCHMARKS {
        for mode in MODES {
            let reference = machine(bench, mode)
                .run_warmed(WARMUP, INSTRUCTIONS, MAX_CYCLES)
                .snap()
                .dump();
            // Segment the same run; after every pause, serialize, drop
            // the live run, and resume from the bytes alone.
            let mut run =
                CheckpointRun::new(machine(bench, mode), WARMUP, INSTRUCTIONS, MAX_CYCLES).unwrap();
            let mut finished = None;
            for _ in 0..100_000 {
                if run.step(900) {
                    finished = Some(run.finish().unwrap());
                    break;
                }
                let bytes = run.snapshot().unwrap().dump();
                drop(run);
                let parsed = Json::parse(&bytes).unwrap();
                let cfg = SystemConfig::paper_default(mode);
                run = CheckpointRun::resume(cfg, &by_name(bench).unwrap(), &parsed).unwrap();
            }
            let resumed = finished.expect("run completed").snap().dump();
            assert_eq!(
                resumed,
                reference,
                "{bench}/{} diverged after checkpoint+resume",
                mode.label()
            );
        }
    }
}

#[test]
fn snapshot_restore_snapshot_is_idempotent_everywhere() {
    for bench in BENCHMARKS {
        for mode in MODES {
            let mut run =
                CheckpointRun::new(machine(bench, mode), WARMUP, INSTRUCTIONS, MAX_CYCLES).unwrap();
            // Probe idempotence at several points along the run: fresh,
            // mid-warmup, and mid-measurement.
            for probe in 0..3 {
                if run.step(800) {
                    break;
                }
                let first = run.snapshot().unwrap().dump();
                let parsed = Json::parse(&first).unwrap();
                let cfg = SystemConfig::paper_default(mode);
                let restored =
                    CheckpointRun::resume(cfg, &by_name(bench).unwrap(), &parsed).unwrap();
                let second = restored.snapshot().unwrap().dump();
                assert_eq!(
                    first,
                    second,
                    "{bench}/{} snapshot drifted through restore (probe {probe})",
                    mode.label()
                );
                run = restored;
            }
        }
    }
}
