//! The shared memory system: per-node L1I/L1D/L2 caches, the coherence
//! trackers (RCA / scaled / RegionScout), the broadcast bus, and the
//! memory controllers.
//!
//! The simulation uses an *atomic bus* model: when a request is granted
//! the bus, every other node is snooped and all state transitions are
//! applied at that instant; only the data latency is paid over time. This
//! is the standard fidelity level for snooping-protocol studies and keeps
//! the simulator deterministic — requests are processed in global time
//! order because the cores are stepped cycle by cycle.

use crate::config::{CoherenceMode, SystemConfig};
use crate::directory::{
    ClusterDirectory, DirAction, DirRequest, DirectoryController, RegionDirCache,
};
use crate::metrics::{MemMetrics, RequestCategory};
use crate::oracle::classify;
use cgct::{
    FillKind, JettyFilter, RegionCoherenceArray, RegionPermission, RegionScout,
    RegionSnoopResponse, ScaledRca,
};
use cgct_cache::{
    requester_next_state, snoop_line, Addr, Geometry, LineAddr, LineSnoopResponse, MoesiState,
    MsiState, RegionAddr, ReqKind, SetAssocArray, SnoopAction,
};
use cgct_cpu::StreamPrefetcher;
use cgct_interconnect::{
    AddressNetwork, CoreId, DistanceClass, McId, MemEvent, MemoryController, Topology,
};
use cgct_sim::Xoshiro256pp;
use cgct_sim::{Cycle, EventQueue};
use cgct_trace::{
    Category as TraceCategory, EventKind, PathTag, ReqTag, SharedSink, TraceEvent, TraceSink,
    UNKEYED,
};

/// Splits the borrow between `self.tracer` and the interconnect field a
/// traced call targets (`bus` / `mcs`), producing the optional
/// `(sink, node, seq)` argument the `*_traced` interconnect variants
/// take.
macro_rules! trace_arg {
    ($self:ident, $tid:expr) => {
        match (&mut $self.tracer, $tid) {
            (Some(t), Some((node, seq))) => Some((&mut t.sink as &mut dyn TraceSink, node, seq)),
            _ => None,
        }
    };
}

/// Merged region-level snoop response across all snoopers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct MergedRegionResp {
    rca: RegionSnoopResponse,
    cached_bit: bool,
}

/// The coherence tracker variant attached to one node.
#[derive(Debug)]
enum Tracker {
    None,
    Rca(RegionCoherenceArray),
    Scaled(ScaledRca),
    Scout(RegionScout),
}

impl Tracker {
    fn permission(&mut self, region: RegionAddr, req: ReqKind) -> RegionPermission {
        match self {
            Tracker::None => RegionPermission::Broadcast,
            Tracker::Rca(rca) => rca.permission(region, req),
            Tracker::Scaled(s) => s.permission(region, req),
            Tracker::Scout(s) => {
                if s.permits_direct(region, req) {
                    match req {
                        ReqKind::Upgrade | ReqKind::Dcbz => RegionPermission::CompleteLocally,
                        _ => RegionPermission::DirectToMemory,
                    }
                } else {
                    RegionPermission::Broadcast
                }
            }
        }
    }

    /// Applies a local completion; returns a displaced region whose lines
    /// must be flushed (region, line count).
    fn local_complete(
        &mut self,
        region: RegionAddr,
        fill: FillKind,
        resp: Option<MergedRegionResp>,
        mc: u8,
    ) -> Option<(RegionAddr, u32)> {
        match self {
            Tracker::None => None,
            Tracker::Rca(rca) => rca
                .local_fill(region, fill, resp.map(|r| r.rca), mc)
                .map(|ev| (ev.region, ev.entry.line_count)),
            Tracker::Scaled(s) => s.local_fill(region, resp.map(|r| r.cached_bit), mc),
            Tracker::Scout(s) => {
                if let Some(r) = resp {
                    s.record_global_response(region, r.cached_bit);
                }
                None
            }
        }
    }

    /// Answers an external request; `my_region_lines` is the true number
    /// of lines of the region this node caches (used by the scout's
    /// false-positive accounting).
    fn external(
        &mut self,
        region: RegionAddr,
        req: ReqKind,
        fill_exclusive: bool,
        my_region_lines: u32,
    ) -> MergedRegionResp {
        match self {
            Tracker::None => MergedRegionResp::default(),
            Tracker::Rca(rca) => {
                let r = rca.external_request(region, req, fill_exclusive);
                MergedRegionResp {
                    rca: r,
                    cached_bit: r.any(),
                }
            }
            Tracker::Scaled(s) => MergedRegionResp {
                rca: RegionSnoopResponse::NONE,
                cached_bit: s.external_request(region, req),
            },
            Tracker::Scout(s) => MergedRegionResp {
                rca: RegionSnoopResponse::NONE,
                cached_bit: s.external_request(region, my_region_lines),
            },
        }
    }

    fn line_cached(&mut self, region: RegionAddr) {
        match self {
            Tracker::None => {}
            Tracker::Rca(rca) => rca.line_cached(region),
            Tracker::Scaled(s) => s.line_cached(region),
            Tracker::Scout(s) => s.line_cached(region),
        }
    }

    fn line_uncached(&mut self, region: RegionAddr) {
        match self {
            Tracker::None => {}
            Tracker::Rca(rca) => rca.line_uncached(region),
            Tracker::Scaled(s) => s.line_uncached(region),
            Tracker::Scout(s) => s.line_uncached(region),
        }
    }

    fn rca(&self) -> Option<&RegionCoherenceArray> {
        match self {
            Tracker::Rca(rca) => Some(rca),
            _ => None,
        }
    }

    /// The tracked region state, where the tracker keeps one (the
    /// extensions of §6 consult it without mutating anything).
    fn region_state(&self, region: RegionAddr) -> Option<cgct::RegionState> {
        match self {
            Tracker::Rca(rca) => Some(rca.state(region)),
            _ => None,
        }
    }

    fn owner_hint(&self, region: RegionAddr) -> Option<u8> {
        match self {
            Tracker::Rca(rca) => rca.owner_hint(region),
            _ => None,
        }
    }

    fn record_supplier(&mut self, region: RegionAddr, supplier: u8) {
        if let Tracker::Rca(rca) = self {
            rca.record_supplier(region, supplier);
        }
    }

    /// Cumulative region self-invalidations this tracker has performed
    /// (used to attribute [`EventKind::RcaSelfInvalidate`] trace events
    /// to the snoop that triggered them).
    fn self_invalidations(&self) -> u64 {
        match self {
            Tracker::Rca(rca) => rca.stats().self_invalidations.value(),
            Tracker::Scaled(s) => s.self_invalidations(),
            Tracker::None | Tracker::Scout(_) => 0,
        }
    }

    /// Serializes the tracker's dynamic state, tagged by variant so a
    /// restore into the wrong coherence mode fails loudly.
    fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        match self {
            Tracker::None => Json::Null,
            Tracker::Rca(r) => Json::obj([("k", Json::str("rca")), ("s", r.snap_state())]),
            Tracker::Scaled(s) => Json::obj([("k", Json::str("scaled")), ("s", s.snap_state())]),
            Tracker::Scout(s) => Json::obj([("k", Json::str("scout")), ("s", s.snap_state())]),
        }
    }

    /// Restores state captured by [`Tracker::snap_state`]; the snapshot
    /// variant must match this tracker's.
    fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::field;
        use cgct_sim::Json;
        let kind = match v {
            Json::Null => None,
            _ => Some(
                field(v, "k")?
                    .as_str()
                    .ok_or("tracker kind must be a string")?,
            ),
        };
        match (self, kind) {
            (Tracker::None, None) => Ok(()),
            (Tracker::Rca(r), Some("rca")) => r.restore_state(field(v, "s")?),
            (Tracker::Scaled(s), Some("scaled")) => s.restore_state(field(v, "s")?),
            (Tracker::Scout(s), Some("scout")) => s.restore_state(field(v, "s")?),
            (_, k) => Err(format!("tracker variant mismatch (snapshot has {k:?})")),
        }
    }
}

/// Per-machine request-lifetime tracing state
/// ([`MemorySystem::set_trace`]): the shared event sink plus a per-node
/// request-id allocator. Request ids are `(node, seq)` with `seq` dense
/// per node, so traces are deterministic regardless of how runs are
/// scheduled across worker threads.
#[derive(Debug)]
struct TracerState {
    sink: SharedSink,
    next_seq: Vec<u64>,
}

fn trace_req_tag(req: ReqKind) -> ReqTag {
    match req {
        ReqKind::Read => ReqTag::Read,
        ReqKind::ReadShared => ReqTag::ReadShared,
        ReqKind::ReadExclusive => ReqTag::ReadExclusive,
        ReqKind::Upgrade => ReqTag::Upgrade,
        ReqKind::Writeback => ReqTag::Writeback,
        ReqKind::Dcbz => ReqTag::Dcbz,
    }
}

fn trace_category(cat: RequestCategory) -> TraceCategory {
    match cat {
        RequestCategory::DataReadWrite => TraceCategory::Data,
        RequestCategory::Writeback => TraceCategory::Writeback,
        RequestCategory::Ifetch => TraceCategory::Ifetch,
        RequestCategory::DcbOp => TraceCategory::Dcb,
    }
}

/// Reverse index from region to the lines of it a node's L2 caches.
///
/// Region-grain operations — RCA eviction flushes, RegionScout snoop
/// accounting, self-invalidation checks — previously walked every line
/// address in the region (`Geometry::lines_in_region`) probing the L2
/// for each. The paper's own data (§3.2: 65.1% of evicted regions hold
/// zero cached lines) says most of those walks find nothing. This index
/// makes the count an O(1) lookup and enumerates exactly the cached
/// lines. It must be updated at every L2 insertion/removal; the
/// invariant checker re-derives it from the L2 the slow way and
/// compares.
#[derive(Debug)]
struct RegionLineIndex {
    /// Region key -> (cached-line count, bitmask of line offsets within
    /// the region). The mask is meaningful only when `exact`.
    map: cgct_sim::hash::StableHashMap<u64, (u32, u128)>,
    /// Masks cover regions of up to 128 lines (8 KB at 64 B lines —
    /// larger than any configuration in the sweeps). Beyond that only
    /// counts are kept and flushes fall back to an early-exit walk.
    exact: bool,
}

impl RegionLineIndex {
    fn new(geom: Geometry) -> Self {
        RegionLineIndex {
            map: cgct_sim::hash::StableHashMap::default(),
            exact: geom.lines_per_region() <= 128,
        }
    }

    fn on_insert(&mut self, geom: Geometry, line: LineAddr) {
        let region = geom.region_of_line(line);
        let entry = self.map.entry(region.0).or_insert((0, 0));
        entry.0 += 1;
        if self.exact {
            entry.1 |= 1u128 << geom.line_index_in_region(line);
        }
    }

    fn on_remove(&mut self, geom: Geometry, line: LineAddr) {
        let region = geom.region_of_line(line);
        let entry = self
            .map
            .get_mut(&region.0)
            // cgct-lint: allow(D006) region-line index inclusion: a removed line was indexed by the insert that cached it; fail-stop on violation
            .expect("removed line was indexed");
        entry.0 -= 1;
        if self.exact {
            entry.1 &= !(1u128 << geom.line_index_in_region(line));
        }
        if entry.0 == 0 {
            self.map.remove(&region.0);
        }
    }

    fn count(&self, region: RegionAddr) -> u32 {
        self.map.get(&region.0).map_or(0, |&(c, _)| c)
    }
}

/// One processor node's private state.
///
/// `pub(crate)` so the epoch engine (the crate-private `epoch` module) can lend each
/// node to its logical process during an epoch's parallel phase; the
/// node returns to [`MemorySystem::put_nodes`] before any coherence
/// work runs.
#[derive(Debug)]
pub(crate) struct Node {
    l1i: SetAssocArray<()>,
    l1d: SetAssocArray<MsiState>,
    l2: SetAssocArray<MoesiState>,
    /// Region -> cached-lines reverse index over `l2`.
    lines: RegionLineIndex,
    tracker: Tracker,
    prefetcher: StreamPrefetcher,
    /// Jetty snoop filter (energy study; related work §2).
    jetty: Option<JettyFilter>,
}

impl Node {
    /// O(1) count of the region's lines in this node's L2.
    fn count_region_lines(&self, _geom: Geometry, region: RegionAddr) -> u32 {
        self.lines.count(region)
    }

    /// Ground truth for the invariant checker: the count derived by
    /// probing the L2 for every line address in the region.
    fn count_region_lines_slow(&self, geom: Geometry, region: RegionAddr) -> u32 {
        geom.lines_in_region(region)
            .filter(|l| self.l2.contains(l.0))
            .count() as u32
    }

    /// Removes `line` from the L2 (keeping the reverse index in sync)
    /// and returns its state, if present.
    fn l2_remove(&mut self, geom: Geometry, line: LineAddr) -> Option<MoesiState> {
        let state = self.l2.remove(line.0)?;
        self.lines.on_remove(geom, line);
        Some(state)
    }

    /// Inserts `line` into the L2 (keeping the reverse index in sync),
    /// returning the displaced victim, if any.
    fn l2_insert(
        &mut self,
        geom: Geometry,
        line: LineAddr,
        state: MoesiState,
    ) -> Option<(u64, MoesiState)> {
        let displaced = self.l2.insert_lru(line.0, state);
        self.lines.on_insert(geom, line);
        if let Some((victim_key, _)) = displaced {
            self.lines.on_remove(geom, LineAddr(victim_key));
        }
        displaced
    }

    // ---------------------------------------------------------------
    // Epoch-engine fast paths (crate::epoch)
    // ---------------------------------------------------------------
    // The only memory accesses the parallel phase may answer without
    // the serial coherence phase. Each mirrors the *first probe* of the
    // corresponding `MemorySystem` method exactly — including its LRU
    // touch — and reads or writes nothing outside this node: no
    // metrics, no perturbation RNG, no tracer, no bus.

    /// [`MemorySystem::ifetch`]'s L1I fast path: hit (with LRU touch)?
    pub(crate) fn l1i_hit(&mut self, line: LineAddr) -> bool {
        self.l1i.access(line.0).is_some()
    }

    /// [`MemorySystem::load`]'s L1D fast path: hit in any state?
    pub(crate) fn l1d_load_hit(&mut self, line: LineAddr) -> bool {
        self.l1d.access(line.0).is_some()
    }

    /// [`MemorySystem::store`]'s L1D fast path: hit already Modified?
    pub(crate) fn l1d_store_hit_modified(&mut self, line: LineAddr) -> bool {
        self.l1d.access(line.0) == Some(&mut MsiState::Modified)
    }

    /// Serializes this node's caches, tracker, prefetcher, and snoop
    /// filter. The region-line reverse index is *not* serialized — it is
    /// derived state, rebuilt from the restored L2 by
    /// [`Node::restore_state`].
    fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([
            ("l1i", self.l1i.snap()),
            ("l1d", self.l1d.snap()),
            ("l2", self.l2.snap()),
            ("tracker", self.tracker.snap_state()),
            ("prefetcher", self.prefetcher.snap_state()),
            (
                "jetty",
                match &self.jetty {
                    None => Json::Null,
                    Some(j) => Json::Array(vec![j.snap_state()]),
                },
            ),
        ])
    }

    /// Restores state captured by [`Node::snap_state`] into a node built
    /// from the identical configuration, validating every geometry.
    fn restore_state(&mut self, geom: Geometry, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{field, unsnap_field};
        use cgct_sim::Json;
        let l1i: SetAssocArray<()> = unsnap_field(v, "l1i")?;
        let l1d: SetAssocArray<MsiState> = unsnap_field(v, "l1d")?;
        let l2: SetAssocArray<MoesiState> = unsnap_field(v, "l2")?;
        for (name, (sets, ways), cur) in [
            (
                "l1i",
                (l1i.sets(), l1i.ways()),
                &self.l1i as &dyn CacheShape,
            ),
            ("l1d", (l1d.sets(), l1d.ways()), &self.l1d),
            ("l2", (l2.sets(), l2.ways()), &self.l2),
        ] {
            if (sets, ways) != cur.shape() {
                return Err(format!(
                    "{name} geometry {sets}x{ways} does not match configuration"
                ));
            }
        }
        let mut lines = RegionLineIndex::new(geom);
        for (key, _) in l2.iter() {
            lines.on_insert(geom, LineAddr(key));
        }
        self.l1i = l1i;
        self.l1d = l1d;
        self.l2 = l2;
        self.lines = lines;
        self.tracker.restore_state(field(v, "tracker")?)?;
        self.prefetcher.restore_state(field(v, "prefetcher")?)?;
        match (&mut self.jetty, field(v, "jetty")?) {
            (None, Json::Null) => {}
            (Some(j), Json::Array(a)) if a.len() == 1 => j.restore_state(&a[0])?,
            _ => return Err("jetty filter presence mismatch".to_string()),
        }
        Ok(())
    }
}

/// Uniform `(sets, ways)` view over the three differently-typed cache
/// arrays, for [`Node::restore_state`]'s geometry validation loop.
trait CacheShape {
    fn shape(&self) -> (usize, usize);
}

impl<E> CacheShape for SetAssocArray<E> {
    fn shape(&self) -> (usize, usize) {
        (self.sets(), self.ways())
    }
}

/// The complete shared memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: SystemConfig,
    geom: Geometry,
    topo: Topology,
    nodes: Vec<Node>,
    bus: AddressNetwork,
    mcs: Vec<MemoryController>,
    /// Full-map directories, one per controller (directory-backed modes
    /// only).
    directories: Vec<DirectoryController>,
    /// Region-grain directory caches, one per controller
    /// (`DirectoryCgct` only; empty otherwise). Maintained exactly from
    /// the line entries after every directory update, so a hit is
    /// authoritative.
    region_dir_caches: Vec<RegionDirCache>,
    /// The inter-cluster region directory (`Hierarchical` only).
    /// Conceptually distributed across home controllers; a single
    /// region-indexed map is their union and behaves identically.
    cluster_dir: Option<ClusterDirectory>,
    /// Per-cluster address buses (`Hierarchical` only; empty
    /// otherwise). Flat modes arbitrate `bus` instead.
    cluster_buses: Vec<AddressNetwork>,
    /// Per-node data-network port: next time it is free (Table 3's
    /// 2.4 GB/s per-processor data bandwidth).
    data_ports: Vec<Cycle>,
    /// The machine's central completion-event queue: bus grants, snoop
    /// resolutions, DRAM bank completions, data-port releases, and MSHR
    /// fills all schedule a typed [`MemEvent`] here at the cycle they
    /// finish. The run loop advances time to
    /// `min(core wakeups, events.next_time())` and drains due events
    /// via [`MemorySystem::advance`]; the cycle-stepped reference
    /// (`CGCT_NO_SKIP`) drains once per cycle instead. Events carry no
    /// state — the atomic-bus engine applies every transition
    /// synchronously — so delivery only moves the clock and counts.
    events: EventQueue<MemEvent>,
    /// Events delivered since the metrics epoch (the
    /// `memory_events_per_sec` throughput diagnostic).
    events_delivered: u64,
    /// Collected metrics (public so runners can read and reset).
    pub metrics: MemMetrics,
    /// Time origin for metrics (reset after cache warmup).
    metrics_epoch: Cycle,
    perturb: Xoshiro256pp,
    sample_countdown: u32,
    /// Runtime coherence sanitizer (`CGCT_SANITIZE=1` or
    /// [`MemorySystem::set_sanitize`]): re-checks the global invariants
    /// every `sanitize_interval` coherence-point requests and validates
    /// every no-broadcast decision against the actual remote states.
    /// Strictly read-only over the architectural and metric state, so a
    /// sanitized run produces byte-identical results.
    sanitize: bool,
    sanitize_interval: u64,
    sanitize_countdown: u64,
    sanitize_checks: u64,
    /// Nesting depth of [`MemorySystem::coherent_request`] — fills can
    /// trigger evictions whose write-backs re-enter the engine, and the
    /// sanitizer must only walk the invariants once the outermost request
    /// has fully committed its state changes.
    request_depth: u32,
    /// Request-lifetime tracer ([`MemorySystem::set_trace`]): records
    /// cycle-stamped events into a shared bounded ring buffer. `None`
    /// (the default) records nothing and costs nothing. Strictly
    /// read-only over the architectural and metric state, so a traced
    /// run produces byte-identical results.
    tracer: Option<TracerState>,
}

/// Whether the sanitizer is on for new memory systems (`CGCT_SANITIZE`,
/// via the [`crate::config::env_knobs`] seam).
fn sanitize_default() -> bool {
    crate::config::env_knobs().sanitize
}

/// Requests between full invariant walks (`CGCT_SANITIZE_INTERVAL`,
/// minimum 1, default 65536, via the [`crate::config::env_knobs`] seam).
fn sanitize_interval_default() -> u64 {
    crate::config::env_knobs().sanitize_interval
}

impl MemorySystem {
    /// Builds the memory system for `cfg`, seeding the perturbation RNG.
    ///
    /// # Panics
    ///
    /// Panics when [`SystemConfig::validate`] rejects the configuration
    /// — today, a directory-backed or hierarchical machine with more
    /// than 64 nodes (the `DirEntry::sharers` bit-vector width).
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        if let Err(err) = cfg.validate() {
            panic!("invalid system configuration: {err}");
        }
        let geom = cfg.geometry();
        let topo = cfg.topology;
        let nodes = (0..topo.total_cores())
            .map(|_| {
                let tracker = match cfg.mode {
                    CoherenceMode::Baseline => Tracker::None,
                    CoherenceMode::Cgct { .. } => {
                        // cgct-lint: allow(D006) this arm only matches CoherenceMode::Cgct, for which rca_config() is Some by construction
                        Tracker::Rca(RegionCoherenceArray::new(cfg.rca_config().expect("cgct")))
                    }
                    CoherenceMode::Scaled { sets, .. } => {
                        Tracker::Scaled(ScaledRca::new(sets, 2, geom))
                    }
                    CoherenceMode::RegionScout { .. } => {
                        Tracker::Scout(RegionScout::paper_default())
                    }
                    CoherenceMode::Directory => Tracker::None,
                    CoherenceMode::DirectoryCgct { .. } | CoherenceMode::Hierarchical { .. } => {
                        Tracker::Rca(RegionCoherenceArray::new(
                            // cgct-lint: allow(D006) these arms only match modes for which rca_config() is Some by construction
                            cfg.rca_config().expect("directory-cgct/hierarchical"),
                        ))
                    }
                };
                Node {
                    l1i: SetAssocArray::new(cfg.hierarchy.l1i.sets(), cfg.hierarchy.l1i.ways),
                    l1d: SetAssocArray::new(cfg.hierarchy.l1d.sets(), cfg.hierarchy.l1d.ways),
                    l2: SetAssocArray::new(cfg.hierarchy.l2.sets(), cfg.hierarchy.l2.ways),
                    lines: RegionLineIndex::new(geom),
                    tracker,
                    prefetcher: StreamPrefetcher::paper_default(),
                    jetty: cfg.jetty_filter.then(JettyFilter::paper_default),
                }
            })
            .collect();
        let mcs: Vec<MemoryController> = (0..topo.total_chips())
            .map(|_| MemoryController::paper_default())
            .collect();
        let directories = (0..topo.total_chips())
            .map(|_| DirectoryController::new())
            .collect();
        let region_dir_caches = match cfg.mode {
            CoherenceMode::DirectoryCgct { sets, .. } => (0..topo.total_chips())
                .map(|_| RegionDirCache::new(sets))
                .collect(),
            _ => Vec::new(),
        };
        let cluster_dir = matches!(cfg.mode, CoherenceMode::Hierarchical { .. })
            .then(|| ClusterDirectory::new(topo.clusters()));
        let cluster_buses = match cfg.mode {
            CoherenceMode::Hierarchical { .. } => (0..topo.clusters())
                .map(|_| AddressNetwork::new())
                .collect(),
            _ => Vec::new(),
        };
        MemorySystem {
            metrics: MemMetrics::new(cfg.traffic_window),
            metrics_epoch: Cycle::ZERO,
            directories,
            region_dir_caches,
            cluster_dir,
            cluster_buses,
            data_ports: vec![Cycle::ZERO; topo.total_cores()],
            events: EventQueue::new(),
            events_delivered: 0,
            geom,
            topo,
            nodes,
            bus: AddressNetwork::new(),
            mcs,
            perturb: Xoshiro256pp::seed_from_u64(seed ^ 0xC6A4_A793_5BD1_E995),
            sample_countdown: 10_000,
            sanitize: sanitize_default(),
            sanitize_interval: sanitize_interval_default(),
            sanitize_countdown: sanitize_interval_default(),
            sanitize_checks: 0,
            request_depth: 0,
            tracer: None,
            cfg,
        }
    }

    /// Attaches a request-lifetime trace sink: every subsequent
    /// coherence-point request records cycle-stamped [`TraceEvent`]s
    /// (issue, bus grant, snoop resolution, DRAM access, retire, plus
    /// RCA hit/miss/evict/self-invalidate and DCBZ-elided counters)
    /// into it, keyed by a per-node request id.
    pub fn set_trace(&mut self, sink: SharedSink) {
        let nodes = self.nodes.len();
        self.tracer = Some(TracerState {
            sink,
            next_seq: vec![0; nodes],
        });
    }

    /// Detaches the trace sink (tracing off).
    pub fn clear_trace(&mut self) {
        self.tracer = None;
    }

    /// Enables or disables the runtime coherence sanitizer (overriding
    /// the `CGCT_SANITIZE` default).
    pub fn set_sanitize(&mut self, enabled: bool) {
        self.sanitize = enabled;
        self.sanitize_countdown = self.sanitize_interval;
    }

    /// Whether the runtime coherence sanitizer is enabled.
    pub fn sanitize(&self) -> bool {
        self.sanitize
    }

    /// Overrides the number of coherence-point requests between full
    /// sanitizer walks (overriding `CGCT_SANITIZE_INTERVAL`; minimum 1).
    pub fn set_sanitize_interval(&mut self, every: u64) {
        self.sanitize_interval = every.max(1);
        self.sanitize_countdown = self.sanitize_interval;
    }

    /// Number of full invariant walks the sanitizer has run.
    pub fn sanitize_checks(&self) -> u64 {
        self.sanitize_checks
    }

    /// One sanitizer step, taken as each top-level coherence-point
    /// request completes: every `sanitize_interval` requests, walk the
    /// complete cross-node invariant set.
    ///
    /// # Panics
    ///
    /// Panics with the violated invariant's description — a sanitized
    /// run must die loudly rather than publish corrupt results.
    fn sanitize_tick(&mut self) {
        self.sanitize_countdown -= 1;
        if self.sanitize_countdown == 0 {
            self.sanitize_countdown = self.sanitize_interval;
            self.sanitize_checks += 1;
            if let Err(err) = self.check_invariants() {
                panic!("coherence sanitizer: {err}");
            }
        }
    }

    /// The system's line/region geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Discards all metrics collected so far and restarts measurement at
    /// `now` — used after a cache-warming phase, as the paper's
    /// checkpoint-based methodology warms caches before timing.
    pub fn reset_metrics(&mut self, now: Cycle) {
        self.metrics = MemMetrics::new(self.cfg.traffic_window);
        self.metrics_epoch = now;
        // Events scheduled during warmup stay queued (the clock still
        // must not skip past them) but stop counting toward the
        // delivered total, which restarts with the other metrics.
        self.events_delivered = 0;
        for node in &mut self.nodes {
            match &mut node.tracker {
                Tracker::None => {}
                Tracker::Rca(r) => r.reset_stats(),
                Tracker::Scaled(s) => s.reset_stats(),
                Tracker::Scout(s) => s.reset_stats(),
            }
        }
        // Warmup-phase trace events are measurement noise: restart the
        // trace alongside the metrics so spans line up with them.
        if let Some(t) = &mut self.tracer {
            t.sink.clear();
            t.next_seq.fill(0);
        }
    }

    /// The metrics time origin (set by [`MemorySystem::reset_metrics`]).
    pub fn metrics_epoch(&self) -> Cycle {
        self.metrics_epoch
    }

    /// The cycle of the earliest pending memory completion event, if
    /// any — the second source of the machine's two-source clock (the
    /// first being the core wakeups). `Machine::run_until` never skips
    /// past this time.
    pub fn next_event_time(&self) -> Option<Cycle> {
        self.events.next_time()
    }

    /// Delivers every completion event due at or before `now`. Events
    /// are notifications, not actions — all architectural transitions
    /// were applied synchronously when the request was processed — so
    /// delivery just retires them from the queue in (time, schedule)
    /// order and counts them.
    pub fn advance(&mut self, now: Cycle) {
        while self.events.pop_due(now).is_some() {
            self.events_delivered += 1;
        }
    }

    /// Completion events delivered since the metrics epoch.
    pub fn events_delivered(&self) -> u64 {
        self.events_delivered
    }

    /// Completion events scheduled but not yet delivered.
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    // ---------------------------------------------------------------
    // Epoch-engine seams (crate::epoch)
    // ---------------------------------------------------------------

    /// Moves every node out, for the epoch engine to lend to its
    /// logical processes during an epoch's parallel phase.
    pub(crate) fn take_nodes(&mut self) -> Vec<Node> {
        std::mem::take(&mut self.nodes)
    }

    /// Returns the nodes taken by [`MemorySystem::take_nodes`] (same
    /// order) before any coherence work runs.
    pub(crate) fn put_nodes(&mut self, nodes: Vec<Node>) {
        debug_assert!(self.nodes.is_empty(), "put_nodes over live nodes");
        self.nodes = nodes;
    }

    /// Swaps the central completion-event queue with `q`. The epoch
    /// engine wraps each deferred request in a swap pair so the events
    /// the request schedules land in the *requester's* sub-queue, whose
    /// local clock delivers them.
    pub(crate) fn swap_events(&mut self, q: &mut EventQueue<MemEvent>) {
        std::mem::swap(&mut self.events, q);
    }

    /// Folds `n` sub-queue deliveries into the delivered total (the
    /// epoch engine calls this once per node, in node order, when a run
    /// completes — so [`MemorySystem::reset_metrics`] between warmup
    /// and measurement behaves exactly as under the legacy engine).
    pub(crate) fn add_events_delivered(&mut self, n: u64) {
        self.events_delivered += n;
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Node `core`'s Region Coherence Array, if running in CGCT mode.
    pub fn rca(&self, core: CoreId) -> Option<&RegionCoherenceArray> {
        self.nodes[core.0].tracker.rca()
    }

    // ---------------------------------------------------------------
    // Checkpointing (Machine::snapshot / Machine::restore)
    // ---------------------------------------------------------------

    /// Serializes the complete dynamic state of the memory system:
    /// every cache array, coherence tracker, prefetcher and snoop
    /// filter, the bus and memory-controller clocks, the directories,
    /// the pending completion-event queue, the metrics, and the
    /// perturbation RNG. Construction parameters (config, geometry,
    /// topology) are not included — [`MemorySystem::restore_state`]
    /// targets a system built from the identical configuration and
    /// validates shapes as it goes.
    ///
    /// # Errors
    ///
    /// Fails when a trace sink is attached (traced runs are not
    /// checkpointable), while a request is in flight, or while the
    /// epoch engine has the nodes lent out.
    pub fn snap_state(&self) -> Result<cgct_sim::Json, String> {
        use cgct_sim::{Json, Snap};
        if self.tracer.is_some() {
            return Err("cannot snapshot a traced memory system".to_string());
        }
        if self.request_depth != 0 {
            return Err("cannot snapshot mid-request".to_string());
        }
        if self.nodes.is_empty() {
            return Err("cannot snapshot while nodes are lent out".to_string());
        }
        Ok(Json::obj([
            (
                "nodes",
                Json::Array(self.nodes.iter().map(Node::snap_state).collect()),
            ),
            ("bus", self.bus.snap()),
            ("mcs", self.mcs.snap()),
            ("directories", self.directories.snap()),
            ("region_dir_caches", self.region_dir_caches.snap()),
            (
                "cluster_dir",
                match &self.cluster_dir {
                    Some(d) => Json::Array(vec![d.snap()]),
                    None => Json::Null,
                },
            ),
            ("cluster_buses", self.cluster_buses.snap()),
            ("data_ports", self.data_ports.snap()),
            ("events", self.events.snap()),
            ("events_delivered", Json::u64(self.events_delivered)),
            ("metrics", self.metrics.snap()),
            ("metrics_epoch", self.metrics_epoch.snap()),
            ("perturb", self.perturb.snap()),
            (
                "sample_countdown",
                Json::u64(u64::from(self.sample_countdown)),
            ),
        ]))
    }

    /// Restores state captured by [`MemorySystem::snap_state`] into a
    /// system built from the identical configuration.
    ///
    /// The sanitizer's walk countdown restarts rather than resuming:
    /// the sanitizer is strictly read-only over architectural and
    /// metric state, so walk timing cannot affect results.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or any shape mismatch against the
    /// current configuration (node count, cache geometries, tracker
    /// variant, controller/directory/port counts).
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        use cgct_sim::Snap;
        let node_snaps = elements(field(v, "nodes")?)?;
        if node_snaps.len() != self.nodes.len() {
            return Err(format!(
                "snapshot has {} nodes, configuration has {}",
                node_snaps.len(),
                self.nodes.len()
            ));
        }
        let mcs: Vec<MemoryController> = unsnap_field(v, "mcs")?;
        if mcs.len() != self.mcs.len() {
            return Err(format!(
                "snapshot has {} memory controllers, configuration has {}",
                mcs.len(),
                self.mcs.len()
            ));
        }
        let directories: Vec<DirectoryController> = unsnap_field(v, "directories")?;
        if directories.len() != self.directories.len() {
            return Err(format!(
                "snapshot has {} directories, configuration has {}",
                directories.len(),
                self.directories.len()
            ));
        }
        let region_dir_caches: Vec<RegionDirCache> = unsnap_field(v, "region_dir_caches")?;
        if region_dir_caches.len() != self.region_dir_caches.len() {
            return Err(format!(
                "snapshot has {} region directory caches, configuration has {}",
                region_dir_caches.len(),
                self.region_dir_caches.len()
            ));
        }
        let cluster_dir = match (&self.cluster_dir, field(v, "cluster_dir")?) {
            (None, cgct_sim::Json::Null) => None,
            (Some(cur), cgct_sim::Json::Array(a)) if a.len() == 1 => {
                let d = ClusterDirectory::unsnap(&a[0])?;
                if d.clusters() != cur.clusters() {
                    return Err(format!(
                        "snapshot has {} clusters, configuration has {}",
                        d.clusters(),
                        cur.clusters()
                    ));
                }
                Some(d)
            }
            _ => return Err("cluster directory presence mismatch".to_string()),
        };
        let cluster_buses: Vec<AddressNetwork> = unsnap_field(v, "cluster_buses")?;
        if cluster_buses.len() != self.cluster_buses.len() {
            return Err(format!(
                "snapshot has {} cluster buses, configuration has {}",
                cluster_buses.len(),
                self.cluster_buses.len()
            ));
        }
        let data_ports: Vec<Cycle> = unsnap_field(v, "data_ports")?;
        if data_ports.len() != self.data_ports.len() {
            return Err(format!(
                "snapshot has {} data ports, configuration has {}",
                data_ports.len(),
                self.data_ports.len()
            ));
        }
        let geom = self.geom;
        for (i, (node, nv)) in self.nodes.iter_mut().zip(node_snaps).enumerate() {
            node.restore_state(geom, nv)
                .map_err(|e| format!("node[{i}]: {e}"))?;
        }
        self.bus = unsnap_field(v, "bus")?;
        self.mcs = mcs;
        self.directories = directories;
        self.region_dir_caches = region_dir_caches;
        self.cluster_dir = cluster_dir;
        self.cluster_buses = cluster_buses;
        self.data_ports = data_ports;
        self.events = unsnap_field(v, "events")?;
        self.events_delivered = unsnap_field(v, "events_delivered")?;
        self.metrics = unsnap_field(v, "metrics")?;
        self.metrics_epoch = unsnap_field(v, "metrics_epoch")?;
        self.perturb = unsnap_field(v, "perturb")?;
        let countdown: u64 = unsnap_field(v, "sample_countdown")?;
        self.sample_countdown =
            u32::try_from(countdown).map_err(|_| "sample countdown out of range".to_string())?;
        self.sanitize_countdown = self.sanitize_interval;
        Ok(())
    }

    // ---------------------------------------------------------------
    // Core-facing request API
    // ---------------------------------------------------------------

    /// Instruction fetch of the line containing `addr`.
    pub fn ifetch(&mut self, core: CoreId, now: Cycle, addr: Addr) -> Cycle {
        let line = self.geom.line_of(addr);
        if self.nodes[core.0].l1i.access(line.0).is_some() {
            return now + 1;
        }
        let t = now + self.cfg.hierarchy.l2.latency;
        self.metrics.l2_accesses += 1;
        let done = if self.nodes[core.0].l2.access(line.0).is_some() {
            t
        } else {
            self.metrics.l2_misses += 1;
            // The fill happens inside the coherence engine.
            self.coherent_request(core, t, ReqKind::ReadShared, line, false)
        };
        if self.nodes[core.0].l2.access(line.0).is_some() {
            self.fill_l1i(core, line);
        }
        let done = self.perturbed(done);
        if done > now + 1 {
            self.events.schedule(done, MemEvent::FetchFill);
        }
        done
    }

    /// Data load. With exclusive prefetching enabled, a store-intent load
    /// that misses fetches a modifiable copy.
    pub fn load(&mut self, core: CoreId, now: Cycle, addr: Addr, store_intent: bool) -> Cycle {
        let line = self.geom.line_of(addr);
        if self.nodes[core.0].l1d.access(line.0).is_some() {
            return now + 1;
        }
        let t = now + self.cfg.hierarchy.l2.latency;
        self.metrics.l2_accesses += 1;
        let l2_state = self.nodes[core.0].l2.access(line.0).copied();
        let done = match l2_state {
            Some(_) => {
                self.note_prefetch_access(core, t, line, store_intent, true);
                t
            }
            None => {
                self.metrics.l2_misses += 1;
                self.note_prefetch_access(core, t, line, store_intent, false);
                let req = if store_intent && self.cfg.exclusive_prefetch {
                    ReqKind::ReadExclusive
                } else if self.cfg.shared_read_bypass
                    && self.nodes[core.0]
                        .tracker
                        .region_state(self.geom.region_of_line(line))
                        .is_some_and(|s| s.is_externally_clean())
                {
                    // §3.1 adaptive variant: take a shared copy straight
                    // from memory (safe: the region holds only unmodified
                    // copies) rather than broadcasting for an exclusive
                    // one. Stores to it will need an upgrade later.
                    ReqKind::ReadShared
                } else {
                    ReqKind::Read
                };
                let done = self.coherent_request(core, t, req, line, false);
                self.metrics.demand_latency.push_units(done - now);
                done
            }
        };
        // Fill L1D shared; stores upgrade separately.
        if self.nodes[core.0].l2.contains(line.0) {
            self.fill_l1d(core, line, MsiState::Shared);
        }
        let done = self.perturbed(done);
        if done > now + 1 {
            self.events.schedule(done, MemEvent::MshrFill);
        }
        done
    }

    /// Data store: obtains write permission and dirties the line.
    pub fn store(&mut self, core: CoreId, now: Cycle, addr: Addr) -> Cycle {
        let line = self.geom.line_of(addr);
        if self.nodes[core.0].l1d.access(line.0) == Some(&mut MsiState::Modified) {
            return now + 1;
        }
        let t = now + self.cfg.hierarchy.l2.latency;
        self.metrics.l2_accesses += 1;
        let l2_state = self.nodes[core.0].l2.access(line.0).copied();
        let done = match l2_state {
            Some(MoesiState::Modified) => t,
            Some(MoesiState::Exclusive) => {
                // Silent E -> M; the region's local part is already Dirty
                // (an E fill is FillKind::Exclusive).
                // cgct-lint: allow(D006) the match arm just observed this line present in L2; absence is a coherence bug, fail-stop
                *self.nodes[core.0].l2.access(line.0).expect("present") = MoesiState::Modified;
                t
            }
            Some(MoesiState::Shared) | Some(MoesiState::Owned) => {
                let done = self.coherent_request(core, t, ReqKind::Upgrade, line, false);
                // cgct-lint: allow(D006) the match arm just observed this line present in L2; absence is a coherence bug, fail-stop
                *self.nodes[core.0].l2.access(line.0).expect("present") = MoesiState::Modified;
                done
            }
            Some(MoesiState::Invalid) | None => {
                self.metrics.l2_misses += 1;
                self.note_prefetch_access(core, t, line, true, false);
                let done = self.coherent_request(core, t, ReqKind::ReadExclusive, line, false);
                self.metrics.demand_latency.push_units(done - now);
                done
            }
        };
        if self.nodes[core.0].l2.contains(line.0) {
            self.fill_l1d(core, line, MsiState::Modified);
        }
        let done = self.perturbed(done);
        if done > now + 1 {
            self.events.schedule(done, MemEvent::MshrFill);
        }
        done
    }

    /// `dcbz`: allocate the line zeroed and modifiable without reading
    /// memory.
    pub fn dcbz(&mut self, core: CoreId, now: Cycle, addr: Addr) -> Cycle {
        let line = self.geom.line_of(addr);
        let t = now + self.cfg.hierarchy.l2.latency;
        let l2_state = self.nodes[core.0].l2.access(line.0).copied();
        let done = match l2_state {
            Some(MoesiState::Modified) => t,
            Some(MoesiState::Exclusive) => {
                // cgct-lint: allow(D006) the match arm just observed this line present in L2; absence is a coherence bug, fail-stop
                *self.nodes[core.0].l2.access(line.0).expect("present") = MoesiState::Modified;
                t
            }
            _ => self.coherent_request(core, t, ReqKind::Dcbz, line, false),
        };
        if self.nodes[core.0].l2.contains(line.0) {
            // cgct-lint: allow(D006) the match arm just observed this line present in L2; absence is a coherence bug, fail-stop
            *self.nodes[core.0].l2.access(line.0).expect("present") = MoesiState::Modified;
        }
        self.fill_l1d(core, line, MsiState::Modified);
        let done = self.perturbed(done);
        if done > now + 1 {
            self.events.schedule(done, MemEvent::MshrFill);
        }
        done
    }

    // ---------------------------------------------------------------
    // Request-lifetime tracing
    // ---------------------------------------------------------------

    /// Allocates a request id and records its [`EventKind::Issue`];
    /// returns the `(node, seq)` key later milestones attach to, or
    /// `None` when tracing is off.
    fn trace_begin(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        prefetch: bool,
    ) -> Option<(u8, u64)> {
        let t = self.tracer.as_mut()?;
        let node = core.0 as u8;
        let seq = t.next_seq[core.0];
        t.next_seq[core.0] += 1;
        t.sink.record(TraceEvent {
            node,
            seq,
            cycle: now.0,
            kind: EventKind::Issue {
                kind: trace_req_tag(req),
                category: trace_category(RequestCategory::of(req)),
                line: line.0,
                prefetch,
            },
        });
        Some((node, seq))
    }

    /// Records a milestone event for request `id` (no-op when `id` is
    /// `None`, i.e. tracing was off at issue).
    fn trace_ev(&mut self, id: Option<(u8, u64)>, cycle: Cycle, kind: EventKind) {
        if let (Some((node, seq)), Some(t)) = (id, self.tracer.as_mut()) {
            t.sink.record(TraceEvent {
                node,
                seq,
                cycle: cycle.0,
                kind,
            });
        }
    }

    /// Records the [`EventKind::Retire`] that closes request `id`'s span.
    fn trace_retire(&mut self, id: Option<(u8, u64)>, cycle: Cycle, path: PathTag) {
        self.trace_ev(id, cycle, EventKind::Retire { path });
    }

    /// Records an unkeyed (counter) event attributed to `node`.
    fn trace_unkeyed(&mut self, node: CoreId, cycle: Cycle, kind: EventKind) {
        if let Some(t) = self.tracer.as_mut() {
            t.sink.record(TraceEvent {
                node: node.0 as u8,
                seq: UNKEYED,
                cycle: cycle.0,
                kind,
            });
        }
    }

    // ---------------------------------------------------------------
    // Coherence engine
    // ---------------------------------------------------------------

    /// Issues a coherence-point request and applies all state changes
    /// atomically; returns the completion time. For data requests the
    /// line is filled into the requester's L2.
    ///
    /// Nested requests (eviction write-backs out of
    /// [`MemorySystem::fill_l2`]) re-enter here; the sanitizer tick only
    /// fires once the outermost request has committed, when the global
    /// state is consistent again.
    fn coherent_request(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        prefetch: bool,
    ) -> Cycle {
        self.request_depth += 1;
        let done = self.coherent_request_inner(core, now, req, line, prefetch);
        self.request_depth -= 1;
        if self.request_depth == 0 && self.sanitize {
            self.sanitize_tick();
        }
        done
    }

    fn coherent_request_inner(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        prefetch: bool,
    ) -> Cycle {
        let region = self.geom.region_of_line(line);
        let mc = self.topo.mc_of_region(region);
        let dist = self.topo.distance(core, mc);
        let category = RequestCategory::of(req);
        self.metrics.requests.record(category);
        self.maybe_sample_rca(core);
        let tid = self.trace_begin(core, now, req, line, prefetch);
        if tid.is_some() {
            // Classify the RCA lookup (trackers that keep a region state).
            if let Some(state) = self.nodes[core.0].tracker.region_state(region) {
                let kind = if state.is_valid() {
                    EventKind::RcaHit { region: region.0 }
                } else {
                    EventKind::RcaMiss { region: region.0 }
                };
                self.trace_unkeyed(core, now, kind);
            }
        }

        match self.cfg.mode {
            CoherenceMode::Directory => {
                return self.directory_request(core, now, req, line, tid, false, RegionUpkeep::None)
            }
            CoherenceMode::DirectoryCgct { .. } => {
                return self.directory_cgct_request(core, now, req, line, tid)
            }
            CoherenceMode::Hierarchical { .. } => {
                return self.hierarchical_request(core, now, req, line, prefetch, tid)
            }
            _ => {}
        }

        let mut permission = self.nodes[core.0].tracker.permission(region, req);
        if req == ReqKind::Writeback && !self.cfg.direct_writebacks {
            permission = RegionPermission::Broadcast;
        }
        match permission {
            RegionPermission::CompleteLocally => {
                self.complete_locally_request(core, now, req, line, region, mc, tid)
            }
            RegionPermission::DirectToMemory => {
                self.direct_to_memory_request(core, now, req, line, region, mc, dist, tid)
            }
            RegionPermission::Broadcast => {
                // §6 extension: for data reads into an externally-dirty
                // region, probe the predicted owner point-to-point first;
                // a hit is a two-hop cache-to-cache transfer with no
                // broadcast at all.
                if self.cfg.owner_prediction && req == ReqKind::Read && !prefetch {
                    if let Some(done) = self.try_owner_predicted_read(core, now, line, region) {
                        self.trace_retire(tid, done, PathTag::OwnerPredicted);
                        return done;
                    }
                }
                // §6 extension: the region state predicts whether the data
                // will come from another cache, letting the memory
                // controller skip its speculative DRAM access.
                let predicted_cached = self.cfg.dram_speculation_filter
                    && self.nodes[core.0]
                        .tracker
                        .region_state(region)
                        .is_some_and(|s| s.is_externally_dirty());
                let grant = self
                    .bus
                    .grant_event(now, &mut self.events, trace_arg!(self, tid));
                self.metrics.broadcasts += 1;
                self.metrics
                    .traffic
                    .record(grant.saturating_sub(self.metrics_epoch.0));
                let snoop_done = grant + self.cfg.latency.snoop_cpu();
                self.events.schedule(snoop_done, MemEvent::SnoopComplete);

                // Snoop every other node's cache line state.
                let mut line_resp = LineSnoopResponse::default();
                let mut owner: Option<CoreId> = None;
                for other in 0..self.nodes.len() {
                    if other == core.0 {
                        continue;
                    }
                    // Jetty (if fitted) may prove the line absent and skip
                    // the tag lookup; a correct filter never skips a line
                    // that is actually cached.
                    if let Some(jetty) = &mut self.nodes[other].jetty {
                        if !jetty.maybe_present(line) {
                            self.metrics.jetty_filtered_lookups += 1;
                            debug_assert!(
                                !self.nodes[other].l2.contains(line.0),
                                "jetty false negative at node {other}"
                            );
                            continue;
                        }
                    }
                    self.metrics.snooped_tag_lookups += 1;
                    let state = self.nodes[other]
                        .l2
                        .get(line.0)
                        .copied()
                        .unwrap_or(MoesiState::Invalid);
                    let out = snoop_line(state, req);
                    line_resp.merge(out.response);
                    if out.action == SnoopAction::SupplyData {
                        owner = Some(CoreId(other));
                    }
                    if out.next != state {
                        self.apply_snooped_transition(other, line, state, out.next, region);
                    }
                }

                // Oracle classification (Figure 2) on what was broadcast.
                if classify(req, line_resp).unnecessary {
                    self.metrics.unnecessary.record(category);
                }

                let fill_state = requester_next_state(req, line_resp);
                let fill_exclusive = fill_state.is_some_and(|s| s.can_silently_modify());

                self.trace_ev(
                    tid,
                    snoop_done,
                    EventKind::SnoopDone {
                        owner: owner.is_some(),
                    },
                );

                // Region snoop responses, merged across snoopers.
                let region_resp =
                    self.region_external_all(core, region, req, fill_exclusive, snoop_done, tid);

                // Requester's region update (may displace a region).
                if req != ReqKind::Writeback {
                    let fill = fill_state.map_or(FillKind::Shared, FillKind::from_moesi);
                    self.rca_local_complete(core, region, fill, Some(region_resp), mc, now);
                }

                // Remember who supplied dirty data: the owner hint feeds
                // the §6 owner predictor.
                if let Some(owner) = owner {
                    self.nodes[core.0]
                        .tracker
                        .record_supplier(region, owner.0 as u8);
                }
                // Data movement and completion time. The baseline memory
                // controller starts the DRAM access speculatively in
                // parallel with the snoop (Figure 6); if an owner cache
                // supplies the data that access was wasted — unless the
                // region-state predictor suppressed it (§6 extension).
                let (done, path) = if req.needs_data() {
                    if let Some(owner) = owner {
                        self.metrics.cache_to_cache += 1;
                        if predicted_cached {
                            self.metrics.dram_speculation_saved += 1;
                        } else {
                            self.metrics.dram_speculation_wasted += 1;
                            // Wasted speculative access: off the critical
                            // path, so it leaves no trace milestone.
                            self.mcs[mc.0].start_access_event(grant, &mut self.events, None);
                        }
                        let d = self.topo.core_distance(core, owner);
                        let supplied = grant + self.cfg.latency.cache_to_cache(d);
                        let _ = self.reserve_data_port(owner, supplied);
                        self.trace_ev(tid, supplied, EventKind::Fill);
                        (
                            self.reserve_data_port(core, supplied),
                            PathTag::BroadcastCache,
                        )
                    } else {
                        self.metrics.memory_fills += 1;
                        // A wrong "cached" prediction must restart the
                        // DRAM access after the snoop resolves.
                        let dram_at = if predicted_cached { snoop_done } else { grant };
                        let dram_start = self.mcs[mc.0].start_access_event(
                            dram_at,
                            &mut self.events,
                            trace_arg!(self, tid),
                        );
                        self.trace_ev(
                            tid,
                            dram_start + self.cfg.latency.dram.as_cpu_cycles(),
                            EventKind::DramDone,
                        );
                        let queue_extra = dram_start - dram_at;
                        let base = if predicted_cached {
                            // Serialized: full snoop, then full DRAM+transfer.
                            self.cfg.latency.snoop_cpu()
                                + self.cfg.latency.dram.as_cpu_cycles()
                                + self.cfg.latency.transfer_cpu(dist)
                        } else {
                            self.cfg.latency.snoop_memory_access(dist)
                        };
                        self.trace_ev(tid, grant + base + queue_extra, EventKind::Fill);
                        (
                            self.reserve_data_port(core, grant + base + queue_extra),
                            PathTag::BroadcastMemory,
                        )
                    }
                } else if req == ReqKind::Writeback {
                    let _ = self.reserve_data_port(core, now);
                    self.mcs[mc.0].start_access_event(snoop_done, &mut self.events, None);
                    (now, PathTag::BroadcastControl)
                } else {
                    (snoop_done, PathTag::BroadcastControl)
                };
                if let Some(state) = fill_state {
                    if !prefetch || !self.nodes[core.0].l2.contains(line.0) {
                        self.fill_l2(core, line, state, now);
                    }
                }
                self.trace_retire(tid, done, path);
                done
            }
        }
    }

    /// Directory-protocol request path: every request travels
    /// point-to-point to the line's home controller; owned lines are
    /// forwarded (three hops), everything else is served from memory.
    /// No broadcasts exist in this mode.
    ///
    /// The home lookup is itself a DRAM access (full-map state lives in
    /// memory, as in the SGI Origin), and memory-sourced fills pay a
    /// *second*, serialized DRAM access for the data. Region-tracking
    /// modes can prove the lookup redundant — the requester's RCA claim
    /// or the home's region-grain directory cache shows no other node
    /// holds the region — and pass `skip_lookup` to charge only the
    /// request hop. The per-line directory is updated either way: the
    /// bypass is a latency optimization, never a bookkeeping one.
    /// `upkeep` selects the region-grain bookkeeping run at the home
    /// point ([`RegionUpkeep::None`] for the flat directory).
    #[allow(clippy::too_many_arguments)]
    fn directory_request(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        tid: Option<(u8, u64)>,
        skip_lookup: bool,
        upkeep: RegionUpkeep,
    ) -> Cycle {
        let region = self.geom.region_of_line(line);
        let mc = self.topo.mc_of_region(region);
        let dist = self.topo.distance(core, mc);
        let category = RequestCategory::of(req);
        self.metrics.direct.record(category);
        let (action, exclusive) =
            self.directories[mc.0].handle(line, core.0 as u8, dir_request_of(req));
        self.refresh_region_dir_cache(mc, region);
        if req == ReqKind::Writeback {
            let _ = self.reserve_data_port(core, now);
            let arrive = now + self.cfg.latency.direct_request(dist);
            self.mcs[mc.0].start_access_event(arrive, &mut self.events, None);
            self.trace_retire(tid, now, PathTag::DirectoryControl);
            return now;
        }
        let req_hop = self.cfg.latency.direct_request(dist);
        self.trace_ev(tid, now + req_hop, EventKind::HopDone);
        let dir_done = if skip_lookup {
            // Region knowledge proved nobody else holds the region: the
            // per-line directory lookup never happens on the wire.
            self.metrics.dir_bypasses += 1;
            self.assert_bypass_clean(core, req, line, &action);
            (now + req_hop).align_to_system_clock()
        } else {
            self.metrics.dir_lookups += 1;
            let dir_start = self.mcs[mc.0].start_access_event(
                (now + req_hop).align_to_system_clock(),
                &mut self.events,
                trace_arg!(self, tid),
            );
            let done = dir_start + self.cfg.latency.dram.as_cpu_cycles();
            self.trace_ev(tid, done, EventKind::DramDone);
            done
        };
        let mut inval_latency = 0u64;
        let invalidate = match &action {
            DirAction::FromMemory { invalidate }
            | DirAction::ForwardToOwner { invalidate, .. }
            | DirAction::InvalidateOnly { invalidate } => invalidate.clone(),
        };
        for target in invalidate {
            let t = CoreId(target as usize);
            if t == core || t.0 >= self.nodes.len() {
                continue;
            }
            if self.nodes[t.0].l2_remove(self.geom, line).is_some() {
                self.nodes[t.0].l1d.remove(line.0);
                self.nodes[t.0].l1i.remove(line.0);
                if let Some(j) = &mut self.nodes[t.0].jetty {
                    j.remove(line);
                }
                self.nodes[t.0].tracker.line_uncached(region);
                self.cluster_note_uncached(t.0, region);
            }
            let hop = self.cfg.latency.direct_request(self.topo.distance(t, mc));
            inval_latency = inval_latency.max(2 * hop);
        }
        let fill_state = match req {
            ReqKind::ReadShared if upkeep == RegionUpkeep::DirectFill => {
                // A shared read riding an externally-clean region claim
                // must not take the directory's exclusive grant: other
                // nodes hold CC entries over this region, and an E copy
                // here would let a silent upgrade invalidate their
                // claims without any region-grain notification. The
                // snooping machine's direct path makes the same call.
                MoesiState::Shared
            }
            ReqKind::Read | ReqKind::ReadShared => {
                if exclusive {
                    MoesiState::Exclusive
                } else {
                    MoesiState::Shared
                }
            }
            _ => MoesiState::Modified,
        };
        match upkeep {
            RegionUpkeep::None => {}
            RegionUpkeep::DirectFill => {
                // Requester-side region bypass: invisible to other
                // nodes' region state (their entries, if any, stay
                // conservative — the claim says they have none).
                let fill = FillKind::from_moesi(fill_state);
                self.rca_local_complete(core, region, fill, None, mc, now);
            }
            RegionUpkeep::FullExternal => {
                // Region-grain outcome relayed to every node's tracker
                // through the home's region directory.
                let fill_exclusive = fill_state.can_silently_modify();
                let resp =
                    self.region_external_all(core, region, req, fill_exclusive, dir_done, tid);
                let fill = FillKind::from_moesi(fill_state);
                self.rca_local_complete(core, region, fill, Some(resp), mc, now);
            }
        }
        let (data_done, path) = match action {
            DirAction::ForwardToOwner { owner, .. } => {
                let o = CoreId(owner as usize);
                let owner_state = self.nodes[o.0]
                    .l2
                    .get(line.0)
                    .copied()
                    .unwrap_or(MoesiState::Invalid);
                if owner_state.is_valid() {
                    // Three-hop transfer: home -> owner -> requester.
                    let out = snoop_line(owner_state, req);
                    self.apply_snooped_transition(
                        o.0,
                        line,
                        owner_state,
                        out.next,
                        self.geom.region_of_line(line),
                    );
                    self.metrics.cache_to_cache += 1;
                    self.metrics.three_hop_transfers += 1;
                    let fwd = self.cfg.latency.direct_request(self.topo.distance(o, mc));
                    let supply = self.cfg.hierarchy.l2.latency
                        + self
                            .cfg
                            .latency
                            .transfer_cpu(self.topo.core_distance(core, o));
                    let supplied = dir_done + fwd + supply;
                    let _ = self.reserve_data_port(o, supplied);
                    self.trace_ev(tid, supplied, EventKind::Fill);
                    (
                        self.reserve_data_port(core, supplied),
                        PathTag::DirectoryForwarded,
                    )
                } else {
                    // Stale owner (silently evicted a clean E copy): the
                    // home retries from memory after the failed forward.
                    let fwd = self.cfg.latency.direct_request(self.topo.distance(o, mc));
                    let dram_start = self.mcs[mc.0].start_access_event(
                        dir_done + 2 * fwd,
                        &mut self.events,
                        None,
                    );
                    self.metrics.memory_fills += u64::from(req.needs_data());
                    (
                        dram_start
                            + self.cfg.latency.dram.as_cpu_cycles()
                            + self.cfg.latency.transfer_cpu(dist),
                        PathTag::DirectoryMemory,
                    )
                }
            }
            DirAction::FromMemory { .. } if req.needs_data() => {
                // The data is its own DRAM access, serialized after the
                // directory lookup — or started immediately when the
                // lookup was bypassed.
                self.metrics.memory_fills += 1;
                let dram_start = self.mcs[mc.0].start_access_event(
                    dir_done,
                    &mut self.events,
                    trace_arg!(self, tid),
                );
                let arrived = dram_start
                    + self.cfg.latency.dram.as_cpu_cycles()
                    + self.cfg.latency.transfer_cpu(dist);
                self.trace_ev(tid, arrived, EventKind::Fill);
                (
                    self.reserve_data_port(core, arrived),
                    if skip_lookup {
                        PathTag::DirectoryBypassed
                    } else {
                        PathTag::DirectoryMemory
                    },
                )
            }
            // No data moves for upgrades and invalidate-only requests;
            // keep them out of the memory/bypassed fill populations so
            // those two differ only by the lookup DRAM access.
            _ => (dir_done, PathTag::DirectoryControl),
        };
        self.fill_l2(core, line, fill_state, now);
        let done = data_done.max(dir_done + inval_latency);
        self.trace_retire(tid, done, path);
        done
    }

    /// The full-map directory at controller `mc` (Directory mode).
    pub fn directory(&self, mc: usize) -> &DirectoryController {
        &self.directories[mc]
    }

    /// The region-grain directory cache at controller `mc`
    /// (`DirectoryCgct` mode only).
    pub fn region_dir_cache(&self, mc: usize) -> Option<&RegionDirCache> {
        self.region_dir_caches.get(mc)
    }

    /// Complete-locally path shared by every region-tracking mode: the
    /// region claim lets the request finish with no interconnect
    /// traffic at all.
    #[allow(clippy::too_many_arguments)]
    fn complete_locally_request(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        region: RegionAddr,
        mc: McId,
        tid: Option<(u8, u64)>,
    ) -> Cycle {
        self.metrics.local.record(RequestCategory::of(req));
        self.check_direct_decision(core, req, line);
        self.nodes[core.0]
            .tracker
            .local_complete(region, FillKind::Exclusive, None, mc.0 as u8);
        if req == ReqKind::Dcbz {
            self.fill_l2(core, line, MoesiState::Modified, now);
            self.trace_unkeyed(core, now, EventKind::DcbzElided { line: line.0 });
        }
        self.trace_retire(tid, now, PathTag::Local);
        now
    }

    /// Direct-to-memory path shared by the snooping and hierarchical
    /// machines: a point-to-point request to the region's controller,
    /// no snoops anywhere.
    #[allow(clippy::too_many_arguments)]
    fn direct_to_memory_request(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        region: RegionAddr,
        mc: McId,
        dist: DistanceClass,
        tid: Option<(u8, u64)>,
    ) -> Cycle {
        self.metrics.direct.record(RequestCategory::of(req));
        // Safety net: a direct request must never be issued when
        // the broadcast was actually required — this is the
        // CGCT-transparency invariant. Always on in debug builds,
        // and in release builds under the sanitizer.
        self.check_direct_decision(core, req, line);
        if req == ReqKind::Writeback {
            // Fire-and-forget: deliver to the controller, done.
            let _ = self.reserve_data_port(core, now);
            let arrive = now + self.cfg.latency.direct_request(dist);
            self.mcs[mc.0].start_access_event(arrive, &mut self.events, None);
            self.trace_retire(tid, now, PathTag::Direct);
            return now;
        }
        let fill_state = match req {
            ReqKind::Read | ReqKind::ReadExclusive => MoesiState::Exclusive,
            ReqKind::ReadShared => MoesiState::Shared,
            _ => MoesiState::Modified, // upgrade/dcbz handled above or below
        };
        let fill_state = if req == ReqKind::ReadExclusive || req == ReqKind::Dcbz {
            MoesiState::Modified
        } else {
            fill_state
        };
        let fill = FillKind::from_moesi(fill_state);
        self.rca_local_complete(core, region, fill, None, mc, now);
        let arrive = now + self.cfg.latency.direct_request(dist);
        self.trace_ev(tid, arrive, EventKind::HopDone);
        let dram_start = self.mcs[mc.0].start_access_event(
            arrive.align_to_system_clock(),
            &mut self.events,
            trace_arg!(self, tid),
        );
        self.trace_ev(
            tid,
            dram_start + self.cfg.latency.dram.as_cpu_cycles(),
            EventKind::DramDone,
        );
        let mut done = dram_start
            + self.cfg.latency.dram.as_cpu_cycles()
            + self.cfg.latency.transfer_cpu(dist);
        if req.needs_data() || req == ReqKind::Dcbz {
            self.metrics.memory_fills += u64::from(req.needs_data());
            self.fill_l2(core, line, fill_state, now);
            self.trace_ev(tid, done, EventKind::Fill);
            done = self.reserve_data_port(core, done);
        }
        self.trace_retire(tid, done, PathTag::Direct);
        done
    }

    /// Requester-side region completion: installs/updates the region
    /// entry and flushes any displaced region out of the hierarchy.
    fn rca_local_complete(
        &mut self,
        core: CoreId,
        region: RegionAddr,
        fill: FillKind,
        resp: Option<MergedRegionResp>,
        mc: McId,
        now: Cycle,
    ) {
        if let Some((victim, count)) = self.nodes[core.0]
            .tracker
            .local_complete(region, fill, resp, mc.0 as u8)
        {
            self.trace_unkeyed(
                core,
                now,
                EventKind::RcaEvict {
                    region: victim.0,
                    lines: count,
                },
            );
            self.flush_region(core, now, victim);
        }
    }

    /// Notifies every other node's region tracker of an external
    /// request to `region` and merges their region-grain responses. On
    /// the snooping bus this is the region snoop; in the directory and
    /// hierarchical machines it models the region-grain outcome relayed
    /// through the home's region directory. Trace self-invalidations
    /// are stamped at `when`.
    fn region_external_all(
        &mut self,
        core: CoreId,
        region: RegionAddr,
        req: ReqKind,
        fill_exclusive: bool,
        when: Cycle,
        tid: Option<(u8, u64)>,
    ) -> MergedRegionResp {
        let mut region_resp = MergedRegionResp::default();
        for other in 0..self.nodes.len() {
            if other == core.0 {
                continue;
            }
            let my_lines = match self.nodes[other].tracker {
                Tracker::Scout(_) => self.nodes[other].count_region_lines(self.geom, region),
                _ => 0,
            };
            let si_before = if tid.is_some() {
                self.nodes[other].tracker.self_invalidations()
            } else {
                0
            };
            let r = self.nodes[other]
                .tracker
                .external(region, req, fill_exclusive, my_lines);
            if tid.is_some() && self.nodes[other].tracker.self_invalidations() > si_before {
                self.trace_unkeyed(
                    CoreId(other),
                    when,
                    EventKind::RcaSelfInvalidate { region: region.0 },
                );
            }
            region_resp.rca.merge(r.rca);
            region_resp.cached_bit |= r.cached_bit;
        }
        region_resp
    }

    /// DirectoryCgct: refreshes the home's region-grain directory cache
    /// entry for `region` after a per-line directory update, keeping
    /// every cached mask exact. No-op in the other modes.
    fn refresh_region_dir_cache(&mut self, mc: McId, region: RegionAddr) {
        if self.region_dir_caches.is_empty() {
            return;
        }
        let mask = self.directories[mc.0].region_mask(self.geom.lines_in_region(region));
        self.region_dir_caches[mc.0].update(region, mask);
    }

    /// Hierarchical mode: notes a line of `region` appearing in node
    /// `node`'s L2 in the inter-cluster region directory. No-op in the
    /// other modes.
    fn cluster_note_cached(&mut self, node: usize, region: RegionAddr) {
        if let Some(dir) = &mut self.cluster_dir {
            dir.line_cached(region, self.topo.cluster_of(CoreId(node)));
        }
    }

    /// Hierarchical mode: notes a line of `region` leaving node
    /// `node`'s L2. No-op in the other modes.
    fn cluster_note_uncached(&mut self, node: usize, region: RegionAddr) {
        if let Some(dir) = &mut self.cluster_dir {
            dir.line_uncached(region, self.topo.cluster_of(CoreId(node)));
        }
    }

    /// Sanitizer: a request that skipped the home's directory lookup
    /// (or the home visit entirely) must not have required
    /// directory-driven work — the region claim said no other node
    /// holds any line of the region, so the action can name no cache
    /// that actually holds this line. Stale entries (from silent clean
    /// evictions) may still appear in the action; the resulting
    /// messages are the full-map protocol's usual harmless no-ops.
    fn assert_bypass_clean(&self, core: CoreId, req: ReqKind, line: LineAddr, action: &DirAction) {
        if !(cfg!(debug_assertions) || self.sanitize) {
            return;
        }
        let holds = |t: u8| {
            let t = t as usize;
            t != core.0
                && t < self.nodes.len()
                && self.nodes[t].l2.get(line.0).is_some_and(|s| s.is_valid())
        };
        let (live_foreign_owner, invalidate) = match action {
            DirAction::ForwardToOwner { owner, invalidate } => (holds(*owner), invalidate),
            DirAction::FromMemory { invalidate } | DirAction::InvalidateOnly { invalidate } => {
                (false, invalidate)
            }
        };
        if live_foreign_owner || invalidate.iter().any(|&t| holds(t)) {
            panic!(
                "coherence sanitizer: directory bypass for {core} {req:?} {line} \
                 required remote work ({action:?})"
            );
        }
    }

    /// DirectoryCgct request path: the directory machine of
    /// [`MemorySystem::directory_request`] with per-node RCAs layered
    /// on top. A region claim that proves no other node holds the
    /// region lets the request skip the home's directory-lookup DRAM
    /// access (or, for complete-locally requests, all latency); without
    /// a claim, the home's region-grain directory cache can prove the
    /// same thing and short-circuit the lookup at the home point.
    fn directory_cgct_request(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        tid: Option<(u8, u64)>,
    ) -> Cycle {
        let region = self.geom.region_of_line(line);
        let mc = self.topo.mc_of_region(region);
        if req == ReqKind::Writeback {
            // Write-backs travel point-to-point to the home in every
            // directory machine (the home falls out of the address, so
            // the region entry's controller index is not even needed).
            return self.directory_request(core, now, req, line, tid, false, RegionUpkeep::None);
        }
        match self.nodes[core.0].tracker.permission(region, req) {
            RegionPermission::CompleteLocally => {
                // The per-line directory still learns of the request —
                // modeled as an update message off the critical path;
                // the region claim guarantees it triggers no remote
                // work (asserted below).
                let (action, _) =
                    self.directories[mc.0].handle(line, core.0 as u8, dir_request_of(req));
                self.refresh_region_dir_cache(mc, region);
                self.assert_bypass_clean(core, req, line, &action);
                self.complete_locally_request(core, now, req, line, region, mc, tid)
            }
            RegionPermission::DirectToMemory => {
                // §5 direct-to-memory, directory flavor: skip the home's
                // directory-lookup DRAM access and go straight to data.
                self.check_direct_decision(core, req, line);
                self.directory_request(core, now, req, line, tid, true, RegionUpkeep::DirectFill)
            }
            RegionPermission::Broadcast => {
                // No region claim: the request must visit the home. The
                // home's region-grain directory cache may still prove
                // the region unshared by everyone else and skip the
                // per-line lookup DRAM access.
                let skip = self.region_dir_caches[mc.0]
                    .lookup(region)
                    .is_some_and(|mask| mask & !(1u64 << core.0) == 0);
                self.directory_request(core, now, req, line, tid, skip, RegionUpkeep::FullExternal)
            }
        }
    }

    /// Hierarchical (clustered) request path: nodes snoop their own
    /// cluster's bus, and an inter-cluster region-grain directory names
    /// which *other* clusters cache lines of the region — only those
    /// clusters' buses are visited. Per-node RCAs still grant the
    /// complete-locally / direct-to-memory bypasses, which touch no bus
    /// at all. The cluster filter is conservative: a cluster is skipped
    /// only when it caches no line of the region (sanitizer-checked).
    fn hierarchical_request(
        &mut self,
        core: CoreId,
        now: Cycle,
        req: ReqKind,
        line: LineAddr,
        prefetch: bool,
        tid: Option<(u8, u64)>,
    ) -> Cycle {
        let region = self.geom.region_of_line(line);
        let mc = self.topo.mc_of_region(region);
        let dist = self.topo.distance(core, mc);
        let category = RequestCategory::of(req);
        let mut permission = self.nodes[core.0].tracker.permission(region, req);
        if req == ReqKind::Writeback && !self.cfg.direct_writebacks {
            permission = RegionPermission::Broadcast;
        }
        match permission {
            RegionPermission::CompleteLocally => {
                self.complete_locally_request(core, now, req, line, region, mc, tid)
            }
            RegionPermission::DirectToMemory => {
                self.direct_to_memory_request(core, now, req, line, region, mc, dist, tid)
            }
            RegionPermission::Broadcast => {
                if self.cfg.owner_prediction && req == ReqKind::Read && !prefetch {
                    if let Some(done) = self.try_owner_predicted_read(core, now, line, region) {
                        self.trace_retire(tid, done, PathTag::OwnerPredicted);
                        return done;
                    }
                }
                let predicted_cached = self.cfg.dram_speculation_filter
                    && self.nodes[core.0]
                        .tracker
                        .region_state(region)
                        .is_some_and(|s| s.is_externally_dirty());
                let my_cluster = self.topo.cluster_of(core);
                let clusters = self.topo.clusters();
                // Which other clusters must see the line-grain snoop:
                // only those the region directory records as caching
                // lines of the region.
                // cgct-lint: allow(D006) cluster_dir is Some whenever the mode is Hierarchical, by construction
                let dir = self.cluster_dir.as_ref().expect("hierarchical mode");
                let visit: Vec<usize> = (0..clusters)
                    .filter(|&c| c != my_cluster && dir.count(region, c) > 0)
                    .collect();
                self.metrics.cluster_snoops_filtered += (clusters - 1 - visit.len()) as u64;
                if visit.is_empty() {
                    self.metrics.cluster_local_requests += 1;
                } else {
                    self.metrics.cross_cluster_requests += 1;
                }
                self.metrics.broadcasts += 1;
                let grant = self.cluster_buses[my_cluster].grant_event(
                    now,
                    &mut self.events,
                    trace_arg!(self, tid),
                );
                self.metrics
                    .traffic
                    .record(grant.saturating_sub(self.metrics_epoch.0));
                // The local cluster snoop resolves first; each visited
                // remote cluster's snoop is launched off the local grant
                // and pays a cross-machine hop each way (plus that
                // cluster's own bus arbitration).
                let mut snoop_done = grant + self.cfg.latency.cluster_snoop(false);
                for &c in &visit {
                    let remote_grant = self.cluster_buses[c].grant_event(
                        grant + self.cfg.latency.direct_request(DistanceClass::Remote),
                        &mut self.events,
                        None,
                    );
                    snoop_done = snoop_done.max(
                        remote_grant
                            + self.cfg.latency.snoop_cpu()
                            + self.cfg.latency.direct_request(DistanceClass::Remote),
                    );
                }
                self.events.schedule(snoop_done, MemEvent::SnoopComplete);

                // Line-grain snoops: only nodes in the requester's own
                // and the visited clusters see the request at all —
                // the hierarchical machine's snoop-energy win.
                let mut line_resp = LineSnoopResponse::default();
                let mut owner: Option<CoreId> = None;
                for other in 0..self.nodes.len() {
                    if other == core.0 {
                        continue;
                    }
                    let c = self.topo.cluster_of(CoreId(other));
                    if c != my_cluster && !visit.contains(&c) {
                        continue;
                    }
                    if let Some(jetty) = &mut self.nodes[other].jetty {
                        if !jetty.maybe_present(line) {
                            self.metrics.jetty_filtered_lookups += 1;
                            debug_assert!(
                                !self.nodes[other].l2.contains(line.0),
                                "jetty false negative at node {other}"
                            );
                            continue;
                        }
                    }
                    self.metrics.snooped_tag_lookups += 1;
                    let state = self.nodes[other]
                        .l2
                        .get(line.0)
                        .copied()
                        .unwrap_or(MoesiState::Invalid);
                    let out = snoop_line(state, req);
                    line_resp.merge(out.response);
                    if out.action == SnoopAction::SupplyData {
                        owner = Some(CoreId(other));
                    }
                    if out.next != state {
                        self.apply_snooped_transition(other, line, state, out.next, region);
                    }
                }
                // Sanitizer: a skipped cluster must cache nothing of the
                // region — the filter may only skip true negatives.
                if cfg!(debug_assertions) || self.sanitize {
                    for other in 0..self.nodes.len() {
                        let c = self.topo.cluster_of(CoreId(other));
                        if other == core.0 || c == my_cluster || visit.contains(&c) {
                            continue;
                        }
                        let cached = self.nodes[other].count_region_lines(self.geom, region);
                        if cached > 0 {
                            panic!(
                                "coherence sanitizer: cluster filter skipped cluster {c} but \
                                 node {other} caches {cached} line(s) of {region}"
                            );
                        }
                    }
                }

                if classify(req, line_resp).unnecessary {
                    self.metrics.unnecessary.record(category);
                }
                let fill_state = requester_next_state(req, line_resp);
                let fill_exclusive = fill_state.is_some_and(|s| s.can_silently_modify());
                self.trace_ev(
                    tid,
                    snoop_done,
                    EventKind::SnoopDone {
                        owner: owner.is_some(),
                    },
                );
                // Region-grain responses travel through the inter-
                // cluster region directory and reach every node.
                let region_resp =
                    self.region_external_all(core, region, req, fill_exclusive, snoop_done, tid);
                if req != ReqKind::Writeback {
                    let fill = fill_state.map_or(FillKind::Shared, FillKind::from_moesi);
                    self.rca_local_complete(core, region, fill, Some(region_resp), mc, now);
                }
                if let Some(owner) = owner {
                    self.nodes[core.0]
                        .tracker
                        .record_supplier(region, owner.0 as u8);
                }
                let cluster_path = if visit.is_empty() {
                    PathTag::ClusterLocal
                } else {
                    PathTag::ClusterRemote
                };
                let (done, path) = if req.needs_data() {
                    if let Some(owner) = owner {
                        self.metrics.cache_to_cache += 1;
                        if predicted_cached {
                            self.metrics.dram_speculation_saved += 1;
                        } else {
                            self.metrics.dram_speculation_wasted += 1;
                            // Wasted speculative access: off the critical
                            // path, so it leaves no trace milestone.
                            self.mcs[mc.0].start_access_event(grant, &mut self.events, None);
                        }
                        let d = self.topo.core_distance(core, owner);
                        let supplied = (grant + self.cfg.latency.cache_to_cache(d)).max(snoop_done);
                        let _ = self.reserve_data_port(owner, supplied);
                        self.trace_ev(tid, supplied, EventKind::Fill);
                        (self.reserve_data_port(core, supplied), cluster_path)
                    } else {
                        self.metrics.memory_fills += 1;
                        let dram_at = if predicted_cached { snoop_done } else { grant };
                        let dram_start = self.mcs[mc.0].start_access_event(
                            dram_at,
                            &mut self.events,
                            trace_arg!(self, tid),
                        );
                        self.trace_ev(
                            tid,
                            dram_start + self.cfg.latency.dram.as_cpu_cycles(),
                            EventKind::DramDone,
                        );
                        let queue_extra = dram_start - dram_at;
                        let base = if predicted_cached {
                            // Serialized: full snoop, then DRAM+transfer.
                            self.cfg.latency.snoop_cpu()
                                + self.cfg.latency.dram.as_cpu_cycles()
                                + self.cfg.latency.transfer_cpu(dist)
                        } else {
                            self.cfg.latency.snoop_memory_access(dist)
                        };
                        // Data cannot be handed over before every
                        // visited cluster's snoop response is in.
                        let arrived = (grant + base + queue_extra).max(snoop_done);
                        self.trace_ev(tid, arrived, EventKind::Fill);
                        (self.reserve_data_port(core, arrived), cluster_path)
                    }
                } else if req == ReqKind::Writeback {
                    let _ = self.reserve_data_port(core, now);
                    self.mcs[mc.0].start_access_event(snoop_done, &mut self.events, None);
                    (now, cluster_path)
                } else {
                    (snoop_done, cluster_path)
                };
                if let Some(state) = fill_state {
                    if !prefetch || !self.nodes[core.0].l2.contains(line.0) {
                        self.fill_l2(core, line, state, now);
                    }
                }
                self.trace_retire(tid, done, path);
                done
            }
        }
    }

    /// §6 owner prediction: attempt to satisfy a data read from the
    /// predicted owner of an externally-dirty region, without a
    /// broadcast. Returns the completion time on a hit; `None` falls back
    /// to the normal broadcast (the probe's latency is *not* charged on a
    /// hitless region-state check, only on a real probe miss via the
    /// later broadcast's start time — conservatively folded into `now`).
    fn try_owner_predicted_read(
        &mut self,
        core: CoreId,
        now: Cycle,
        line: LineAddr,
        region: RegionAddr,
    ) -> Option<Cycle> {
        let state = self.nodes[core.0].tracker.region_state(region)?;
        if !state.is_externally_dirty() {
            return None;
        }
        let owner = self.nodes[core.0].tracker.owner_hint(region)?;
        let owner = CoreId(owner as usize);
        if owner == core || owner.0 >= self.nodes.len() {
            return None;
        }
        let owner_state = self.nodes[owner.0]
            .l2
            .get(line.0)
            .copied()
            .unwrap_or(MoesiState::Invalid);
        if !owner_state.must_supply() {
            // Probe miss: the broadcast that follows pays the wasted hop.
            self.metrics.owner_prediction_misses += 1;
            return None;
        }
        self.metrics.owner_prediction_hits += 1;
        self.metrics.cache_to_cache += 1;
        // The broadcast was avoided: account the request as point-to-point.
        self.metrics.direct.record(RequestCategory::DataReadWrite);
        // Reading a dirty line is invisible to third parties: an M owner
        // is the only holder, an O owner's other sharers keep their S
        // copies, and nobody's region state can become stale-unsafe (the
        // external parts only stay conservative).
        let out = snoop_line(owner_state, ReqKind::Read);
        self.apply_snooped_transition(owner.0, line, owner_state, out.next, region);
        let si_before = if self.tracer.is_some() {
            self.nodes[owner.0].tracker.self_invalidations()
        } else {
            0
        };
        let _ = self.nodes[owner.0]
            .tracker
            .external(region, ReqKind::Read, false, 0);
        if self.tracer.is_some() && self.nodes[owner.0].tracker.self_invalidations() > si_before {
            self.trace_unkeyed(
                owner,
                now,
                EventKind::RcaSelfInvalidate { region: region.0 },
            );
        }
        // Requester fills shared; the region entry stays externally dirty.
        if let Some((victim, count)) = self.nodes[core.0].tracker.local_complete(
            region,
            FillKind::Shared,
            None,
            self.topo.mc_of_region(region).0 as u8,
        ) {
            self.trace_unkeyed(
                core,
                now,
                EventKind::RcaEvict {
                    region: victim.0,
                    lines: count,
                },
            );
            self.flush_region(core, now, victim);
        }
        self.fill_l2(core, line, MoesiState::Shared, now);
        let dist = self.topo.core_distance(core, owner);
        let done = now
            + self.cfg.latency.direct_request(dist)
            + self.cfg.hierarchy.l2.latency
            + self.cfg.latency.transfer_cpu(dist);
        let _ = self.reserve_data_port(owner, done);
        Some(self.reserve_data_port(core, done))
    }

    /// Applies a snooped line transition on node `other`, maintaining
    /// L1/L2 inclusion and the tracker's line counts.
    fn apply_snooped_transition(
        &mut self,
        other: usize,
        line: LineAddr,
        _old: MoesiState,
        next: MoesiState,
        region: RegionAddr,
    ) {
        let geom = self.geom;
        if next == MoesiState::Invalid {
            let node = &mut self.nodes[other];
            let removed = node.l2_remove(geom, line).is_some();
            node.l1d.remove(line.0);
            node.l1i.remove(line.0);
            if let Some(j) = &mut node.jetty {
                j.remove(line);
            }
            node.tracker.line_uncached(region);
            if removed {
                self.cluster_note_uncached(other, region);
            }
        } else {
            let node = &mut self.nodes[other];
            if let Some(s) = node.l2.get_mut(line.0) {
                *s = next;
            }
            // Downgrade any modified L1 copy to shared.
            if let Some(s) = node.l1d.get_mut(line.0) {
                *s = MsiState::Shared;
            }
        }
    }

    /// Flushes every cached line of `victim` (an RCA-displaced region)
    /// out of the requester's hierarchy, writing dirty lines back
    /// directly to the region's controller.
    fn flush_region(&mut self, core: CoreId, now: Cycle, victim: RegionAddr) {
        // Most displaced regions cache nothing (§3.2: 65.1%); the index
        // answers that without touching the L2 at all.
        let Some(&(count, mask)) = self.nodes[core.0].lines.map.get(&victim.0) else {
            return;
        };
        let mc = self.topo.mc_of_region(victim);
        let dist = self.topo.distance(core, mc);
        let exact = self.nodes[core.0].lines.exact;
        let mut remaining = count;
        for line in self.geom.lines_in_region(victim) {
            if remaining == 0 {
                break;
            }
            if exact && mask & (1u128 << self.geom.line_index_in_region(line)) == 0 {
                continue;
            }
            let Some(state) = self.nodes[core.0].l2_remove(self.geom, line) else {
                continue;
            };
            remaining -= 1;
            self.metrics.inclusion_flushes += 1;
            self.nodes[core.0].l1d.remove(line.0);
            self.nodes[core.0].l1i.remove(line.0);
            if let Some(j) = &mut self.nodes[core.0].jetty {
                j.remove(line);
            }
            // The RCA entry is already gone (that is why we are
            // flushing), but the inter-cluster directory still counts
            // the line.
            self.cluster_note_uncached(core.0, victim);
            if state.is_dirty() {
                // Routed direct: the displaced entry's controller index is
                // known. Counted as a write-back request, so it also gets
                // its own (zero-length) trace span: every counted request
                // must retire exactly one span.
                self.metrics.requests.record(RequestCategory::Writeback);
                self.metrics.direct.record(RequestCategory::Writeback);
                let wtid = self.trace_begin(core, now, ReqKind::Writeback, line, false);
                let arrive = now + self.cfg.latency.direct_request(dist);
                self.mcs[mc.0].start_access_event(arrive, &mut self.events, None);
                self.trace_retire(wtid, now, PathTag::Direct);
            }
        }
    }

    /// Allocates `line` into the requester's L2 with `state`, handling
    /// the displaced line (write-back + inclusion) and region line
    /// counts.
    fn fill_l2(&mut self, core: CoreId, line: LineAddr, state: MoesiState, now: Cycle) {
        let region = self.geom.region_of_line(line);
        if let Some(s) = self.nodes[core.0].l2.get_mut(line.0) {
            *s = state;
            return;
        }
        let displaced = self.nodes[core.0].l2_insert(self.geom, line, state);
        if let Some(j) = &mut self.nodes[core.0].jetty {
            j.insert(line);
        }
        if let Some((victim_key, victim_state)) = displaced {
            let victim_line = LineAddr(victim_key);
            let victim_region = self.geom.region_of_line(victim_line);
            self.nodes[core.0].l1d.remove(victim_key);
            self.nodes[core.0].l1i.remove(victim_key);
            if let Some(j) = &mut self.nodes[core.0].jetty {
                j.remove(victim_line);
            }
            self.nodes[core.0].tracker.line_uncached(victim_region);
            self.cluster_note_uncached(core.0, victim_region);
            if victim_state.is_dirty() {
                self.issue_writeback(core, now, victim_line);
            }
        }
        self.nodes[core.0].tracker.line_cached(region);
        self.cluster_note_cached(core.0, region);
    }

    /// Issues a write-back request for `line` (already removed from L2).
    fn issue_writeback(&mut self, core: CoreId, now: Cycle, line: LineAddr) {
        let _ = self.coherent_request(core, now, ReqKind::Writeback, line, false);
    }

    fn fill_l1d(&mut self, core: CoreId, line: LineAddr, state: MsiState) {
        let node = &mut self.nodes[core.0];
        if let Some(s) = node.l1d.get_mut(line.0) {
            if state == MsiState::Modified {
                *s = MsiState::Modified;
            }
            node.l1d.touch(line.0);
            return;
        }
        // Displaced L1 lines need no action: their state (including
        // dirtiness) is already reflected at the L2.
        let _ = node.l1d.insert_lru(line.0, state);
    }

    fn fill_l1i(&mut self, core: CoreId, line: LineAddr) {
        let _ = self.nodes[core.0].l1i.insert_lru(line.0, ());
    }

    /// Feeds the stream prefetcher and issues any prefetches it wants.
    fn note_prefetch_access(
        &mut self,
        core: CoreId,
        now: Cycle,
        line: LineAddr,
        store_intent: bool,
        _l2_hit: bool,
    ) {
        if !self.cfg.stream_prefetch {
            return;
        }
        let wants = self.nodes[core.0]
            .prefetcher
            .on_miss(line, store_intent && self.cfg.exclusive_prefetch);
        for pf in wants {
            if self.nodes[core.0].l2.contains(pf.line.0) {
                continue;
            }
            // §6 extension: lines in externally-dirty regions are poor
            // prefetch candidates (likely modified elsewhere; fetching
            // them steals dirty data other cores are still using).
            if self.cfg.region_prefetch_filter {
                let pf_region = self.geom.region_of_line(pf.line);
                if self.nodes[core.0]
                    .tracker
                    .region_state(pf_region)
                    .is_some_and(|s| s.is_externally_dirty())
                {
                    self.metrics.prefetches_filtered += 1;
                    continue;
                }
            }
            self.metrics.prefetches += 1;
            let req = if pf.exclusive {
                ReqKind::ReadExclusive
            } else {
                ReqKind::Read
            };
            let _ = self.coherent_request(core, now, req, pf.line, true);
        }
    }

    fn maybe_sample_rca(&mut self, core: CoreId) {
        self.sample_countdown -= 1;
        if self.sample_countdown == 0 {
            self.sample_countdown = 10_000;
            if let Some(rca) = self.nodes[core.0].tracker.rca() {
                if !rca.is_empty() {
                    self.metrics
                        .lines_per_region_samples
                        .push_milli(rca.mean_lines_per_region_milli());
                }
            }
        }
    }

    /// Serializes a line transfer through `node`'s data port: the
    /// transfer completes no earlier than the port frees up, and occupies
    /// it for the configured time afterwards.
    fn reserve_data_port(&mut self, node: CoreId, done: Cycle) -> Cycle {
        let occ = self.cfg.data_port_occupancy;
        if occ == 0 {
            return done;
        }
        let actual = done.max(self.data_ports[node.0]);
        self.data_ports[node.0] = actual + occ;
        self.events.schedule(actual + occ, MemEvent::DataPortFree);
        actual
    }

    fn perturbed(&mut self, done: Cycle) -> Cycle {
        if self.cfg.perturbation == 0 {
            done
        } else {
            done + self.perturb.gen_range(0..=self.cfg.perturbation)
        }
    }

    // ---------------------------------------------------------------
    // Invariant checking (tests)
    // ---------------------------------------------------------------

    /// Verifies the global coherence and inclusion invariants listed in
    /// `DESIGN.md`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        use cgct_sim::hash::StableHashMap;
        // 1. Line-grain: at most one M/E copy; M/O implies others I/S.
        let mut line_states: StableHashMap<u64, Vec<(usize, MoesiState)>> =
            StableHashMap::default();
        for (n, node) in self.nodes.iter().enumerate() {
            for (key, state) in node.l2.iter() {
                line_states.entry(key).or_default().push((n, *state));
            }
        }
        for (line, holders) in &line_states {
            let writable = holders
                .iter()
                .filter(|(_, s)| s.can_silently_modify())
                .count();
            if writable > 1 {
                return Err(format!("line {line:#x}: multiple M/E holders {holders:?}"));
            }
            if writable == 1 && holders.len() > 1 {
                return Err(format!(
                    "line {line:#x}: M/E alongside other copies {holders:?}"
                ));
            }
            let dirty = holders.iter().filter(|(_, s)| s.is_dirty()).count();
            if dirty > 1 {
                return Err(format!("line {line:#x}: multiple dirty owners {holders:?}"));
            }
        }
        // 2. L1 inclusion in L2.
        for (n, node) in self.nodes.iter().enumerate() {
            for (key, _) in node.l1d.iter() {
                if !node.l2.contains(key) {
                    return Err(format!("node {n}: L1D line {key:#x} not in L2"));
                }
            }
            for (key, _) in node.l1i.iter() {
                if !node.l2.contains(key) {
                    return Err(format!("node {n}: L1I line {key:#x} not in L2"));
                }
            }
        }
        // 2b. The region->cached-lines reverse index agrees with the L2
        //     re-derived the slow way (it is the hot-path source of
        //     region line counts, so drift here corrupts results).
        for (n, node) in self.nodes.iter().enumerate() {
            let mut derived: StableHashMap<u64, (u32, u128)> = StableHashMap::default();
            for (key, _) in node.l2.iter() {
                let line = LineAddr(key);
                let region = self.geom.region_of_line(line);
                let e = derived.entry(region.0).or_insert((0, 0));
                e.0 += 1;
                if node.lines.exact {
                    e.1 |= 1u128 << self.geom.line_index_in_region(line);
                }
            }
            if derived != node.lines.map {
                for (&region, &want) in &derived {
                    let got = node.lines.map.get(&region).copied().unwrap_or((0, 0));
                    if got != want {
                        return Err(format!(
                            "node {n}: region index for {region:#x} is {got:?}, L2 says {want:?}"
                        ));
                    }
                }
                for &region in node.lines.map.keys() {
                    if !derived.contains_key(&region) {
                        return Err(format!(
                            "node {n}: region index has stale entry {region:#x}"
                        ));
                    }
                }
            }
            for (region, &(count, _)) in &node.lines.map {
                let slow = node.count_region_lines_slow(self.geom, RegionAddr(*region));
                if slow != count {
                    return Err(format!(
                        "node {n}: region {region:#x} indexed count {count} != slow walk {slow}"
                    ));
                }
            }
        }
        // 3. RCA inclusion: counts match, every cached line covered.
        for (n, node) in self.nodes.iter().enumerate() {
            if let Some(rca) = node.tracker.rca() {
                for (key, _) in node.l2.iter() {
                    let region = self.geom.region_of_line(LineAddr(key));
                    if rca.entry(region).is_none() {
                        return Err(format!(
                            "node {n}: cached line {key:#x} with no region entry {region}"
                        ));
                    }
                }
                for (region, entry) in rca.iter() {
                    let actual = node.count_region_lines(self.geom, region);
                    if actual != entry.line_count {
                        return Err(format!(
                            "node {n}: region {region} count {} but {actual} lines cached",
                            entry.line_count
                        ));
                    }
                }
            }
        }
        // 4. Region exclusivity: CI/DI on node A means no other node has
        //    a valid entry for (or caches lines of) the region.
        for (a, node_a) in self.nodes.iter().enumerate() {
            let Some(rca_a) = node_a.tracker.rca() else {
                continue;
            };
            for (region, entry) in rca_a.iter() {
                if !entry.state.is_exclusive() {
                    continue;
                }
                for (b, node_b) in self.nodes.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    if let Some(rca_b) = node_b.tracker.rca() {
                        if rca_b.entry(region).is_some() {
                            return Err(format!(
                                "region {region}: node {a} exclusive ({}) but node {b} has entry",
                                entry.state
                            ));
                        }
                    }
                    if node_b.count_region_lines(self.geom, region) > 0 {
                        return Err(format!(
                            "region {region}: node {a} exclusive but node {b} caches lines"
                        ));
                    }
                }
            }
        }
        // 5. Region-claim conservatism: a region state must never
        //    under-report line states. A locally-clean entry (CI/CC/CD)
        //    may only cover unmodified (S) lines, and an externally-clean
        //    claim (CC/DC) means every *other* node's lines of the region
        //    are S.
        let mut nonshared: Vec<cgct_sim::hash::StableHashSet<u64>> =
            Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut set = cgct_sim::hash::StableHashSet::default();
            for (key, state) in node.l2.iter() {
                if *state != MoesiState::Shared {
                    set.insert(self.geom.region_of_line(LineAddr(key)).0);
                }
            }
            nonshared.push(set);
        }
        for (n, node) in self.nodes.iter().enumerate() {
            let Some(rca) = node.tracker.rca() else {
                continue;
            };
            for (region, entry) in rca.iter() {
                if entry.state.local() == Some(cgct::LocalPart::Clean)
                    && nonshared[n].contains(&region.0)
                {
                    return Err(format!(
                        "node {n}: region {region} locally clean ({}) but holds \
                         modified/modifiable lines",
                        entry.state
                    ));
                }
                if entry.state.is_externally_clean() {
                    for (b, remote) in nonshared.iter().enumerate() {
                        if b != n && remote.contains(&region.0) {
                            return Err(format!(
                                "region {region}: node {n} claims {} (externally clean) \
                                 but node {b} holds modified/modifiable lines",
                                entry.state
                            ));
                        }
                    }
                }
            }
        }
        // 6. Snoop-response consistency: the region snoop response a node
        //    would drive on the bus (derived from its entry's local half)
        //    must describe its actual cache contents — answering
        //    Region-Clean while holding an M/O/E line would let another
        //    processor's region state go stale.
        for (n, node) in self.nodes.iter().enumerate() {
            let Some(rca) = node.tracker.rca() else {
                continue;
            };
            for (region, entry) in rca.iter() {
                let r = RegionSnoopResponse::from_local_state(entry.state);
                if !r.dirty && nonshared[n].contains(&region.0) {
                    return Err(format!(
                        "node {n}: region {region} would answer Region-Clean ({}) \
                         but holds modified/modifiable lines",
                        entry.state
                    ));
                }
            }
        }
        // 7. Directory conservatism (directory modes): every node
        //    holding a valid L2 copy of a line appears in the home
        //    directory's entry for it — skipping the lookup on a
        //    "nobody else" answer is only sound if the directory never
        //    under-reports holders.
        if self.cfg.mode.uses_directory() {
            for (line, holders) in &line_states {
                let line = LineAddr(*line);
                let mc = self.topo.mc_of_line(line, self.geom);
                let entry = self.directories[mc.0].entry(line);
                for (n, _) in holders {
                    if entry.owner != Some(*n as u8) && entry.sharers & (1u64 << *n) == 0 {
                        return Err(format!(
                            "line {line}: node {n} holds a copy but the home directory \
                             entry (owner {:?}, sharers {:#x}) does not list it",
                            entry.owner, entry.sharers
                        ));
                    }
                }
            }
        }
        // 7b. Region-grain directory cache exactness (DirectoryCgct):
        //     every cached mask equals the union of the directory's
        //     per-line entries — a hit is authoritative, so any drift
        //     makes the lookup bypass unsound.
        for (m, cache) in self.region_dir_caches.iter().enumerate() {
            for (region, mask) in cache.entries() {
                if self.topo.mc_of_region(region).0 != m {
                    return Err(format!(
                        "mc{m}: region directory cache holds foreign region {region}"
                    ));
                }
                let truth = self.directories[m].region_mask(self.geom.lines_in_region(region));
                if mask != truth {
                    return Err(format!(
                        "mc{m}: region directory cache mask {mask:#x} for {region} \
                         but the per-line directory says {truth:#x}"
                    ));
                }
            }
        }
        // 8. Inter-cluster region directory exactness (Hierarchical):
        //    per-cluster line counts match the caches exactly, and no
        //    stale rows linger — an over-count only costs a wasted
        //    cluster visit, but an under-count skips a required snoop.
        if let Some(dir) = &self.cluster_dir {
            let mut truth: StableHashMap<u64, Vec<u32>> = StableHashMap::default();
            for (n, node) in self.nodes.iter().enumerate() {
                let cluster = self.topo.cluster_of(CoreId(n));
                for (region, &(count, _)) in &node.lines.map {
                    truth
                        .entry(*region)
                        .or_insert_with(|| vec![0; dir.clusters()])[cluster] += count;
                }
            }
            for (&region, counts) in &truth {
                for (c, &want) in counts.iter().enumerate() {
                    let got = dir.count(RegionAddr(region), c);
                    if got != want {
                        return Err(format!(
                            "cluster directory: region {region:#x} cluster {c} \
                             count {got} but the caches hold {want} line(s)"
                        ));
                    }
                }
            }
            if dir.tracked_regions() != truth.len() {
                return Err(format!(
                    "cluster directory tracks {} region(s) but the caches cover {}",
                    dir.tracked_regions(),
                    truth.len()
                ));
            }
        }
        Ok(())
    }

    /// Gate for [`MemorySystem::direct_decision_error`]: always checked
    /// in debug builds, and in release builds when the sanitizer is on.
    ///
    /// # Panics
    ///
    /// Panics with the error description when the no-broadcast decision
    /// was unsafe.
    fn check_direct_decision(&self, core: CoreId, req: ReqKind, line: LineAddr) {
        if cfg!(debug_assertions) || self.sanitize {
            if let Some(err) = self.direct_decision_error(core, req, line) {
                panic!("coherence sanitizer: {err}");
            }
        }
    }

    /// Validates one request that bypassed the broadcast: the oracle's
    /// rule — other caches' actual states make the broadcast unnecessary
    /// — must hold (write-backs always qualify), and if the bypass rests
    /// on an exclusive region claim, no other node may cache lines of
    /// the region at all. Returns a description of the violation, or
    /// `None` when the bypass was safe.
    fn direct_decision_error(&self, core: CoreId, req: ReqKind, line: LineAddr) -> Option<String> {
        if req == ReqKind::Writeback {
            return None;
        }
        let mut resp = LineSnoopResponse::default();
        for (i, node) in self.nodes.iter().enumerate() {
            if i == core.0 {
                continue;
            }
            let state = node.l2.get(line.0).copied().unwrap_or(MoesiState::Invalid);
            resp.merge(LineSnoopResponse {
                shared: state.is_valid(),
                dirty: state.is_dirty(),
                exclusive: state == MoesiState::Exclusive,
            });
        }
        if !cgct_cache::broadcast_unnecessary(req, resp) {
            return Some(format!(
                "unsafe bypass: core {core} {req:?} line {line} with external {resp:?}"
            ));
        }
        let region = self.geom.region_of_line(line);
        if let Some(rca) = self.nodes[core.0].tracker.rca() {
            if rca.state(region).is_exclusive() {
                for (i, node) in self.nodes.iter().enumerate() {
                    if i == core.0 {
                        continue;
                    }
                    let cached = node.count_region_lines(self.geom, region);
                    if cached > 0 {
                        return Some(format!(
                            "stale exclusive claim: core {core} holds region {region} \
                             exclusive but node {i} caches {cached} line(s) of it"
                        ));
                    }
                }
            }
        }
        None
    }

    /// Test/inspection helper: the MOESI state of `line` at node `core`.
    pub fn l2_state(&self, core: CoreId, line: LineAddr) -> MoesiState {
        self.nodes[core.0]
            .l2
            .get(line.0)
            .copied()
            .unwrap_or(MoesiState::Invalid)
    }
}

/// Region-grain bookkeeping run at the home point of a directory-mode
/// request (see [`MemorySystem::directory_request`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum RegionUpkeep {
    /// Flat directory: no region tracking at all.
    None,
    /// Requester-side RCA bypass: update only the requester's region
    /// entry; other nodes never observe the request.
    DirectFill,
    /// Full region maintenance: notify every other node's tracker and
    /// complete the requester's entry from the merged response.
    FullExternal,
}

/// The per-line directory request a coherence request maps to.
fn dir_request_of(req: ReqKind) -> DirRequest {
    match req {
        ReqKind::Read | ReqKind::ReadShared => DirRequest::Read,
        ReqKind::ReadExclusive | ReqKind::Dcbz => DirRequest::ReadExclusive,
        ReqKind::Upgrade => DirRequest::Upgrade,
        ReqKind::Writeback => DirRequest::Writeback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgct::RegionState;

    fn cgct_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        cfg
    }

    fn baseline_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        cfg
    }

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(2); // different chip

    #[test]
    fn first_touch_broadcasts_then_goes_direct() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x10000);
        let t1 = m.load(C0, Cycle(0), a, false);
        assert_eq!(m.metrics.broadcasts, 1);
        // Second line in the same region: direct.
        let t2 = m.load(C0, t1, a.offset(64), false);
        assert_eq!(m.metrics.broadcasts, 1);
        assert_eq!(m.metrics.direct.data, 1);
        assert!(t2 > t1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn baseline_always_broadcasts() {
        let mut m = MemorySystem::new(baseline_cfg(), 1);
        let a = Addr(0x10000);
        let t1 = m.load(C0, Cycle(0), a, false);
        let _ = m.load(C0, t1, a.offset(64), false);
        assert_eq!(m.metrics.broadcasts, 2);
        assert_eq!(m.metrics.direct.total(), 0);
    }

    #[test]
    fn load_fills_exclusive_when_unshared() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x2000);
        m.load(C0, Cycle(0), a, false);
        let line = m.geometry().line_of(a);
        assert_eq!(m.l2_state(C0, line), MoesiState::Exclusive);
        let region = m.geometry().region_of_line(line);
        assert_eq!(m.rca(C0).unwrap().state(region), RegionState::DirtyInvalid);
    }

    #[test]
    fn sharing_downgrades_region_and_lines() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x4000);
        let line = m.geometry().line_of(a);
        let region = m.geometry().region_of_line(line);
        m.load(C0, Cycle(0), a, false);
        // C1 reads the same line: broadcast (its region is invalid),
        // C0's E copy downgrades, both see sharing.
        m.load(C1, Cycle(1000), a, false);
        assert_eq!(m.l2_state(C0, line), MoesiState::Shared);
        assert_eq!(m.l2_state(C1, line), MoesiState::Shared);
        assert!(!m.rca(C0).unwrap().state(region).is_exclusive());
        assert!(!m.rca(C1).unwrap().state(region).is_exclusive());
        m.check_invariants().unwrap();
    }

    #[test]
    fn store_to_shared_line_upgrades_and_invalidates() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x4000);
        let line = m.geometry().line_of(a);
        m.load(C0, Cycle(0), a, false);
        m.load(C1, Cycle(1000), a, false);
        m.store(C0, Cycle(2000), a);
        assert_eq!(m.l2_state(C0, line), MoesiState::Modified);
        assert_eq!(m.l2_state(C1, line), MoesiState::Invalid);
        m.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_in_exclusive_region_completes_locally() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x8000);
        // Ifetch-style shared fill would give CI; use a plain load (E fill,
        // DI region), then store to another line of the region.
        m.load(C0, Cycle(0), a, false);
        let broadcasts_before = m.metrics.broadcasts;
        m.store(C0, Cycle(500), a.offset(64));
        // The store's RFO went direct (region DI), not broadcast.
        assert_eq!(m.metrics.broadcasts, broadcasts_before);
        // A store to the SAME line (now M) is silent; a store to a shared
        // copy in an exclusive region completes locally.
        m.check_invariants().unwrap();
    }

    #[test]
    fn dcbz_in_exclusive_region_is_local() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0xA000);
        m.load(C0, Cycle(0), a, false); // claims region DI
        let before = m.metrics.broadcasts;
        let done = m.dcbz(C0, Cycle(500), a.offset(64));
        assert_eq!(m.metrics.broadcasts, before);
        assert_eq!(m.metrics.local.dcb, 1);
        // Local completion: just the L2 access latency.
        assert!(done - Cycle(500) <= 13, "dcbz took {}", done - Cycle(500));
        let line = m.geometry().line_of(a.offset(64));
        assert_eq!(m.l2_state(C0, line), MoesiState::Modified);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cache_to_cache_transfer_from_modified_owner() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0xC000);
        m.store(C0, Cycle(0), a);
        let before_c2c = m.metrics.cache_to_cache;
        m.load(C1, Cycle(1000), a, false);
        assert_eq!(m.metrics.cache_to_cache, before_c2c + 1);
        let line = m.geometry().line_of(a);
        assert_eq!(m.l2_state(C0, line), MoesiState::Owned);
        assert_eq!(m.l2_state(C1, line), MoesiState::Shared);
        m.check_invariants().unwrap();
    }

    #[test]
    fn oracle_counts_unshared_reads_as_unnecessary() {
        let mut m = MemorySystem::new(baseline_cfg(), 1);
        m.load(C0, Cycle(0), Addr(0x123400), false);
        assert_eq!(m.metrics.unnecessary.data, 1);
        // A genuinely shared access is necessary.
        m.store(C1, Cycle(1000), Addr(0x123400));
        assert_eq!(m.metrics.unnecessary.data, 1);
    }

    #[test]
    fn direct_latency_beats_snoop_latency() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x40000);
        let t0 = Cycle(0);
        let first = m.load(C0, t0, a, false); // broadcast
        let t1 = Cycle(10_000);
        let second = m.load(C0, t1, a.offset(128), false); // direct
        let lat_first = first - t0;
        let lat_second = second - t1;
        assert!(
            lat_second < lat_first,
            "direct {lat_second} should beat snoop {lat_first}"
        );
    }

    #[test]
    fn ifetch_uses_shared_reads_and_l1i() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x1_0000);
        let t1 = m.ifetch(C0, Cycle(0), a);
        assert!(t1 > Cycle(1));
        assert_eq!(m.metrics.requests.ifetch, 1);
        // Same line now hits L1I.
        let t2 = m.ifetch(C0, Cycle(5000), a.offset(4));
        assert_eq!(t2, Cycle(5001));
        // Region is clean-exclusive: another ifetch in the region avoids
        // the broadcast.
        let before = m.metrics.broadcasts;
        m.ifetch(C0, Cycle(6000), a.offset(64));
        assert_eq!(m.metrics.broadcasts, before);
        let region = m.geometry().region_of(a);
        assert_eq!(m.rca(C0).unwrap().state(region), RegionState::CleanInvalid);
        m.check_invariants().unwrap();
    }

    #[test]
    fn ifetch_shared_across_cores_stays_externally_clean() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x2_0000);
        m.ifetch(C0, Cycle(0), a);
        m.ifetch(C1, Cycle(1000), a);
        let region = m.geometry().region_of(a);
        assert_eq!(m.rca(C1).unwrap().state(region), RegionState::CleanClean);
        // C1 can now ifetch other lines of the region without broadcast.
        let before = m.metrics.broadcasts;
        m.ifetch(C1, Cycle(2000), a.offset(128));
        assert_eq!(m.metrics.broadcasts, before);
        m.check_invariants().unwrap();
    }

    #[test]
    fn writebacks_route_direct_with_region_entry() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        // Dirty a line, then force it out by filling its L2 set with
        // conflicting lines.
        let a = Addr(0x100000);
        m.store(C0, Cycle(0), a);
        let l2_sets = m.config().hierarchy.l2.sets() as u64;
        let line_bytes = 64u64;
        let stride = l2_sets * line_bytes;
        let before_wb = m.metrics.requests.writeback;
        // Two conflicting fills (2-way set) evict the dirty line.
        m.load(C0, Cycle(1000), Addr(a.0 + stride), false);
        m.load(C0, Cycle(2000), Addr(a.0 + 2 * stride), false);
        assert!(m.metrics.requests.writeback > before_wb);
        assert!(m.metrics.direct.writeback > 0, "writeback went direct");
        m.check_invariants().unwrap();
    }

    #[test]
    fn self_invalidation_recovers_migratory_regions() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let a = Addr(0x200000);
        // C0 claims the region and dirties a line.
        m.store(C0, Cycle(0), a);
        // Evict C0's line via conflicts (region entry stays, count 0).
        let stride = m.config().hierarchy.l2.sets() as u64 * 64;
        m.load(C0, Cycle(1000), Addr(a.0 + stride), false);
        m.load(C0, Cycle(2000), Addr(a.0 + 2 * stride), false);
        // C1 now requests the line: C0's empty region self-invalidates
        // and C1 obtains the region exclusively.
        m.store(C1, Cycle(3000), a);
        let region = m.geometry().region_of(a);
        assert_eq!(m.rca(C0).unwrap().state(region), RegionState::Invalid);
        assert!(m.rca(C1).unwrap().state(region).is_exclusive());
        assert!(m.rca(C0).unwrap().stats().self_invalidations.value() > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn scaled_mode_tracks_exclusivity_only() {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Scaled {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        let mut m = MemorySystem::new(cfg, 1);
        let a = Addr(0x3000);
        m.load(C0, Cycle(0), a, false);
        let before = m.metrics.broadcasts;
        m.load(C0, Cycle(1000), a.offset(64), false);
        assert_eq!(m.metrics.broadcasts, before, "exclusive region goes direct");
        m.check_invariants().unwrap();
    }

    #[test]
    fn regionscout_mode_learns_not_shared() {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::RegionScout { region_bytes: 512 });
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        let mut m = MemorySystem::new(cfg, 1);
        let a = Addr(0x3000);
        m.load(C0, Cycle(0), a, false); // broadcast, learns not-shared
        let before = m.metrics.broadcasts;
        m.load(C0, Cycle(1000), a.offset(64), false);
        assert_eq!(m.metrics.broadcasts, before);
        m.check_invariants().unwrap();
    }

    #[test]
    fn region_prefetch_filter_drops_externally_dirty_targets() {
        let mut cfg = cgct_cfg();
        cfg.stream_prefetch = true;
        cfg.region_prefetch_filter = true;
        let mut m = MemorySystem::new(cfg, 1);
        // C1 dirties lines of region B; C0 then streams toward it so the
        // prefetcher wants lines whose region C0 knows is externally
        // dirty.
        let region_b = Addr(0x8000); // region 64 (512B regions)
        m.store(C1, Cycle(0), region_b);
        // C0 touches a line in region B (learns it is externally dirty)...
        m.load(C0, Cycle(1000), region_b.offset(64), false);
        // ...then streams sequentially into it to trigger prefetches.
        m.load(C0, Cycle(2000), Addr(0x7F00), false);
        m.load(C0, Cycle(3000), Addr(0x7F40), false);
        m.load(C0, Cycle(4000), Addr(0x7F80), false);
        assert!(
            m.metrics.prefetches_filtered > 0,
            "filter never fired (prefetches={} filtered={})",
            m.metrics.prefetches,
            m.metrics.prefetches_filtered
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn dram_speculation_filter_saves_wasted_accesses() {
        let mut cfg = cgct_cfg();
        cfg.dram_speculation_filter = true;
        let mut m = MemorySystem::new(cfg, 1);
        let a = Addr(0xE000);
        // C1 owns the line dirty; C0 reads it twice (second read after C1
        // re-dirties) so C0's second request sees an externally-dirty
        // region and predicts the cache-to-cache supply.
        m.store(C1, Cycle(0), a);
        m.load(C0, Cycle(1000), a, false); // region learned CD/DD
        m.store(C1, Cycle(2000), a.offset(64));
        let saved_before = m.metrics.dram_speculation_saved;
        m.load(C0, Cycle(3000), a.offset(64), false);
        assert!(
            m.metrics.dram_speculation_saved > saved_before,
            "prediction never saved a DRAM access"
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn baseline_counts_wasted_speculative_dram() {
        let mut m = MemorySystem::new(baseline_cfg(), 1);
        let a = Addr(0xF000);
        m.store(C1, Cycle(0), a);
        m.load(C0, Cycle(1000), a, false); // cache-to-cache: DRAM wasted
        assert!(m.metrics.dram_speculation_wasted > 0);
        assert_eq!(m.metrics.dram_speculation_saved, 0);
    }

    #[test]
    fn shared_read_bypass_trades_broadcasts_for_upgrades() {
        let mut cfg = cgct_cfg();
        cfg.shared_read_bypass = true;
        let mut m = MemorySystem::new(cfg, 1);
        let a = Addr(0x7_0000);
        // Both cores read a line: the region becomes externally clean for
        // C0 (CC after C1's read downgrades it).
        m.load(C0, Cycle(0), a, false);
        m.load(C1, Cycle(1000), a, false);
        // C0 loads ANOTHER line of the region: region CC/DC -> fetch a
        // shared copy direct from memory, no broadcast.
        let broadcasts = m.metrics.broadcasts;
        m.load(C0, Cycle(2000), a.offset(64), false);
        assert_eq!(m.metrics.broadcasts, broadcasts, "bypassed the broadcast");
        let line = m.geometry().line_of(a.offset(64));
        assert_eq!(m.l2_state(C0, line), MoesiState::Shared);
        // The cost: storing to it now needs an upgrade broadcast.
        m.store(C0, Cycle(3000), a.offset(64));
        assert!(m.metrics.broadcasts > broadcasts);
        assert_eq!(m.l2_state(C0, line), MoesiState::Modified);
        m.check_invariants().unwrap();
    }

    #[test]
    fn owner_prediction_short_circuits_dirty_reads() {
        let mut cfg = cgct_cfg();
        cfg.owner_prediction = true;
        let mut m = MemorySystem::new(cfg, 1);
        let a = Addr(0x5_0000);
        // C1 dirties two lines of the region; C0 reads one (broadcast,
        // learns owner), then reads the other: predicted point-to-point.
        m.store(C1, Cycle(0), a);
        m.store(C1, Cycle(500), a.offset(64));
        m.load(C0, Cycle(1000), a, false);
        let broadcasts = m.metrics.broadcasts;
        let t0 = Cycle(2000);
        let done = m.load(C0, t0, a.offset(64), false);
        assert_eq!(m.metrics.owner_prediction_hits, 1);
        assert_eq!(m.metrics.broadcasts, broadcasts, "no broadcast needed");
        // Two-hop latency beats the snoop path (which is >= 180 cycles).
        assert!(done - t0 < 180, "owner-predicted read took {}", done - t0);
        let line = m.geometry().line_of(a.offset(64));
        assert_eq!(m.l2_state(C0, line), MoesiState::Shared);
        assert_eq!(m.l2_state(C1, line), MoesiState::Owned);
        m.check_invariants().unwrap();
    }

    #[test]
    fn owner_prediction_miss_falls_back_to_broadcast() {
        let mut cfg = cgct_cfg();
        cfg.owner_prediction = true;
        let mut m = MemorySystem::new(cfg, 1);
        let a = Addr(0x6_0000);
        m.store(C1, Cycle(0), a);
        m.load(C0, Cycle(1000), a, false); // learns owner = C1
                                           // C1's copy is evicted via conflicts; the hint goes stale.
        let stride = m.config().hierarchy.l2.sets() as u64 * 64;
        m.load(C1, Cycle(2000), Addr(a.0 + stride), false);
        m.load(C1, Cycle(3000), Addr(a.0 + 2 * stride), false);
        // C0 reads another line of the region: probe misses, broadcast.
        let before = m.metrics.broadcasts;
        m.load(C0, Cycle(4000), a.offset(128), false);
        assert!(m.metrics.owner_prediction_misses >= 1);
        assert!(m.metrics.broadcasts > before, "fell back to broadcast");
        m.check_invariants().unwrap();
    }

    fn directory_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Directory);
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        cfg
    }

    #[test]
    fn directory_mode_never_broadcasts() {
        let mut m = MemorySystem::new(directory_cfg(), 1);
        let a = Addr(0x3000);
        m.load(C0, Cycle(0), a, false);
        m.store(C1, Cycle(1000), a);
        m.load(C0, Cycle(2000), a, false);
        assert_eq!(m.metrics.broadcasts, 0);
        assert_eq!(m.metrics.direct.total(), m.metrics.requests.total());
        m.check_invariants().unwrap();
    }

    #[test]
    fn directory_unshared_read_is_two_hop_and_exclusive() {
        let mut m = MemorySystem::new(directory_cfg(), 1);
        let a = Addr(0x3000);
        let t0 = Cycle(0);
        let done = m.load(C0, t0, a, false);
        let line = m.geometry().line_of(a);
        assert_eq!(m.l2_state(C0, line), MoesiState::Exclusive);
        // Two hops + two serialized DRAM accesses (the directory lookup,
        // then the data): ~360 — the price of keeping full-map state in
        // memory, and exactly what the DirectoryCgct bypass removes.
        assert!(
            (300..440).contains(&(done - t0)),
            "directory 2-hop took {}",
            done - t0
        );
        assert_eq!(m.metrics.dir_lookups, 1);
        assert_eq!(m.metrics.dir_bypasses, 0);
    }

    #[test]
    fn directory_dirty_read_pays_three_hops() {
        let mut m = MemorySystem::new(directory_cfg(), 1);
        let a = Addr(0x3000);
        m.store(C0, Cycle(0), a);
        let t0 = Cycle(10_000);
        let done = m.load(C1, t0, a, false);
        let line = m.geometry().line_of(a);
        assert_eq!(m.l2_state(C0, line), MoesiState::Owned);
        assert_eq!(m.l2_state(C1, line), MoesiState::Shared);
        assert_eq!(m.metrics.cache_to_cache, 1);
        let mc = m.config().topology.mc_of_region(m.geometry().region_of(a));
        assert_eq!(m.directory(mc.0).three_hop_transfers, 1);
        // Three hops beat nothing: this is the directory's weak spot the
        // paper highlights — slower than a snooping c2c (~180-190).
        assert!(done - t0 > 60, "three-hop too fast: {}", done - t0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn directory_rfo_invalidates_all_sharers() {
        let mut m = MemorySystem::new(directory_cfg(), 1);
        let a = Addr(0x3000);
        let line = m.geometry().line_of(a);
        m.load(C0, Cycle(0), a, false);
        m.load(C1, Cycle(1000), a, false);
        m.store(CoreId(1), Cycle(2000), a);
        assert_eq!(m.l2_state(CoreId(1), line), MoesiState::Modified);
        assert_eq!(m.l2_state(C0, line), MoesiState::Invalid);
        assert_eq!(m.l2_state(C1, line), MoesiState::Invalid);
        m.check_invariants().unwrap();
    }

    #[test]
    fn directory_invariants_under_random_traffic() {
        let mut m = MemorySystem::new(directory_cfg(), 1);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut now = Cycle(0);
        for i in 0..4000 {
            let core = CoreId(rng.gen_range(0..4));
            let addr = Addr((rng.gen_range(0..1024u64)) * 64);
            match rng.gen_range(0..4) {
                0 => {
                    m.load(core, now, addr, false);
                }
                1 => {
                    m.store(core, now, addr);
                }
                2 => {
                    m.ifetch(core, now, addr);
                }
                _ => {
                    m.dcbz(core, now, addr);
                }
            }
            now += 10;
            if i % 500 == 0 {
                m.check_invariants().unwrap();
            }
        }
        m.check_invariants().unwrap();
        assert_eq!(m.metrics.broadcasts, 0);
    }

    fn dir_cgct_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::DirectoryCgct {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        cfg
    }

    fn hier_cfg(cores: usize) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Hierarchical {
            region_bytes: 512,
            sets: 8192,
        });
        cfg.topology = Topology::for_cores(cores);
        cfg.perturbation = 0;
        cfg.stream_prefetch = false;
        cfg
    }

    #[test]
    #[should_panic(expected = "at most 64 nodes")]
    fn directory_mode_rejects_more_than_64_nodes() {
        let mut cfg = directory_cfg();
        cfg.topology = Topology {
            cores_per_chip: 2,
            chips_per_switch: 2,
            switches_per_board: 2,
            boards: 9, // 72 cores: DirEntry::sharers is a u64 bit-vector
        };
        let _ = MemorySystem::new(cfg, 1);
    }

    #[test]
    fn dir_cgct_first_touch_looks_up_then_bypasses() {
        let mut m = MemorySystem::new(dir_cgct_cfg(), 1);
        let a = Addr(0x10000);
        // Cold region: no RCA claim, cold region-directory cache — the
        // home's per-line lookup DRAM access is paid.
        let t1 = m.load(C0, Cycle(0), a, false);
        assert_eq!(m.metrics.dir_lookups, 1);
        assert_eq!(m.metrics.dir_bypasses, 0);
        let first = t1 - Cycle(0);
        // Second line of the now-exclusive region: the RCA claim skips
        // the lookup; only the request hop + data DRAM remain.
        let t0 = Cycle(10_000);
        let t2 = m.load(C0, t0, a.offset(64), false);
        assert_eq!(m.metrics.dir_lookups, 1);
        assert_eq!(m.metrics.dir_bypasses, 1);
        let bypassed = t2 - t0;
        assert!(
            bypassed < first,
            "bypassed fill ({bypassed}) should beat the full lookup ({first})"
        );
        assert_eq!(m.metrics.broadcasts, 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn dir_cgct_region_cache_short_circuits_home_lookup() {
        // A tiny RCA (1 set x 2 ways) forces the requester to forget its
        // region claims while the home's region-grain directory cache
        // still knows nobody else holds the region.
        let mut cfg = dir_cgct_cfg();
        cfg.mode = CoherenceMode::DirectoryCgct {
            region_bytes: 512,
            sets: 1,
        };
        let mut m = MemorySystem::new(cfg, 1);
        let region_stride = 512u64;
        let a = Addr(0x10000);
        m.load(C0, Cycle(0), a, false);
        // Two more regions evict region(a) from the 2-way RCA. Both are
        // odd-numbered regions homed at mc1, so mc0's single-slot region
        // cache (sets is shared with the RCA config) keeps region(a).
        m.load(C0, Cycle(10_000), a.offset(region_stride), false);
        m.load(C0, Cycle(20_000), a.offset(3 * region_stride), false);
        let lookups = m.metrics.dir_lookups;
        // Re-touch region(a): no RCA claim, but the home's cache proves
        // only C0 ever held it — lookup skipped at the home point.
        m.load(C0, Cycle(30_000), a.offset(64), false);
        assert_eq!(m.metrics.dir_lookups, lookups);
        assert!(m.metrics.dir_bypasses >= 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn dir_cgct_sharing_still_invalidates_through_home() {
        let mut m = MemorySystem::new(dir_cgct_cfg(), 1);
        let a = Addr(0x4000);
        let line = m.geometry().line_of(a);
        m.load(C0, Cycle(0), a, false);
        m.load(C1, Cycle(1000), a, false);
        assert_eq!(m.l2_state(C0, line), MoesiState::Shared);
        assert_eq!(m.l2_state(C1, line), MoesiState::Shared);
        m.store(C1, Cycle(2000), a);
        assert_eq!(m.l2_state(C1, line), MoesiState::Modified);
        assert_eq!(m.l2_state(C0, line), MoesiState::Invalid);
        assert_eq!(m.metrics.broadcasts, 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn dir_cgct_tolerates_stale_directory_entries_under_region_claims() {
        // A silent clean eviction leaves the home's full-map entry
        // naming a cache that no longer holds the line. A later region
        // claim must still bypass soundly: the stale owner/sharer bits
        // name nobody holding data, and the sanitizer must not trip on
        // the harmless leftover invalidations the entry produces.
        let mut m = MemorySystem::new(dir_cgct_cfg(), 1);
        let a = Addr(0x8000);
        let line = m.geometry().line_of(a);
        let l2_span = 8192 * 64; // same-set conflicts in the 2-way L2
        m.load(C0, Cycle(0), a, false); // C0 becomes the recorded owner (E)
        m.load(C0, Cycle(1000), Addr(0x8000 + l2_span), false);
        m.load(C0, Cycle(2000), Addr(0x8000 + 2 * l2_span), false);
        assert_eq!(
            m.l2_state(C0, line),
            MoesiState::Invalid,
            "silent clean eviction"
        );
        // C1's read self-invalidates C0's empty region entry; the
        // follow-up store then upgrades under C1's externally-invalid
        // region claim while the directory action still names stale C0.
        m.load(C1, Cycle(10_000), a, false);
        m.store(C1, Cycle(20_000), a);
        assert_eq!(m.l2_state(C1, line), MoesiState::Modified);
        m.check_invariants().unwrap();
    }

    #[test]
    fn dir_cgct_invariants_under_random_traffic() {
        let mut m = MemorySystem::new(dir_cgct_cfg(), 1);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut now = Cycle(0);
        for i in 0..4000 {
            let core = CoreId(rng.gen_range(0..4));
            let addr = Addr((rng.gen_range(0..1024u64)) * 64);
            match rng.gen_range(0..4) {
                0 => {
                    m.load(core, now, addr, false);
                }
                1 => {
                    m.store(core, now, addr);
                }
                2 => {
                    m.ifetch(core, now, addr);
                }
                _ => {
                    m.dcbz(core, now, addr);
                }
            }
            now += 10;
            if i % 500 == 0 {
                m.check_invariants().unwrap();
            }
        }
        m.check_invariants().unwrap();
        assert_eq!(m.metrics.broadcasts, 0);
        assert!(m.metrics.dir_bypasses > 0, "no bypasses ever fired");
    }

    #[test]
    fn hierarchical_filters_unvisited_clusters() {
        // 16 cores = 2 clusters of 8.
        let mut m = MemorySystem::new(hier_cfg(16), 1);
        let a = Addr(0x10000);
        let line = m.geometry().line_of(a);
        // Cold load from cluster 0: the other cluster holds nothing of
        // the region, so its bus is never visited.
        m.load(CoreId(0), Cycle(0), a, false);
        assert_eq!(m.metrics.cluster_local_requests, 1);
        assert_eq!(m.metrics.cross_cluster_requests, 0);
        assert_eq!(m.metrics.cluster_snoops_filtered, 1);
        // Cluster-1 read of the same line must visit cluster 0 (which
        // caches it) and downgrade the copy.
        m.load(CoreId(8), Cycle(10_000), a, false);
        assert_eq!(m.metrics.cross_cluster_requests, 1);
        assert_eq!(m.l2_state(CoreId(0), line), MoesiState::Shared);
        assert_eq!(m.l2_state(CoreId(8), line), MoesiState::Shared);
        m.check_invariants().unwrap();
    }

    #[test]
    fn hierarchical_rca_bypasses_touch_no_bus() {
        let mut m = MemorySystem::new(hier_cfg(16), 1);
        let a = Addr(0x10000);
        let t1 = m.load(CoreId(0), Cycle(0), a, false);
        let broadcasts = m.metrics.broadcasts;
        // Second line of the exclusively-held region: direct to memory.
        let _ = m.load(CoreId(0), t1, a.offset(64), false);
        assert_eq!(m.metrics.broadcasts, broadcasts);
        assert_eq!(m.metrics.direct.data, 1);
        // Upgrade within the region: completes locally.
        let t0 = Cycle(50_000);
        let done = m.store(CoreId(0), t0, a);
        assert_eq!(m.metrics.broadcasts, broadcasts);
        assert!(done - t0 <= m.config().hierarchy.l1d.latency + m.config().hierarchy.l2.latency);
        m.check_invariants().unwrap();
    }

    #[test]
    fn hierarchical_invariants_under_random_traffic() {
        let mut m = MemorySystem::new(hier_cfg(16), 1);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut now = Cycle(0);
        for i in 0..4000 {
            let core = CoreId(rng.gen_range(0..16));
            let addr = Addr((rng.gen_range(0..1024u64)) * 64);
            match rng.gen_range(0..4) {
                0 => {
                    m.load(core, now, addr, false);
                }
                1 => {
                    m.store(core, now, addr);
                }
                2 => {
                    m.ifetch(core, now, addr);
                }
                _ => {
                    m.dcbz(core, now, addr);
                }
            }
            now += 10;
            if i % 500 == 0 {
                m.check_invariants().unwrap();
            }
        }
        m.check_invariants().unwrap();
        assert!(
            m.metrics.cluster_snoops_filtered > 0,
            "the cluster filter never skipped anything"
        );
    }

    #[test]
    fn writeback_routing_matters_only_when_bandwidth_constrained() {
        // §5.1: direct write-back routing "will only affect performance
        // if the system is network-bandwidth-constrained (not the case in
        // our simulations)". With a starved data port, the broadcast
        // write-backs' extra bus occupancy delays demand fills.
        let run = |direct_wb: bool, occupancy: u64| {
            let mut cfg = cgct_cfg();
            cfg.direct_writebacks = direct_wb;
            cfg.data_port_occupancy = occupancy;
            let mut m = MemorySystem::new(cfg, 1);
            let stride = 8192u64 * 64;
            let mut now = Cycle(0);
            let mut last = Cycle(0);
            // Dirty lines + conflict evictions generate a write-back per
            // iteration, interleaved with demand fills.
            for i in 0..64u64 {
                let a = Addr(0x40_0000 + i * 64);
                m.store(C0, now, a);
                now += 50;
                last = m.load(C0, now, Addr(a.0 + stride), false);
                now += 50;
                last = last.max(m.load(C0, now, Addr(a.0 + 2 * stride), false));
                now += 50;
            }
            last
        };
        // Plenty of bandwidth: routing hardly matters.
        let fast_direct = run(true, 40);
        let fast_bcast = run(false, 40);
        let slack = (fast_direct.0 as i64 - fast_bcast.0 as i64).abs();
        // Starved port (20x occupancy): write-backs compete with fills,
        // and both configurations slow down; the direct configuration
        // must not be slower.
        let slow_direct = run(true, 800);
        let slow_bcast = run(false, 800);
        assert!(slow_direct <= slow_bcast, "{slow_direct} vs {slow_bcast}");
        assert!(
            slow_bcast.0 > fast_bcast.0,
            "starved port must slow the run: {slow_bcast} vs {fast_bcast}"
        );
        assert!(slack < 2_000, "ample bandwidth: routing neutral ({slack})");
    }

    #[test]
    fn jetty_filters_lookups_without_changing_behavior() {
        let run = |jetty: bool| {
            let mut cfg = baseline_cfg();
            cfg.jetty_filter = jetty;
            let mut m = MemorySystem::new(cfg, 1);
            let mut rng = Xoshiro256pp::seed_from_u64(3);
            let mut now = Cycle(0);
            for _ in 0..3000 {
                let core = CoreId(rng.gen_range(0..4));
                let addr = Addr((rng.gen_range(0..512u64)) * 64);
                if rng.gen_bool(0.5) {
                    m.load(core, now, addr, false);
                } else {
                    m.store(core, now, addr);
                }
                now += 10;
            }
            m.check_invariants().unwrap();
            m
        };
        let plain = run(false);
        let filtered = run(true);
        // Identical protocol behavior...
        assert_eq!(plain.metrics.broadcasts, filtered.metrics.broadcasts);
        assert_eq!(
            plain.metrics.requests.total(),
            filtered.metrics.requests.total()
        );
        // ...but many snoop-induced tag lookups were skipped.
        assert!(filtered.metrics.jetty_filtered_lookups > 0);
        assert_eq!(
            filtered.metrics.snooped_tag_lookups + filtered.metrics.jetty_filtered_lookups,
            plain.metrics.snooped_tag_lookups
        );
    }

    #[test]
    fn invariants_hold_under_random_traffic() {
        let mut m = MemorySystem::new(cgct_cfg(), 1);
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut now = Cycle(0);
        for i in 0..5000 {
            let core = CoreId(rng.gen_range(0..4));
            let addr = Addr((rng.gen_range(0..2048u64)) * 64);
            match rng.gen_range(0..4) {
                0 => {
                    m.load(core, now, addr, false);
                }
                1 => {
                    m.store(core, now, addr);
                }
                2 => {
                    m.ifetch(core, now, addr);
                }
                _ => {
                    m.dcbz(core, now, addr);
                }
            }
            now += 10;
            if i % 500 == 0 {
                m.check_invariants().unwrap();
            }
        }
        m.check_invariants().unwrap();
    }
}
