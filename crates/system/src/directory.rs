//! A full-map directory coherence protocol — the comparison point the
//! paper positions CGCT against (§1.2):
//!
//! > "In effect, it enables a broadcast-based system to achieve much of
//! > the benefit of a directory-based system (low latency access to
//! > non-shared data, lower interconnect traffic, and improved
//! > scalability) without the disadvantage of three-hop cache-to-cache
//! > transfers."
//!
//! Each memory controller keeps a full-map entry per line it owns:
//! the current owner (a cache holding the line in E/M/O, which may have
//! modified it silently) and a sharer bit-vector. Requests travel
//! point-to-point to the home controller; reads of owned lines are
//! *forwarded* to the owner — the three-hop path CGCT avoids. Sharer
//! information may be stale after silent clean evictions, which only
//! causes harmless extra invalidations (the standard full-map behaviour).

use cgct_cache::LineAddr;
use cgct_sim::hash::StableHashMap;

/// One line's directory state at its home controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Cache holding the line in an ownership state (E/M/O): data must be
    /// fetched from (or invalidated at) this cache, not memory.
    pub owner: Option<u8>,
    /// Bit-vector of caches that may hold shared copies (may
    /// over-approximate after silent evictions).
    pub sharers: u64,
}

impl DirEntry {
    /// Whether any cache may hold the line.
    pub fn is_cached(&self) -> bool {
        self.owner.is_some() || self.sharers != 0
    }

    /// Iterates the sharer ids set in the bit-vector.
    pub fn sharer_ids(&self) -> impl Iterator<Item = u8> + '_ {
        (0..64u8).filter(|i| self.sharers & (1 << i) != 0)
    }
}

/// The home controller's decision for a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirAction {
    /// Memory supplies the data (two hops: requester -> home -> requester).
    FromMemory {
        /// Caches whose (possibly stale) shared copies must be invalidated
        /// first (empty for reads).
        invalidate: Vec<u8>,
    },
    /// The owner cache supplies the data (three hops: requester -> home ->
    /// owner -> requester).
    ForwardToOwner {
        /// The owning cache.
        owner: u8,
        /// Additional sharers to invalidate (exclusive requests only).
        invalidate: Vec<u8>,
    },
    /// No data movement needed (upgrades): just invalidations.
    InvalidateOnly {
        /// Caches to invalidate.
        invalidate: Vec<u8>,
    },
}

/// What the requester asked the directory for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirRequest {
    /// Read for a shared or exclusive copy.
    Read,
    /// Read for ownership (store miss / dcbz).
    ReadExclusive,
    /// Upgrade an existing shared copy to modifiable.
    Upgrade,
    /// Write a dirty line back to memory.
    Writeback,
}

/// The directory state for one memory controller's lines.
#[derive(Debug, Clone, Default)]
pub struct DirectoryController {
    entries: StableHashMap<u64, DirEntry>,
    /// Three-hop (owner-forwarded) transfers served.
    pub three_hop_transfers: u64,
    /// Invalidation messages sent.
    pub invalidations_sent: u64,
}

impl DirectoryController {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current entry for `line` (all-invalid if untracked).
    pub fn entry(&self, line: LineAddr) -> DirEntry {
        self.entries.get(&line.0).copied().unwrap_or_default()
    }

    /// Number of tracked lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Handles `req` from `requester`, updating the directory and
    /// returning the required action. `fills_exclusive` reports back
    /// whether a `Read` was granted an E copy (no other sharers).
    pub fn handle(&mut self, line: LineAddr, requester: u8, req: DirRequest) -> (DirAction, bool) {
        let entry = self.entries.entry(line.0).or_default();
        match req {
            DirRequest::Read => {
                if let Some(owner) = entry.owner {
                    if owner == requester {
                        // Re-request from the owner itself (e.g. after a
                        // partial local downgrade): memory path, keep state.
                        return (DirAction::FromMemory { invalidate: vec![] }, false);
                    }
                    // Owner keeps the line (downgrades E/M -> O at the
                    // cache); requester becomes a sharer. The owner stays
                    // recorded: O still means "memory is stale".
                    entry.sharers |= 1 << requester;
                    entry.sharers |= 1 << owner;
                    self.three_hop_transfers += 1;
                    (
                        DirAction::ForwardToOwner {
                            owner,
                            invalidate: vec![],
                        },
                        false,
                    )
                } else if entry.sharers & !(1 << requester) != 0 {
                    entry.sharers |= 1 << requester;
                    (DirAction::FromMemory { invalidate: vec![] }, false)
                } else {
                    // Nobody else: grant exclusive, requester becomes owner.
                    entry.owner = Some(requester);
                    entry.sharers = 0;
                    (DirAction::FromMemory { invalidate: vec![] }, true)
                }
            }
            DirRequest::ReadExclusive | DirRequest::Upgrade => {
                // The owner is handled via the forward (or appended for
                // upgrades below), never via the plain sharer list.
                let owner = entry.owner;
                let invalidate: Vec<u8> = entry
                    .sharer_ids()
                    .filter(|&s| s != requester && Some(s) != owner)
                    .collect();
                self.invalidations_sent += invalidate.len() as u64;
                let action = match entry.owner {
                    Some(owner) if owner != requester => {
                        self.invalidations_sent += 1;
                        if req == DirRequest::ReadExclusive {
                            self.three_hop_transfers += 1;
                            DirAction::ForwardToOwner { owner, invalidate }
                        } else {
                            let mut inv = invalidate;
                            inv.push(owner);
                            DirAction::InvalidateOnly { invalidate: inv }
                        }
                    }
                    _ => {
                        if req == DirRequest::ReadExclusive {
                            DirAction::FromMemory { invalidate }
                        } else {
                            DirAction::InvalidateOnly { invalidate }
                        }
                    }
                };
                entry.owner = Some(requester);
                entry.sharers = 0;
                (action, true)
            }
            DirRequest::Writeback => {
                if entry.owner == Some(requester) {
                    entry.owner = None;
                }
                // A silent-sharer writeback cannot happen (only dirty
                // lines write back); keep sharers as-is.
                if !entry.is_cached() {
                    self.entries.remove(&line.0);
                }
                (DirAction::FromMemory { invalidate: vec![] }, false)
            }
        }
    }

    /// Removes `cache` from `line`'s sharer set (explicit clean-eviction
    /// notification; our system evicts clean lines silently, so this is
    /// exercised only by tests and future protocols).
    pub fn drop_sharer(&mut self, line: LineAddr, cache: u8) {
        if let Some(e) = self.entries.get_mut(&line.0) {
            e.sharers &= !(1 << cache);
            if e.owner == Some(cache) {
                e.owner = None;
            }
            if !e.is_cached() {
                self.entries.remove(&line.0);
            }
        }
    }
}

impl cgct_sim::Snap for DirEntry {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("o", self.owner.map(u64::from).snap()),
            ("s", Json::u64(self.sharers)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        let owner: Option<u64> = unsnap_field(v, "o")?;
        let owner = owner
            .map(|o| u8::try_from(o).map_err(|_| "directory owner out of range".to_string()))
            .transpose()?;
        Ok(DirEntry {
            owner,
            sharers: unsnap_field(v, "s")?,
        })
    }
}

impl cgct_sim::Snap for DirectoryController {
    /// Entries are serialized sorted by line address so the snapshot is
    /// independent of `HashMap` iteration order.
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        let mut entries: Vec<(&u64, &DirEntry)> = self.entries.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        Json::obj([
            (
                "entries",
                Json::Array(
                    entries
                        .into_iter()
                        .map(|(k, e)| Json::Array(vec![Json::u64(*k), e.snap()]))
                        .collect(),
                ),
            ),
            ("three_hop_transfers", Json::u64(self.three_hop_transfers)),
            ("invalidations_sent", Json::u64(self.invalidations_sent)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        let mut entries = StableHashMap::default();
        for pair in elements(field(v, "entries")?)? {
            let pair = elements(pair)?;
            if pair.len() != 2 {
                return Err("directory entry must be a [line, entry] pair".to_string());
            }
            let key = u64::unsnap(&pair[0])?;
            if entries.insert(key, DirEntry::unsnap(&pair[1])?).is_some() {
                return Err(format!("duplicate directory entry for line {key}"));
            }
        }
        Ok(DirectoryController {
            entries,
            three_hop_transfers: unsnap_field(v, "three_hop_transfers")?,
            invalidations_sent: unsnap_field(v, "invalidations_sent")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(42);

    #[test]
    fn first_read_grants_exclusive() {
        let mut d = DirectoryController::new();
        let (action, exclusive) = d.handle(L, 0, DirRequest::Read);
        assert_eq!(action, DirAction::FromMemory { invalidate: vec![] });
        assert!(exclusive);
        assert_eq!(d.entry(L).owner, Some(0));
    }

    #[test]
    fn read_of_owned_line_is_three_hop() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read); // 0 owns E
        let (action, exclusive) = d.handle(L, 1, DirRequest::Read);
        assert_eq!(
            action,
            DirAction::ForwardToOwner {
                owner: 0,
                invalidate: vec![]
            }
        );
        assert!(!exclusive);
        assert_eq!(d.three_hop_transfers, 1);
        // Both are now sharers; 0 remains the (O) owner.
        let e = d.entry(L);
        assert_eq!(e.owner, Some(0));
        assert_eq!(e.sharers & 0b11, 0b11);
    }

    #[test]
    fn read_of_shared_line_comes_from_memory() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read); // forwarded; 0 -> O
                                          // Owner 0 writes the line back (evicting its O copy).
        d.handle(L, 0, DirRequest::Writeback);
        let (action, _) = d.handle(L, 2, DirRequest::Read);
        assert_eq!(action, DirAction::FromMemory { invalidate: vec![] });
        assert_eq!(d.three_hop_transfers, 1, "no new forward needed");
    }

    #[test]
    fn rfo_invalidates_sharers_and_takes_ownership() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read);
        let (action, exclusive) = d.handle(L, 2, DirRequest::ReadExclusive);
        assert!(exclusive);
        match action {
            DirAction::ForwardToOwner { owner, invalidate } => {
                assert_eq!(owner, 0);
                assert_eq!(invalidate, vec![1]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        let e = d.entry(L);
        assert_eq!(e.owner, Some(2));
        assert_eq!(e.sharers, 0);
        assert!(d.invalidations_sent >= 2);
    }

    #[test]
    fn upgrade_only_invalidates() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read);
        d.handle(L, 0, DirRequest::Writeback); // owner gone, sharers remain
        let (action, _) = d.handle(L, 1, DirRequest::Upgrade);
        match action {
            DirAction::InvalidateOnly { invalidate } => {
                // Sharer 0 may be stale but is invalidated anyway.
                assert!(invalidate.contains(&0));
                assert!(!invalidate.contains(&1));
            }
            other => panic!("expected invalidate-only, got {other:?}"),
        }
        assert_eq!(d.entry(L).owner, Some(1));
    }

    #[test]
    fn writeback_clears_ownership_and_garbage_collects() {
        let mut d = DirectoryController::new();
        d.handle(L, 3, DirRequest::Read);
        assert_eq!(d.tracked_lines(), 1);
        d.handle(L, 3, DirRequest::Writeback);
        assert_eq!(d.entry(L).owner, None);
        assert_eq!(d.tracked_lines(), 0, "empty entries are collected");
    }

    #[test]
    fn drop_sharer_prunes_entries() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read);
        d.drop_sharer(L, 1);
        d.drop_sharer(L, 0);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn upgrade_with_remote_owner_invalidates_the_owner() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read); // 0 owns E
                                          // 1 somehow holds a stale S and upgrades (can happen after an O
                                          // owner supplied it data and the directory recorded both).
        let (action, _) = d.handle(L, 1, DirRequest::Upgrade);
        match action {
            DirAction::InvalidateOnly { invalidate } => assert!(invalidate.contains(&0)),
            other => panic!("{other:?}"),
        }
        assert_eq!(d.entry(L).owner, Some(1));
    }
}
