//! A full-map directory coherence protocol — the comparison point the
//! paper positions CGCT against (§1.2):
//!
//! > "In effect, it enables a broadcast-based system to achieve much of
//! > the benefit of a directory-based system (low latency access to
//! > non-shared data, lower interconnect traffic, and improved
//! > scalability) without the disadvantage of three-hop cache-to-cache
//! > transfers."
//!
//! Each memory controller keeps a full-map entry per line it owns:
//! the current owner (a cache holding the line in E/M/O, which may have
//! modified it silently) and a sharer bit-vector. Requests travel
//! point-to-point to the home controller; reads of owned lines are
//! *forwarded* to the owner — the three-hop path CGCT avoids. Sharer
//! information may be stale after silent clean evictions, which only
//! causes harmless extra invalidations (the standard full-map behaviour).

use cgct_cache::{LineAddr, RegionAddr};
use cgct_sim::hash::StableHashMap;

/// One line's directory state at its home controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Cache holding the line in an ownership state (E/M/O): data must be
    /// fetched from (or invalidated at) this cache, not memory.
    pub owner: Option<u8>,
    /// Bit-vector of caches that may hold shared copies (may
    /// over-approximate after silent evictions).
    pub sharers: u64,
}

impl DirEntry {
    /// Whether any cache may hold the line.
    pub fn is_cached(&self) -> bool {
        self.owner.is_some() || self.sharers != 0
    }

    /// Iterates the sharer ids set in the bit-vector.
    pub fn sharer_ids(&self) -> impl Iterator<Item = u8> + '_ {
        (0..64u8).filter(|i| self.sharers & (1 << i) != 0)
    }
}

/// The home controller's decision for a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirAction {
    /// Memory supplies the data (two hops: requester -> home -> requester).
    FromMemory {
        /// Caches whose (possibly stale) shared copies must be invalidated
        /// first (empty for reads).
        invalidate: Vec<u8>,
    },
    /// The owner cache supplies the data (three hops: requester -> home ->
    /// owner -> requester).
    ForwardToOwner {
        /// The owning cache.
        owner: u8,
        /// Additional sharers to invalidate (exclusive requests only).
        invalidate: Vec<u8>,
    },
    /// No data movement needed (upgrades): just invalidations.
    InvalidateOnly {
        /// Caches to invalidate.
        invalidate: Vec<u8>,
    },
}

/// What the requester asked the directory for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirRequest {
    /// Read for a shared or exclusive copy.
    Read,
    /// Read for ownership (store miss / dcbz).
    ReadExclusive,
    /// Upgrade an existing shared copy to modifiable.
    Upgrade,
    /// Write a dirty line back to memory.
    Writeback,
}

/// The directory state for one memory controller's lines.
#[derive(Debug, Clone, Default)]
pub struct DirectoryController {
    entries: StableHashMap<u64, DirEntry>,
    /// Three-hop (owner-forwarded) transfers served.
    pub three_hop_transfers: u64,
    /// Invalidation messages sent.
    pub invalidations_sent: u64,
}

impl DirectoryController {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current entry for `line` (all-invalid if untracked).
    pub fn entry(&self, line: LineAddr) -> DirEntry {
        self.entries.get(&line.0).copied().unwrap_or_default()
    }

    /// Number of tracked lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Handles `req` from `requester`, updating the directory and
    /// returning the required action. `fills_exclusive` reports back
    /// whether a `Read` was granted an E copy (no other sharers).
    pub fn handle(&mut self, line: LineAddr, requester: u8, req: DirRequest) -> (DirAction, bool) {
        let entry = self.entries.entry(line.0).or_default();
        match req {
            DirRequest::Read => {
                if let Some(owner) = entry.owner {
                    if owner == requester {
                        // Re-request from the owner itself (e.g. after a
                        // partial local downgrade): memory path, keep state.
                        return (DirAction::FromMemory { invalidate: vec![] }, false);
                    }
                    // Owner keeps the line (downgrades E/M -> O at the
                    // cache); requester becomes a sharer. The owner stays
                    // recorded: O still means "memory is stale".
                    entry.sharers |= 1 << requester;
                    entry.sharers |= 1 << owner;
                    self.three_hop_transfers += 1;
                    (
                        DirAction::ForwardToOwner {
                            owner,
                            invalidate: vec![],
                        },
                        false,
                    )
                } else if entry.sharers & !(1 << requester) != 0 {
                    entry.sharers |= 1 << requester;
                    (DirAction::FromMemory { invalidate: vec![] }, false)
                } else {
                    // Nobody else: grant exclusive, requester becomes owner.
                    entry.owner = Some(requester);
                    entry.sharers = 0;
                    (DirAction::FromMemory { invalidate: vec![] }, true)
                }
            }
            DirRequest::ReadExclusive | DirRequest::Upgrade => {
                // The owner is handled via the forward (or appended for
                // upgrades below), never via the plain sharer list.
                let owner = entry.owner;
                let invalidate: Vec<u8> = entry
                    .sharer_ids()
                    .filter(|&s| s != requester && Some(s) != owner)
                    .collect();
                self.invalidations_sent += invalidate.len() as u64;
                let action = match entry.owner {
                    Some(owner) if owner != requester => {
                        self.invalidations_sent += 1;
                        if req == DirRequest::ReadExclusive {
                            self.three_hop_transfers += 1;
                            DirAction::ForwardToOwner { owner, invalidate }
                        } else {
                            let mut inv = invalidate;
                            inv.push(owner);
                            DirAction::InvalidateOnly { invalidate: inv }
                        }
                    }
                    _ => {
                        if req == DirRequest::ReadExclusive {
                            DirAction::FromMemory { invalidate }
                        } else {
                            DirAction::InvalidateOnly { invalidate }
                        }
                    }
                };
                entry.owner = Some(requester);
                entry.sharers = 0;
                (action, true)
            }
            DirRequest::Writeback => {
                if entry.owner == Some(requester) {
                    entry.owner = None;
                }
                // A silent-sharer writeback cannot happen (only dirty
                // lines write back); keep sharers as-is.
                if !entry.is_cached() {
                    self.entries.remove(&line.0);
                }
                (DirAction::FromMemory { invalidate: vec![] }, false)
            }
        }
    }

    /// Node-presence mask over a set of lines: the union of owner and
    /// sharer bits of every tracked entry among `lines`. This is the
    /// value a region-grain directory cache summarizes — bit `n` set
    /// means node `n` *may* hold some line of the region.
    pub fn region_mask(&self, lines: impl Iterator<Item = LineAddr>) -> u64 {
        let mut mask = 0u64;
        for line in lines {
            if let Some(e) = self.entries.get(&line.0) {
                mask |= e.sharers;
                if let Some(o) = e.owner {
                    mask |= 1 << o;
                }
            }
        }
        mask
    }

    /// Installs `entry` verbatim (dropping it when empty). Bridge for
    /// the model checker and tests, which reconstruct directory state
    /// from an encoded global state; the simulator itself only mutates
    /// entries through [`DirectoryController::handle`].
    pub fn install_entry(&mut self, line: LineAddr, entry: DirEntry) {
        if entry.is_cached() {
            self.entries.insert(line.0, entry);
        } else {
            self.entries.remove(&line.0);
        }
    }

    /// Removes `cache` from `line`'s sharer set (explicit clean-eviction
    /// notification; our system evicts clean lines silently, so this is
    /// exercised only by tests and future protocols).
    pub fn drop_sharer(&mut self, line: LineAddr, cache: u8) {
        if let Some(e) = self.entries.get_mut(&line.0) {
            e.sharers &= !(1 << cache);
            if e.owner == Some(cache) {
                e.owner = None;
            }
            if !e.is_cached() {
                self.entries.remove(&line.0);
            }
        }
    }
}

/// A region-grain cache of directory knowledge at a memory controller
/// (the `DirectoryCgct` mode's home-side filter).
///
/// Each slot summarizes one region as a node-presence mask: the union
/// of owner/sharer bits over the region's line entries. When the mask
/// shows no node but the requester itself, the controller can skip the
/// per-line DRAM directory lookup and start the data access
/// immediately. The cache is maintained **exactly** (recomputed from
/// the line entries after every directory update, see
/// `MemorySystem`), so a hit is authoritative; a conflict eviction
/// merely drops knowledge, forcing the conservative full lookup.
#[derive(Debug, Clone)]
pub struct RegionDirCache {
    sets: usize,
    slots: Vec<Option<(u64, u64)>>, // (region, node-presence mask)
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (slot empty or holding another region).
    pub misses: u64,
}

impl RegionDirCache {
    /// Creates an empty direct-mapped cache with `sets` slots.
    pub fn new(sets: usize) -> Self {
        let sets = sets.max(1);
        RegionDirCache {
            sets,
            slots: vec![None; sets],
            hits: 0,
            misses: 0,
        }
    }

    fn slot_of(&self, region: RegionAddr) -> usize {
        (region.0 as usize) % self.sets
    }

    /// The cached node-presence mask for `region`, if known.
    pub fn lookup(&mut self, region: RegionAddr) -> Option<u64> {
        match self.slots[self.slot_of(region)] {
            Some((r, mask)) if r == region.0 => {
                self.hits += 1;
                Some(mask)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or refreshes `region`'s mask (evicting any conflicting
    /// region in the same slot).
    pub fn update(&mut self, region: RegionAddr, mask: u64) {
        let slot = self.slot_of(region);
        self.slots[slot] = Some((region.0, mask));
    }

    /// The stored mask for `region` without touching hit/miss counters
    /// (used by the sanitizer's exactness check).
    pub fn peek(&self, region: RegionAddr) -> Option<u64> {
        match self.slots[self.slot_of(region)] {
            Some((r, mask)) if r == region.0 => Some(mask),
            _ => None,
        }
    }

    /// Every stored `(region, mask)` pair, in slot order (used by the
    /// sanitizer's exactness check).
    pub fn entries(&self) -> impl Iterator<Item = (RegionAddr, u64)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.map(|(r, mask)| (RegionAddr(r), mask)))
    }
}

/// The inter-cluster region-grain directory of the `Hierarchical` mode.
///
/// Conceptually one per home memory controller; since regions are
/// statically interleaved across controllers, a single region-indexed
/// map is the union of all homes and byte-identical in behaviour. For
/// each region it tracks how many L2 lines every cluster currently
/// caches — maintained **exactly** from fill/evict/invalidate
/// notifications — so a request need only visit clusters whose count is
/// non-zero. Skipping a zero-count cluster is sound: a cluster with no
/// cached line of the region can neither supply data nor need
/// invalidation at the line grain (region-grain RCA notifications are
/// still delivered machine-wide).
#[derive(Debug, Clone)]
pub struct ClusterDirectory {
    clusters: usize,
    counts: StableHashMap<u64, Vec<u32>>,
}

impl ClusterDirectory {
    /// Creates an empty directory for `clusters` clusters.
    pub fn new(clusters: usize) -> Self {
        ClusterDirectory {
            clusters: clusters.max(1),
            counts: StableHashMap::default(),
        }
    }

    /// Number of clusters tracked.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Records that a node in `cluster` filled a line of `region`.
    pub fn line_cached(&mut self, region: RegionAddr, cluster: usize) {
        self.counts
            .entry(region.0)
            .or_insert_with(|| vec![0; self.clusters])[cluster] += 1;
    }

    /// Records that a node in `cluster` dropped a line of `region`.
    ///
    /// # Panics
    ///
    /// Panics if the stored count is already zero — that would mean the
    /// exact bookkeeping was broken at the call site.
    pub fn line_uncached(&mut self, region: RegionAddr, cluster: usize) {
        let counts = self
            .counts
            .get_mut(&region.0)
            .unwrap_or_else(|| panic!("line_uncached for untracked region {region}"));
        assert!(
            counts[cluster] > 0,
            "cluster {cluster} count for {region} underflowed"
        );
        counts[cluster] -= 1;
        if counts.iter().all(|&c| c == 0) {
            self.counts.remove(&region.0);
        }
    }

    /// Lines of `region` cached by `cluster`.
    pub fn count(&self, region: RegionAddr, cluster: usize) -> u32 {
        self.counts.get(&region.0).map_or(0, |c| c[cluster])
    }

    /// Bit mask of clusters caching at least one line of `region`.
    pub fn present_mask(&self, region: RegionAddr) -> u64 {
        self.counts.get(&region.0).map_or(0, |c| {
            c.iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .fold(0u64, |m, (i, _)| m | (1 << i))
        })
    }

    /// Number of regions with at least one cached line.
    pub fn tracked_regions(&self) -> usize {
        self.counts.len()
    }
}

impl cgct_sim::Snap for RegionDirCache {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        // Occupied slots only, ordered by slot index (deterministic by
        // construction).
        let slots: Vec<Json> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.map(|(r, m)| Json::Array(vec![Json::u64(i as u64), Json::u64(r), Json::u64(m)]))
            })
            .collect();
        Json::obj([
            ("sets", Json::u64(self.sets as u64)),
            ("slots", Json::Array(slots)),
            ("hits", Json::u64(self.hits)),
            ("misses", Json::u64(self.misses)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        let sets: u64 = unsnap_field(v, "sets")?;
        let mut cache = RegionDirCache::new(sets as usize);
        for slot in elements(field(v, "slots")?)? {
            let parts = elements(slot)?;
            if parts.len() != 3 {
                return Err("region-dir-cache slot must be [index, region, mask]".to_string());
            }
            let idx = u64::unsnap(&parts[0])? as usize;
            if idx >= cache.sets {
                return Err(format!("region-dir-cache slot {idx} out of range"));
            }
            cache.slots[idx] = Some((u64::unsnap(&parts[1])?, u64::unsnap(&parts[2])?));
        }
        cache.hits = unsnap_field(v, "hits")?;
        cache.misses = unsnap_field(v, "misses")?;
        Ok(cache)
    }
}

impl cgct_sim::Snap for ClusterDirectory {
    /// Regions are serialized sorted so the snapshot is independent of
    /// `HashMap` iteration order.
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        let mut regions: Vec<(&u64, &Vec<u32>)> = self.counts.iter().collect();
        regions.sort_by_key(|(k, _)| **k);
        Json::obj([
            ("clusters", Json::u64(self.clusters as u64)),
            (
                "counts",
                Json::Array(
                    regions
                        .into_iter()
                        .map(|(r, c)| {
                            let mut row = vec![Json::u64(*r)];
                            row.extend(c.iter().map(|&n| Json::u64(n as u64)));
                            Json::Array(row)
                        })
                        .collect(),
                ),
            ),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        let clusters: u64 = unsnap_field(v, "clusters")?;
        let mut dir = ClusterDirectory::new(clusters as usize);
        for row in elements(field(v, "counts")?)? {
            let parts = elements(row)?;
            if parts.len() != dir.clusters + 1 {
                return Err("cluster-directory row must be [region, count × clusters]".to_string());
            }
            let region = u64::unsnap(&parts[0])?;
            let counts: Result<Vec<u32>, String> = parts[1..]
                .iter()
                .map(|p| u64::unsnap(p).map(|n| n as u32))
                .collect();
            let counts = counts?;
            if counts.iter().all(|&c| c == 0) {
                return Err(format!(
                    "cluster-directory row for region {region} is empty"
                ));
            }
            if dir.counts.insert(region, counts).is_some() {
                return Err(format!(
                    "duplicate cluster-directory row for region {region}"
                ));
            }
        }
        Ok(dir)
    }
}

impl cgct_sim::Snap for DirEntry {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("o", self.owner.map(u64::from).snap()),
            ("s", Json::u64(self.sharers)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        let owner: Option<u64> = unsnap_field(v, "o")?;
        let owner = owner
            .map(|o| u8::try_from(o).map_err(|_| "directory owner out of range".to_string()))
            .transpose()?;
        Ok(DirEntry {
            owner,
            sharers: unsnap_field(v, "s")?,
        })
    }
}

impl cgct_sim::Snap for DirectoryController {
    /// Entries are serialized sorted by line address so the snapshot is
    /// independent of `HashMap` iteration order.
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        let mut entries: Vec<(&u64, &DirEntry)> = self.entries.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        Json::obj([
            (
                "entries",
                Json::Array(
                    entries
                        .into_iter()
                        .map(|(k, e)| Json::Array(vec![Json::u64(*k), e.snap()]))
                        .collect(),
                ),
            ),
            ("three_hop_transfers", Json::u64(self.three_hop_transfers)),
            ("invalidations_sent", Json::u64(self.invalidations_sent)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        let mut entries = StableHashMap::default();
        for pair in elements(field(v, "entries")?)? {
            let pair = elements(pair)?;
            if pair.len() != 2 {
                return Err("directory entry must be a [line, entry] pair".to_string());
            }
            let key = u64::unsnap(&pair[0])?;
            if entries.insert(key, DirEntry::unsnap(&pair[1])?).is_some() {
                return Err(format!("duplicate directory entry for line {key}"));
            }
        }
        Ok(DirectoryController {
            entries,
            three_hop_transfers: unsnap_field(v, "three_hop_transfers")?,
            invalidations_sent: unsnap_field(v, "invalidations_sent")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(42);

    #[test]
    fn first_read_grants_exclusive() {
        let mut d = DirectoryController::new();
        let (action, exclusive) = d.handle(L, 0, DirRequest::Read);
        assert_eq!(action, DirAction::FromMemory { invalidate: vec![] });
        assert!(exclusive);
        assert_eq!(d.entry(L).owner, Some(0));
    }

    #[test]
    fn read_of_owned_line_is_three_hop() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read); // 0 owns E
        let (action, exclusive) = d.handle(L, 1, DirRequest::Read);
        assert_eq!(
            action,
            DirAction::ForwardToOwner {
                owner: 0,
                invalidate: vec![]
            }
        );
        assert!(!exclusive);
        assert_eq!(d.three_hop_transfers, 1);
        // Both are now sharers; 0 remains the (O) owner.
        let e = d.entry(L);
        assert_eq!(e.owner, Some(0));
        assert_eq!(e.sharers & 0b11, 0b11);
    }

    #[test]
    fn read_of_shared_line_comes_from_memory() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read); // forwarded; 0 -> O
                                          // Owner 0 writes the line back (evicting its O copy).
        d.handle(L, 0, DirRequest::Writeback);
        let (action, _) = d.handle(L, 2, DirRequest::Read);
        assert_eq!(action, DirAction::FromMemory { invalidate: vec![] });
        assert_eq!(d.three_hop_transfers, 1, "no new forward needed");
    }

    #[test]
    fn rfo_invalidates_sharers_and_takes_ownership() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read);
        let (action, exclusive) = d.handle(L, 2, DirRequest::ReadExclusive);
        assert!(exclusive);
        match action {
            DirAction::ForwardToOwner { owner, invalidate } => {
                assert_eq!(owner, 0);
                assert_eq!(invalidate, vec![1]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        let e = d.entry(L);
        assert_eq!(e.owner, Some(2));
        assert_eq!(e.sharers, 0);
        assert!(d.invalidations_sent >= 2);
    }

    #[test]
    fn upgrade_only_invalidates() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read);
        d.handle(L, 0, DirRequest::Writeback); // owner gone, sharers remain
        let (action, _) = d.handle(L, 1, DirRequest::Upgrade);
        match action {
            DirAction::InvalidateOnly { invalidate } => {
                // Sharer 0 may be stale but is invalidated anyway.
                assert!(invalidate.contains(&0));
                assert!(!invalidate.contains(&1));
            }
            other => panic!("expected invalidate-only, got {other:?}"),
        }
        assert_eq!(d.entry(L).owner, Some(1));
    }

    #[test]
    fn writeback_clears_ownership_and_garbage_collects() {
        let mut d = DirectoryController::new();
        d.handle(L, 3, DirRequest::Read);
        assert_eq!(d.tracked_lines(), 1);
        d.handle(L, 3, DirRequest::Writeback);
        assert_eq!(d.entry(L).owner, None);
        assert_eq!(d.tracked_lines(), 0, "empty entries are collected");
    }

    #[test]
    fn drop_sharer_prunes_entries() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read);
        d.handle(L, 1, DirRequest::Read);
        d.drop_sharer(L, 1);
        d.drop_sharer(L, 0);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn region_mask_unions_owner_and_sharers() {
        let mut d = DirectoryController::new();
        d.handle(LineAddr(8), 0, DirRequest::Read); // 0 owns line 8
        d.handle(LineAddr(9), 1, DirRequest::Read); // 1 owns line 9
        d.handle(LineAddr(9), 2, DirRequest::Read); // forwarded; 1 -> O, 2 shares
        let mask = d.region_mask((8..16).map(LineAddr));
        assert_eq!(mask, 0b111);
        assert_eq!(d.region_mask((16..24).map(LineAddr)), 0);
    }

    #[test]
    fn install_entry_round_trips_and_collects_empties() {
        let mut d = DirectoryController::new();
        d.install_entry(
            L,
            DirEntry {
                owner: Some(3),
                sharers: 0b1010,
            },
        );
        assert_eq!(d.entry(L).owner, Some(3));
        d.install_entry(L, DirEntry::default());
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn region_dir_cache_hits_misses_and_conflicts() {
        let mut c = RegionDirCache::new(4);
        assert_eq!(c.lookup(RegionAddr(3)), None);
        c.update(RegionAddr(3), 0b01);
        assert_eq!(c.lookup(RegionAddr(3)), Some(0b01));
        assert_eq!(c.peek(RegionAddr(3)), Some(0b01));
        // Region 7 maps to the same slot (7 % 4 == 3): conflict evicts.
        c.update(RegionAddr(7), 0b10);
        assert_eq!(c.lookup(RegionAddr(3)), None);
        assert_eq!(c.lookup(RegionAddr(7)), Some(0b10));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn region_dir_cache_snapshot_round_trip() {
        use cgct_sim::Snap;
        let mut c = RegionDirCache::new(8);
        c.update(RegionAddr(1), 0b11);
        c.update(RegionAddr(6), 0);
        let _ = c.lookup(RegionAddr(1));
        let json = c.snap();
        let back = RegionDirCache::unsnap(&json).unwrap();
        assert_eq!(back.peek(RegionAddr(1)), Some(0b11));
        assert_eq!(back.peek(RegionAddr(6)), Some(0));
        assert_eq!(back.hits, 1);
        assert_eq!(json.dump(), back.snap().dump());
    }

    #[test]
    fn cluster_directory_counts_and_mask() {
        let r = RegionAddr(5);
        let mut d = ClusterDirectory::new(4);
        d.line_cached(r, 0);
        d.line_cached(r, 0);
        d.line_cached(r, 2);
        assert_eq!(d.count(r, 0), 2);
        assert_eq!(d.count(r, 1), 0);
        assert_eq!(d.present_mask(r), 0b101);
        d.line_uncached(r, 0);
        d.line_uncached(r, 0);
        assert_eq!(d.present_mask(r), 0b100);
        d.line_uncached(r, 2);
        assert_eq!(d.tracked_regions(), 0, "empty rows are collected");
        assert_eq!(d.present_mask(r), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cluster_directory_underflow_panics() {
        let mut d = ClusterDirectory::new(2);
        d.line_cached(RegionAddr(1), 0);
        d.line_uncached(RegionAddr(1), 1);
    }

    #[test]
    fn cluster_directory_snapshot_round_trip() {
        use cgct_sim::Snap;
        let mut d = ClusterDirectory::new(3);
        d.line_cached(RegionAddr(9), 1);
        d.line_cached(RegionAddr(2), 0);
        d.line_cached(RegionAddr(2), 2);
        let json = d.snap();
        let back = ClusterDirectory::unsnap(&json).unwrap();
        assert_eq!(back.count(RegionAddr(9), 1), 1);
        assert_eq!(back.present_mask(RegionAddr(2)), 0b101);
        assert_eq!(json.dump(), back.snap().dump());
    }

    #[test]
    fn upgrade_with_remote_owner_invalidates_the_owner() {
        let mut d = DirectoryController::new();
        d.handle(L, 0, DirRequest::Read); // 0 owns E
                                          // 1 somehow holds a stale S and upgrades (can happen after an O
                                          // owner supplied it data and the directory recorded both).
        let (action, _) = d.handle(L, 1, DirRequest::Upgrade);
        match action {
            DirAction::InvalidateOnly { invalidate } => assert!(invalidate.contains(&0)),
            other => panic!("{other:?}"),
        }
        assert_eq!(d.entry(L).owner, Some(1));
    }
}
