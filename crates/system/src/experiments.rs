//! Drivers for every experiment in the paper's evaluation (§5).
//!
//! A [`Suite`] runs the nine benchmarks under a set of coherence modes and
//! caches the aggregated results; the `fig*` functions then derive each
//! figure's data from it. Rendering to tables lives in [`crate::report`];
//! the `cgct-bench` crate's `experiments` binary drives everything and
//! writes `EXPERIMENTS.md`.

use crate::config::{CoherenceMode, SystemConfig};
use crate::runner::{run_once_cached, AggregateResult, RunPlan, WorkItem};
use cgct_sim::pool::{self, ItemReport};
use cgct_sim::ConfidenceInterval;
use cgct_workloads::{all_benchmarks, commercial_names};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Runs a set of `(benchmark, mode)` configurations and caches results.
#[derive(Debug)]
pub struct Suite {
    /// Keyed by `(benchmark, mode label)`.
    pub results: BTreeMap<(String, String), AggregateResult>,
    /// The plan every configuration ran with.
    pub plan: RunPlan,
    /// `(label, wall seconds, simulated cycles, memory events, cache
    /// hit)` per work item, in canonical item order (benchmark-major,
    /// then mode, then seed) — the raw material for
    /// `results/timing.json`. Cycles are the item's measured-phase
    /// `runtime_cycles` and events its delivered memory completions, so
    /// simulation throughput (cycles/sec, events/sec) is derivable per
    /// item; the flag records whether the item was restored from the
    /// result cache instead of simulated.
    pub timings: Vec<(String, f64, u64, u64, bool)>,
}

/// The paper's standard mode set: baseline plus CGCT at the three region
/// sizes (Figures 7 and 8).
pub fn standard_modes() -> Vec<CoherenceMode> {
    vec![
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 256,
            sets: 8192,
        },
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
        CoherenceMode::Cgct {
            region_bytes: 1024,
            sets: 8192,
        },
    ]
}

/// Figure 9's extra mode: the half-size (4K-set) RCA at 512 B.
pub fn half_size_mode() -> CoherenceMode {
    CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 4096,
    }
}

impl Suite {
    /// Runs every benchmark under every mode on the deterministic pool
    /// (worker count from `CGCT_JOBS` or the machine's available
    /// parallelism). Results are averaged over `plan.runs` seeds.
    pub fn run(plan: RunPlan, modes: &[CoherenceMode]) -> Suite {
        Self::run_with(plan, modes, |cfg| cfg)
    }

    /// Like [`Suite::run`], applying `adjust` to every system config
    /// (used by ablation studies to toggle features).
    pub fn run_with(
        plan: RunPlan,
        modes: &[CoherenceMode],
        adjust: impl Fn(SystemConfig) -> SystemConfig + Sync,
    ) -> Suite {
        Self::run_configured(plan, modes, adjust, pool::jobs(), |_| {})
    }

    /// The fully-general entry point: explicit worker count and a
    /// progress observer (called after every completed item, from
    /// whichever worker finished it).
    ///
    /// The work list is the full `(benchmark, mode, seed)`
    /// cross-product in canonical order. Each item is a pure
    /// [`WorkItem`] whose seed comes from [`RunPlan::seed_for`] —
    /// never from worker identity — and results are merged back in
    /// canonical order, so any `jobs` value (including 1, the serial
    /// escape hatch) produces bit-identical aggregates.
    pub fn run_configured(
        plan: RunPlan,
        modes: &[CoherenceMode],
        adjust: impl Fn(SystemConfig) -> SystemConfig + Sync,
        jobs: usize,
        observe: impl Fn(ItemReport) + Sync,
    ) -> Suite {
        let benchmarks = all_benchmarks();
        let mut items: Vec<WorkItem> = Vec::new();
        for spec in &benchmarks {
            for mode in modes {
                let cfg = adjust(SystemConfig::paper_default(*mode));
                for run in 0..plan.runs {
                    items.push(WorkItem {
                        spec: spec.clone(),
                        cfg: cfg.clone(),
                        seed: plan.seed_for(run),
                    });
                }
            }
        }
        let labels: Vec<String> = items.iter().map(WorkItem::label).collect();
        let seconds = Mutex::new(vec![0.0f64; items.len()]);
        let flagged: Vec<_> = pool::run_observed(
            jobs,
            items,
            |_, item| item.execute_cached(&plan),
            |report| {
                seconds.lock().expect("timing poisoned")[report.index] = report.seconds;
                observe(report);
            },
        );
        let cycles: Vec<(u64, u64, bool)> = flagged
            .iter()
            .map(|(r, hit)| (r.runtime_cycles, r.mem_events, *hit))
            .collect();
        let runs: Vec<_> = flagged.into_iter().map(|(r, _)| r).collect();
        // Merge out-of-order completions back in canonical order: the
        // items for configuration group `g` are the contiguous chunk
        // `g*runs .. (g+1)*runs`, already in ascending seed order.
        let mut results = BTreeMap::new();
        let mut chunks = runs.into_iter();
        for spec in &benchmarks {
            for mode in modes {
                let group: Vec<_> = (&mut chunks).take(plan.runs as usize).collect();
                results.insert(
                    (spec.name.to_string(), mode.label()),
                    AggregateResult::from_runs(group),
                );
            }
        }
        let timings = labels
            .into_iter()
            .zip(seconds.into_inner().expect("timing poisoned"))
            .zip(cycles)
            .map(|((label, secs), (cyc, ev, hit))| (label, secs, cyc, ev, hit))
            .collect();
        Suite {
            results,
            plan,
            timings,
        }
    }

    /// The aggregated result for `(benchmark, mode_label)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration was not part of the suite.
    pub fn get(&self, benchmark: &str, mode_label: &str) -> &AggregateResult {
        self.results
            .get(&(benchmark.to_string(), mode_label.to_string()))
            .unwrap_or_else(|| panic!("suite missing {benchmark}/{mode_label}"))
    }

    /// Benchmark names present, in Table 4 order.
    pub fn benchmarks(&self) -> Vec<String> {
        all_benchmarks()
            .iter()
            .filter(|b| self.results.keys().any(|(name, _)| name == b.name))
            .map(|b| b.name.to_string())
            .collect()
    }
}

// -------------------------------------------------------------------
// Figure 2
// -------------------------------------------------------------------

/// One Figure 2 bar: the fraction of requests whose broadcast was
/// unnecessary, split by category.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Ordinary data reads/writes (incl. prefetches) of unshared data.
    pub data: f64,
    /// Write-backs.
    pub writeback: f64,
    /// Instruction fetches of clean-shared data.
    pub ifetch: f64,
    /// DCB operations.
    pub dcb: f64,
}

impl Fig2Row {
    /// Total unnecessary fraction (the bar height).
    pub fn total(&self) -> f64 {
        self.data + self.writeback + self.ifetch + self.dcb
    }
}

/// Builds Figure 2 from the suite's baseline runs.
pub fn fig2(suite: &Suite) -> Vec<Fig2Row> {
    suite
        .benchmarks()
        .iter()
        .map(|b| {
            let agg = suite.get(b, "baseline");
            // Average category fractions across the runs.
            let n = agg.runs.len() as f64;
            let mut row = Fig2Row {
                benchmark: b.clone(),
                data: 0.0,
                writeback: 0.0,
                ifetch: 0.0,
                dcb: 0.0,
            };
            for r in &agg.runs {
                let total = r.metrics.requests.total() as f64;
                if total == 0.0 {
                    continue;
                }
                row.data += r.metrics.unnecessary.data as f64 / total / n;
                row.writeback += r.metrics.unnecessary.writeback as f64 / total / n;
                row.ifetch += r.metrics.unnecessary.ifetch as f64 / total / n;
                row.dcb += r.metrics.unnecessary.dcb as f64 / total / n;
            }
            row
        })
        .collect()
}

// -------------------------------------------------------------------
// Figure 7
// -------------------------------------------------------------------

/// One Figure 7 group: the oracle opportunity vs. what CGCT captured at
/// each region size.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Oracle: fraction of requests whose broadcast was unnecessary.
    pub oracle: f64,
    /// Fraction of requests avoided per region size label.
    pub avoided: BTreeMap<u64, f64>,
}

/// Builds Figure 7: unnecessary-broadcast opportunity vs. requests
/// actually avoided (direct + local) per region size.
pub fn fig7(suite: &Suite, region_sizes: &[u64]) -> Vec<Fig7Row> {
    suite
        .benchmarks()
        .iter()
        .map(|b| {
            let oracle = suite.get(b, "baseline").unnecessary_fraction.mean();
            let avoided = region_sizes
                .iter()
                .map(|&rs| {
                    let label = CoherenceMode::Cgct {
                        region_bytes: rs,
                        sets: 8192,
                    }
                    .label();
                    (rs, suite.get(b, &label).avoided_fraction.mean())
                })
                .collect();
            Fig7Row {
                benchmark: b.clone(),
                oracle,
                avoided,
            }
        })
        .collect()
}

// -------------------------------------------------------------------
// Figures 8 and 9
// -------------------------------------------------------------------

/// Runtime reduction of one CGCT configuration vs. baseline.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-mode-label runtime reduction in percent, with its 95% CI
    /// computed over seed-paired runs.
    pub reduction_pct: BTreeMap<String, (f64, ConfidenceInterval)>,
}

/// Builds runtime-reduction rows (Figure 8 with the three region sizes,
/// Figure 9 with full vs half-size arrays) for the given mode labels.
pub fn speedups(suite: &Suite, mode_labels: &[String]) -> Vec<SpeedupRow> {
    suite
        .benchmarks()
        .iter()
        .map(|b| {
            let base = suite.get(b, "baseline");
            let mut reduction_pct = BTreeMap::new();
            for label in mode_labels {
                let cgct = suite.get(b, label);
                // Pair runs by seed for a tighter interval.
                let mut stats = cgct_sim::RunningStats::new();
                for (br, cr) in base.runs.iter().zip(&cgct.runs) {
                    let red = 100.0 * (1.0 - cr.runtime_cycles as f64 / br.runtime_cycles as f64);
                    stats.push(red);
                }
                reduction_pct.insert(
                    label.clone(),
                    (stats.mean(), stats.confidence_interval_95()),
                );
            }
            SpeedupRow {
                benchmark: b.clone(),
                reduction_pct,
            }
        })
        .collect()
}

/// Mean reduction across a set of benchmarks for one mode label.
pub fn mean_reduction(rows: &[SpeedupRow], benchmarks: &[&str], label: &str) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| benchmarks.contains(&r.benchmark.as_str()))
        .filter_map(|r| r.reduction_pct.get(label).map(|(m, _)| *m))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Mean reduction over all benchmarks / over the commercial subset, as
/// the paper quotes (8.8% and 10.4% for 512 B regions).
pub fn summary_reductions(rows: &[SpeedupRow], label: &str) -> (f64, f64) {
    let all: Vec<&str> = rows.iter().map(|r| r.benchmark.as_str()).collect();
    let commercial: Vec<&str> = commercial_names().to_vec();
    (
        mean_reduction(rows, &all, label),
        mean_reduction(rows, &commercial, label),
    )
}

// -------------------------------------------------------------------
// Figure 10
// -------------------------------------------------------------------

/// Broadcast traffic per window, baseline vs. CGCT (Figure 10).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline average broadcasts per window.
    pub base_avg: f64,
    /// Baseline peak broadcasts in any window.
    pub base_peak: f64,
    /// CGCT average.
    pub cgct_avg: f64,
    /// CGCT peak.
    pub cgct_peak: f64,
}

/// Builds Figure 10 for the 512 B-region configuration.
pub fn fig10(suite: &Suite) -> Vec<Fig10Row> {
    let label = CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    }
    .label();
    suite
        .benchmarks()
        .iter()
        .map(|b| {
            let base = suite.get(b, "baseline");
            let cgct = suite.get(b, &label);
            Fig10Row {
                benchmark: b.clone(),
                base_avg: base.avg_traffic.mean(),
                base_peak: base.peak_traffic.max(),
                cgct_avg: cgct.avg_traffic.mean(),
                cgct_peak: cgct.peak_traffic.max(),
            }
        })
        .collect()
}

// -------------------------------------------------------------------
// §3.2 / §5.2 RCA statistics
// -------------------------------------------------------------------

/// RCA behaviour statistics (§3.2's eviction distribution, §5.2's lines
/// per region, and the miss-ratio impact of inclusion).
#[derive(Debug, Clone)]
pub struct RcaStatsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of evicted regions that were empty.
    pub evicted_empty: f64,
    /// Fraction with one cached line.
    pub evicted_one: f64,
    /// Fraction with two cached lines.
    pub evicted_two: f64,
    /// Mean lines per valid region.
    pub mean_lines_per_region: f64,
    /// Relative L2 miss-ratio increase vs. baseline (the paper: ~1.2%).
    pub miss_ratio_increase: f64,
    /// Region self-invalidations per million requests.
    pub self_invalidations_per_mreq: f64,
}

/// Builds the RCA statistics table (§3.2's eviction distribution needs
/// real eviction pressure, so this runs its own quarter-scale
/// configurations — 256 KB L2, 2K-set RCA — preserving the paper's 8:1
/// RCA-reach-to-cache ratio; see `SystemConfig::quarter_scale`). Uses the
/// main suite only for benchmark enumeration.
pub fn rca_stats(suite: &Suite) -> Vec<RcaStatsRow> {
    let plan = suite.plan;
    let cgct_mode = CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192, // rewritten to 2048 by quarter_scale
    };
    // Fan the per-benchmark mini-experiments out on the pool; results
    // come back in canonical benchmark order.
    pool::run(suite.benchmarks(), |_, b| {
        let spec = cgct_workloads::by_name(&b).expect("registered benchmark");
        let run = |mode: CoherenceMode| {
            let cfg = SystemConfig::quarter_scale(mode);
            let runs: Vec<_> = (0..plan.runs.min(2))
                .map(|s| run_once_cached(&cfg, &spec, plan.seed_for(s), &plan).0)
                .collect();
            AggregateResult::from_runs(runs)
        };
        let base = &run(CoherenceMode::Baseline);
        let cgct = &run(cgct_mode);
        let n = cgct.runs.len() as f64;
        let mut row = RcaStatsRow {
            benchmark: b.clone(),
            evicted_empty: 0.0,
            evicted_one: 0.0,
            evicted_two: 0.0,
            mean_lines_per_region: 0.0,
            miss_ratio_increase: 0.0,
            self_invalidations_per_mreq: 0.0,
        };
        for r in &cgct.runs {
            row.evicted_empty += r.rca.evicted_empty_fraction / n;
            row.evicted_one += r.rca.evicted_one_line_fraction / n;
            row.evicted_two += r.rca.evicted_two_lines_fraction / n;
            row.mean_lines_per_region += r.rca.mean_lines_per_region / n;
            let reqs = r.metrics.requests.total().max(1) as f64;
            row.self_invalidations_per_mreq += r.rca.self_invalidations as f64 / reqs * 1e6 / n;
        }
        let base_ratio = base.l2_miss_ratio.mean();
        let cgct_ratio = cgct.l2_miss_ratio.mean();
        row.miss_ratio_increase = if base_ratio > 0.0 {
            (cgct_ratio - base_ratio) / base_ratio
        } else {
            0.0
        };
        row
    })
}

// -------------------------------------------------------------------
// JSON serialization (for the experiments binary's --json-dir output)
// -------------------------------------------------------------------

use cgct_sim::{Json, ToJson};

impl ToJson for Fig2Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("data", Json::f64(self.data)),
            ("writeback", Json::f64(self.writeback)),
            ("ifetch", Json::f64(self.ifetch)),
            ("dcb", Json::f64(self.dcb)),
        ])
    }
}

impl ToJson for Fig7Row {
    fn to_json(&self) -> Json {
        let avoided = Json::Object(
            self.avoided
                .iter()
                .map(|(size, frac)| (size.to_string(), Json::f64(*frac)))
                .collect(),
        );
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("oracle", Json::f64(self.oracle)),
            ("avoided", avoided),
        ])
    }
}

impl ToJson for SpeedupRow {
    fn to_json(&self) -> Json {
        let reductions = Json::Object(
            self.reduction_pct
                .iter()
                .map(|(label, (mean, ci))| {
                    (
                        label.clone(),
                        Json::obj([("mean", Json::f64(*mean)), ("ci", ci.to_json())]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("reduction_pct", reductions),
        ])
    }
}

impl ToJson for Fig10Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("base_avg", Json::f64(self.base_avg)),
            ("base_peak", Json::f64(self.base_peak)),
            ("cgct_avg", Json::f64(self.cgct_avg)),
            ("cgct_peak", Json::f64(self.cgct_peak)),
        ])
    }
}

impl ToJson for RcaStatsRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("evicted_empty", Json::f64(self.evicted_empty)),
            ("evicted_one", Json::f64(self.evicted_one)),
            ("evicted_two", Json::f64(self.evicted_two)),
            (
                "mean_lines_per_region",
                Json::f64(self.mean_lines_per_region),
            ),
            ("miss_ratio_increase", Json::f64(self.miss_ratio_increase)),
            (
                "self_invalidations_per_mreq",
                Json::f64(self.self_invalidations_per_mreq),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Suite {
        let plan = RunPlan {
            warmup_per_core: 500,
            instructions_per_core: 1_500,
            max_cycles: 2_000_000,
            runs: 2,
            base_seed: 5,
        };
        // Restrict to two modes to keep the test fast; benchmarks are all
        // nine but with very short runs.
        Suite::run(
            plan,
            &[
                CoherenceMode::Baseline,
                CoherenceMode::Cgct {
                    region_bytes: 512,
                    sets: 8192,
                },
            ],
        )
    }

    #[test]
    fn suite_covers_all_benchmarks_and_modes() {
        let suite = tiny_suite();
        assert_eq!(suite.results.len(), 9 * 2);
        assert_eq!(suite.benchmarks().len(), 9);
        let agg = suite.get("ocean", "baseline");
        assert_eq!(agg.runs.len(), 2);
    }

    #[test]
    fn figures_build_from_suite() {
        let suite = tiny_suite();
        let f2 = fig2(&suite);
        assert_eq!(f2.len(), 9);
        for row in &f2 {
            assert!(row.total() >= 0.0 && row.total() <= 1.0, "{row:?}");
        }
        let f7 = fig7(&suite, &[512]);
        assert_eq!(f7.len(), 9);
        for row in &f7 {
            assert!(row.avoided[&512] >= 0.0 && row.avoided[&512] <= 1.0);
        }
        let labels = vec!["cgct-512B".to_string()];
        let sp = speedups(&suite, &labels);
        assert_eq!(sp.len(), 9);
        let (_all, _comm) = summary_reductions(&sp, "cgct-512B");
        let f10 = fig10(&suite);
        assert!(f10.iter().all(|r| r.base_avg >= r.cgct_avg * 0.2));
        let rs = rca_stats(&suite);
        assert_eq!(rs.len(), 9);
    }

    #[test]
    #[should_panic(expected = "suite missing")]
    fn missing_configuration_panics() {
        let suite = tiny_suite();
        let _ = suite.get("ocean", "cgct-1024B");
    }

    #[test]
    fn mean_reduction_filters_benchmarks() {
        use cgct_sim::ConfidenceInterval;
        let ci = ConfidenceInterval {
            low: 0.0,
            high: 0.0,
        };
        let row = |name: &str, v: f64| SpeedupRow {
            benchmark: name.into(),
            reduction_pct: [("m".to_string(), (v, ci))].into_iter().collect(),
        };
        let rows = vec![row("a", 10.0), row("b", 20.0), row("c", 60.0)];
        assert_eq!(mean_reduction(&rows, &["a", "b"], "m"), 15.0);
        assert_eq!(mean_reduction(&rows, &["c"], "m"), 60.0);
        assert_eq!(mean_reduction(&rows, &["zzz"], "m"), 0.0);
        assert_eq!(mean_reduction(&rows, &["a"], "missing-label"), 0.0);
    }

    #[test]
    fn summary_reductions_split_commercial() {
        use cgct_sim::ConfidenceInterval;
        let ci = ConfidenceInterval {
            low: 0.0,
            high: 0.0,
        };
        let row = |name: &str, v: f64| SpeedupRow {
            benchmark: name.into(),
            reduction_pct: [("m".to_string(), (v, ci))].into_iter().collect(),
        };
        // barnes is scientific; tpc-w is commercial.
        let rows = vec![row("barnes", 2.0), row("tpc-w", 20.0)];
        let (all, commercial) = summary_reductions(&rows, "m");
        assert_eq!(all, 11.0);
        assert_eq!(commercial, 20.0);
    }

    #[test]
    fn fig2_row_total_sums_categories() {
        let r = Fig2Row {
            benchmark: "x".into(),
            data: 0.4,
            writeback: 0.1,
            ifetch: 0.05,
            dcb: 0.01,
        };
        assert!((r.total() - 0.56).abs() < 1e-12);
    }

    #[test]
    fn report_rows_roundtrip_through_json() {
        // The experiments binary dumps rows with ToJson; parsing the dump
        // back must recover every field.
        let fig7 = Fig7Row {
            benchmark: "ocean".into(),
            oracle: 0.42,
            avoided: [(256u64, 0.30), (512, 0.35)].into_iter().collect(),
        };
        let v = cgct_sim::Json::parse(&fig7.to_json().dump()).unwrap();
        assert_eq!(v.get("benchmark").and_then(|b| b.as_str()), Some("ocean"));
        assert_eq!(v.get("oracle").and_then(|o| o.as_f64()), Some(0.42));
        let avoided = v.get("avoided").unwrap();
        assert_eq!(avoided.get("256").and_then(|x| x.as_f64()), Some(0.30));
        assert_eq!(avoided.get("512").and_then(|x| x.as_f64()), Some(0.35));

        let speedup = SpeedupRow {
            benchmark: "tpc-w".into(),
            reduction_pct: [(
                "m".to_string(),
                (
                    8.8,
                    ConfidenceInterval {
                        low: 7.0,
                        high: 10.6,
                    },
                ),
            )]
            .into_iter()
            .collect(),
        };
        let v = cgct_sim::Json::parse(&speedup.to_json().dump()).unwrap();
        let m = v.get("reduction_pct").and_then(|r| r.get("m")).unwrap();
        assert_eq!(m.get("mean").and_then(|x| x.as_f64()), Some(8.8));
        assert_eq!(
            m.get("ci")
                .and_then(|ci| ci.get("low"))
                .and_then(|x| x.as_f64()),
            Some(7.0)
        );
        assert_eq!(
            m.get("ci")
                .and_then(|ci| ci.get("high"))
                .and_then(|x| x.as_f64()),
            Some(10.6)
        );

        let fig10 = Fig10Row {
            benchmark: "barnes".into(),
            base_avg: 10.0,
            base_peak: 50.0,
            cgct_avg: 6.0,
            cgct_peak: 40.0,
        };
        let v = cgct_sim::Json::parse(&fig10.to_json().dump()).unwrap();
        assert_eq!(v.get("base_peak").and_then(|x| x.as_f64()), Some(50.0));
        assert_eq!(v.get("cgct_avg").and_then(|x| x.as_f64()), Some(6.0));
    }

    #[test]
    fn standard_modes_cover_paper_sweep() {
        let modes = standard_modes();
        assert_eq!(modes.len(), 4);
        assert_eq!(modes[0], CoherenceMode::Baseline);
        let sizes: Vec<u64> = modes[1..].iter().map(|m| m.region_bytes()).collect();
        assert_eq!(sizes, [256, 512, 1024]);
        assert_eq!(half_size_mode().label(), "cgct-512B-4096sets");
    }
}
