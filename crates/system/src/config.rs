//! Whole-system configuration (Table 3 defaults) and the host
//! environment-variable seam ([`env_knobs`]).

use cgct::RcaConfig;
use cgct_cache::{Geometry, HierarchyConfig};
use cgct_cpu::CoreConfig;
use cgct_interconnect::{LatencyModel, Topology};

/// Which coherence-tracking scheme supplements the line-grain MOESI
/// protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Conventional broadcast snooping only.
    Baseline,
    /// Coarse-Grain Coherence Tracking with a full 7-state RCA.
    Cgct {
        /// Region size in bytes (256/512/1024 in the paper).
        region_bytes: u64,
        /// RCA sets (8192 main configuration, 4096 in Figure 9).
        sets: usize,
    },
    /// The scaled-back 3-state / one-response-bit variant (§3.4).
    Scaled {
        /// Region size in bytes.
        region_bytes: u64,
        /// Array sets.
        sets: usize,
    },
    /// RegionScout-style imprecise filter (related work, §2).
    RegionScout {
        /// Region size in bytes.
        region_bytes: u64,
    },
    /// A full-map directory protocol (no broadcasts at all): the
    /// alternative system organization the paper compares against, with
    /// its three-hop cache-to-cache transfers.
    Directory,
    /// The full-map directory augmented with per-node RCAs (§1.2 "much
    /// of the benefit of a directory-based system"): region-granular
    /// non-shared knowledge lets requests bypass the home-directory
    /// lookup and go direct to memory, and a region-grain directory
    /// cache at each memory controller short-circuits per-line DRAM
    /// directory lookups for regions it knows are uncached elsewhere.
    DirectoryCgct {
        /// Region size in bytes.
        region_bytes: u64,
        /// RCA sets (also sizes the per-controller region directory
        /// cache).
        sets: usize,
    },
    /// A two-level hierarchical machine: nodes snoop a cluster-local
    /// bus, and an inter-cluster region-grain directory at the home
    /// memory controller filters which *other* clusters a request must
    /// visit (BedRock-style hierarchy). Clusters map to topology
    /// boards.
    Hierarchical {
        /// Region size in bytes.
        region_bytes: u64,
        /// RCA sets per node.
        sets: usize,
    },
}

impl CoherenceMode {
    /// The region size this mode tracks (line size for the baseline,
    /// which tracks nothing).
    pub fn region_bytes(&self) -> u64 {
        match *self {
            CoherenceMode::Baseline | CoherenceMode::Directory => 64,
            CoherenceMode::Cgct { region_bytes, .. }
            | CoherenceMode::Scaled { region_bytes, .. }
            | CoherenceMode::RegionScout { region_bytes }
            | CoherenceMode::DirectoryCgct { region_bytes, .. }
            | CoherenceMode::Hierarchical { region_bytes, .. } => region_bytes,
        }
    }

    /// True for the modes whose line-grain bookkeeping lives in a
    /// full-map [`crate::directory::DirectoryController`] (and therefore in a
    /// `u64` sharer bit-vector).
    pub fn uses_directory(&self) -> bool {
        matches!(
            self,
            CoherenceMode::Directory | CoherenceMode::DirectoryCgct { .. }
        )
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            CoherenceMode::Baseline => "baseline".into(),
            CoherenceMode::Cgct { region_bytes, sets } => {
                if sets == 8192 {
                    format!("cgct-{region_bytes}B")
                } else {
                    format!("cgct-{region_bytes}B-{}sets", sets)
                }
            }
            CoherenceMode::Scaled { region_bytes, .. } => format!("scaled-{region_bytes}B"),
            CoherenceMode::RegionScout { region_bytes } => {
                format!("regionscout-{region_bytes}B")
            }
            CoherenceMode::Directory => "directory".into(),
            CoherenceMode::DirectoryCgct { region_bytes, .. } => {
                format!("dir-cgct-{region_bytes}B")
            }
            CoherenceMode::Hierarchical { region_bytes, .. } => {
                format!("hier-{region_bytes}B")
            }
        }
    }
}

/// Complete system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core/chip/switch/board arrangement.
    pub topology: Topology,
    /// Per-core cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Interconnect latencies.
    pub latency: LatencyModel,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Coherence tracking scheme.
    pub mode: CoherenceMode,
    /// Enable the Power4-style stream prefetcher.
    pub stream_prefetch: bool,
    /// Enable R10000-style exclusive prefetching (store-intent loads
    /// fetch modifiable copies).
    pub exclusive_prefetch: bool,
    /// Region self-invalidation (ablation; CGCT modes only).
    pub self_invalidation: bool,
    /// Empty-region-favoring RCA replacement (ablation).
    pub favor_empty_replacement: bool,
    /// Route write-backs directly using the region's MC index (§5.1).
    pub direct_writebacks: bool,
    /// §6 future work: drop hardware prefetches into externally-dirty
    /// regions ("the region coherence state can indicate when lines may
    /// be externally dirty and hence may not be good candidates for
    /// prefetching").
    pub region_prefetch_filter: bool,
    /// Fit each node with a Jetty snoop filter (related work §2): skips
    /// snoop-induced tag lookups for lines provably absent. Affects
    /// energy accounting only — Jetty never avoids the broadcast itself.
    pub jetty_filter: bool,
    /// §3.1 future work: let data loads in externally-clean regions
    /// (CC/DC) fetch a *shared* copy directly from memory instead of
    /// broadcasting for an exclusive one. Avoids those broadcasts at the
    /// cost of later upgrade requests when the data is written ("an
    /// alternative approach can avoid broadcasts by accessing the data
    /// directly and putting the line into a shared state, however this
    /// can cause a large number of upgrades").
    pub shared_read_bypass: bool,
    /// §6 future work: predict the supplier of externally-dirty regions
    /// and send data reads point-to-point to it, skipping the broadcast
    /// when the prediction hits ("the region state can also indicate
    /// where cached copies of data may exist, creating opportunities for
    /// improved cache-to-cache transfers").
    pub owner_prediction: bool,
    /// §6 future work: skip the speculative DRAM access that the baseline
    /// starts in parallel with every snoop when the region state predicts
    /// a cache-to-cache supply ("knowledge of whether data is likely to
    /// be cached in the system can be used to avoid unnecessary DRAM
    /// accesses").
    pub dram_speculation_filter: bool,
    /// Per-processor data-network port occupancy per 64-byte line
    /// transfer, in CPU cycles. Table 3: 2.4 GB/s per processor =
    /// 16 B per system cycle, so a line occupies the port for 4 system
    /// cycles (40 CPU cycles). Zero disables bandwidth modeling.
    pub data_port_occupancy: u64,
    /// Maximum random perturbation added to memory-request completion
    /// times, in CPU cycles (the paper's run-perturbation methodology).
    pub perturbation: u64,
    /// Traffic measurement window in CPU cycles (Figure 10: 100,000).
    pub traffic_window: u64,
}

impl SystemConfig {
    /// Table 3 configuration with the chosen coherence mode.
    pub fn paper_default(mode: CoherenceMode) -> Self {
        SystemConfig {
            topology: Topology::paper_default(),
            hierarchy: HierarchyConfig::paper_default(),
            latency: LatencyModel::paper_default(),
            core: CoreConfig::paper_default(),
            mode,
            stream_prefetch: true,
            exclusive_prefetch: true,
            self_invalidation: true,
            favor_empty_replacement: true,
            direct_writebacks: true,
            data_port_occupancy: 40,
            region_prefetch_filter: false,
            jetty_filter: false,
            shared_read_bypass: false,
            owner_prediction: false,
            dram_speculation_filter: false,
            perturbation: 3,
            traffic_window: 100_000,
        }
    }

    /// The line/region geometry implied by the mode.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.hierarchy.l2.line_bytes, self.mode.region_bytes())
    }

    /// Stable fingerprint of this configuration: FNV-1a over its
    /// canonical `Debug` rendering. Guards machine snapshots and
    /// result-cache entries against being applied under a different
    /// configuration.
    pub fn fingerprint(&self) -> u64 {
        cgct_sim::hash::fnv1a(format!("{self:?}").as_bytes())
    }

    /// A quarter-scale memory system: 256 KB L2 with a 2K-set RCA. The
    /// RCA-reach-to-cache ratio (8:1 at 512 B regions) matches the paper's
    /// full-size configuration, so RCA eviction statistics (§3.2) reach
    /// steady state within simulatable run lengths.
    pub fn quarter_scale(mode: CoherenceMode) -> Self {
        let mode = match mode {
            CoherenceMode::Cgct { region_bytes, .. } => CoherenceMode::Cgct {
                region_bytes,
                sets: 2048,
            },
            CoherenceMode::Scaled { region_bytes, .. } => CoherenceMode::Scaled {
                region_bytes,
                sets: 2048,
            },
            CoherenceMode::DirectoryCgct { region_bytes, .. } => CoherenceMode::DirectoryCgct {
                region_bytes,
                sets: 2048,
            },
            CoherenceMode::Hierarchical { region_bytes, .. } => CoherenceMode::Hierarchical {
                region_bytes,
                sets: 2048,
            },
            other => other,
        };
        let mut cfg = Self::paper_default(mode);
        cfg.hierarchy.l2.capacity_bytes = 256 * 1024;
        cfg
    }

    /// The RCA configuration for CGCT modes (including the
    /// directory-backed and hierarchical machines, whose nodes carry
    /// the same 7-state RCA).
    pub fn rca_config(&self) -> Option<RcaConfig> {
        match self.mode {
            CoherenceMode::Cgct { region_bytes, sets }
            | CoherenceMode::DirectoryCgct { region_bytes, sets }
            | CoherenceMode::Hierarchical { region_bytes, sets } => Some(RcaConfig {
                sets,
                ways: 2,
                geometry: Geometry::new(self.hierarchy.l2.line_bytes, region_bytes),
                self_invalidation: self.self_invalidation,
                favor_empty_replacement: self.favor_empty_replacement,
            }),
            _ => None,
        }
    }

    /// Checks the configuration for shapes the implementation cannot
    /// represent. Called by `MemorySystem::new`, which panics with the
    /// returned message; callers building configurations dynamically
    /// (sweeps, CLIs) can check ahead of time and report cleanly.
    ///
    /// Today the one hard limit is the directory sharer vector:
    /// `DirEntry::sharers` is a `u64` bit-vector, so any mode that
    /// tracks per-node state in it (directory-backed modes, and the
    /// hierarchical machine whose verification bridge reuses the same
    /// node masks) supports at most 64 nodes.
    pub fn validate(&self) -> Result<(), String> {
        let cores = self.topology.total_cores();
        let needs_node_mask =
            self.mode.uses_directory() || matches!(self.mode, CoherenceMode::Hierarchical { .. });
        if needs_node_mask && cores > 64 {
            return Err(format!(
                "mode '{}' tracks per-node state in a u64 bit-vector \
                 (DirEntry::sharers) and supports at most 64 nodes, but the \
                 topology has {cores} cores; shrink the topology or use a \
                 snooping mode",
                self.mode.label()
            ));
        }
        Ok(())
    }
}

/// A snapshot of every `CGCT_*` host-environment knob the system layer
/// honors, read through this one policy-sanctioned seam (lint rule
/// D004: `env::var` anywhere else in a pure crate is a finding).
///
/// The complete knob table for the workspace:
///
/// | variable                 | meaning                                            | default        | read at |
/// |--------------------------|----------------------------------------------------|----------------|---------|
/// | `CGCT_TRACE`             | request-lifetime tracing (`1` on)                  | off            | here    |
/// | `CGCT_NO_SKIP`           | disable idle-cycle skipping (`1` disables)         | skipping on    | here    |
/// | `CGCT_SANITIZE`          | per-request invariant sanitizer (`1` on)           | off            | here    |
/// | `CGCT_SANITIZE_INTERVAL` | requests between full invariant walks (min 1)      | 65536          | here    |
/// | `CGCT_CACHE`             | result cache (`0`/empty disables)                  | on             | here    |
/// | `CGCT_CACHE_DIR`         | result-cache root directory                        | `.cgct-cache`  | here    |
/// | `CGCT_JOBS`              | run-level worker-pool width                        | host cores     | [`cgct_sim::pool::jobs`] |
/// | `CGCT_INTRA_JOBS`        | intra-run epoch-engine workers (unset = legacy)    | unset          | [`cgct_sim::pool::intra_jobs`] |
/// | `CGCT_TEST_SEED`         | root seed for property tests                       | fixed          | `cgct_sim::check::root_seed` |
///
/// Every knob is a host-side execution-strategy or observability
/// toggle: by construction (and verified by the A/B smokes in
/// `scripts/ci.sh`) none of them may change simulated outcomes, only
/// whether/how fast/with what instrumentation they are produced.
///
/// Values are read fresh on every call — the `experiments` binary
/// rewrites some of these while handling its own flags, and callers
/// must observe the update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobs {
    /// `CGCT_TRACE`: request-lifetime tracing is on.
    pub trace: bool,
    /// `CGCT_NO_SKIP`: idle-cycle skipping is disabled.
    pub no_skip: bool,
    /// `CGCT_SANITIZE`: the memory-system invariant sanitizer is on.
    pub sanitize: bool,
    /// `CGCT_SANITIZE_INTERVAL`: requests between full invariant walks.
    pub sanitize_interval: u64,
    /// `CGCT_CACHE` set to empty/`0`: the result cache is disabled.
    pub cache_disabled: bool,
    /// `CGCT_CACHE_DIR`: result-cache root (when set and non-empty).
    pub cache_dir: Option<String>,
}

/// True when `name` is set to something other than empty or `0`.
#[allow(clippy::disallowed_methods)] // clippy mirror of D004: this IS the seam
fn env_flag(name: &str) -> bool {
    matches!(
        std::env::var(name).ok().as_deref(),
        Some(v) if !v.is_empty() && v != "0"
    )
}

/// Reads the current [`EnvKnobs`] snapshot. See the type-level table.
#[allow(clippy::disallowed_methods)] // clippy mirror of D004: this IS the seam
pub fn env_knobs() -> EnvKnobs {
    EnvKnobs {
        trace: env_flag("CGCT_TRACE"),
        no_skip: env_flag("CGCT_NO_SKIP"),
        sanitize: env_flag("CGCT_SANITIZE"),
        sanitize_interval: std::env::var("CGCT_SANITIZE_INTERVAL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(65_536)
            .max(1),
        cache_disabled: matches!(
            std::env::var("CGCT_CACHE").ok().as_deref(),
            Some(v) if v.is_empty() || v == "0"
        ),
        cache_dir: std::env::var("CGCT_CACHE_DIR")
            .ok()
            .filter(|d| !d.is_empty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::disallowed_methods)] // probing the ambient env is the point
    fn env_knobs_defaults() {
        // The test harness never sets the sanitize-interval knob, so the
        // documented defaults must come back. (Flag knobs are exercised
        // by ci.sh's A/B smokes, which do set them.)
        let k = env_knobs();
        if std::env::var("CGCT_SANITIZE_INTERVAL").is_err() {
            assert_eq!(k.sanitize_interval, 65_536);
        }
        assert!(k.sanitize_interval >= 1);
    }

    #[test]
    fn paper_default_shape() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        assert_eq!(cfg.topology.total_cores(), 4);
        assert_eq!(cfg.geometry().region_bytes(), 64);
        assert!(cfg.rca_config().is_none());
    }

    #[test]
    fn cgct_mode_builds_rca_config() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        let rca = cfg.rca_config().unwrap();
        assert_eq!(rca.entries(), 16384);
        assert_eq!(rca.geometry.lines_per_region(), 8);
        assert_eq!(cfg.geometry().region_bytes(), 512);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(CoherenceMode::Baseline.label(), "baseline");
        assert_eq!(
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192
            }
            .label(),
            "cgct-512B"
        );
        assert_eq!(
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 4096
            }
            .label(),
            "cgct-512B-4096sets"
        );
        assert_eq!(
            CoherenceMode::RegionScout { region_bytes: 512 }.label(),
            "regionscout-512B"
        );
    }

    #[test]
    fn scalable_mode_labels_and_rca() {
        let dc = CoherenceMode::DirectoryCgct {
            region_bytes: 512,
            sets: 8192,
        };
        let hier = CoherenceMode::Hierarchical {
            region_bytes: 512,
            sets: 8192,
        };
        assert_eq!(dc.label(), "dir-cgct-512B");
        assert_eq!(hier.label(), "hier-512B");
        assert!(dc.uses_directory());
        assert!(CoherenceMode::Directory.uses_directory());
        assert!(!hier.uses_directory());
        for mode in [dc, hier] {
            let cfg = SystemConfig::paper_default(mode);
            let rca = cfg.rca_config().expect("scalable modes carry RCAs");
            assert_eq!(rca.geometry.region_bytes(), 512);
            assert_eq!(cfg.geometry().region_bytes(), 512);
        }
    }

    #[test]
    fn validate_rejects_more_than_64_directory_nodes() {
        use cgct_interconnect::Topology;
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Directory);
        // 2 cores/chip x 2 chips/switch x 2 switches/board x 9 boards = 72.
        cfg.topology = Topology {
            cores_per_chip: 2,
            chips_per_switch: 2,
            switches_per_board: 2,
            boards: 9,
        };
        let err = cfg.validate().unwrap_err();
        assert!(
            err.contains("72 cores"),
            "message should name the count: {err}"
        );
        assert!(err.contains("64"), "message should name the limit: {err}");

        // Exactly 64 nodes is representable.
        cfg.topology.boards = 8;
        assert_eq!(cfg.topology.total_cores(), 64);
        assert!(cfg.validate().is_ok());

        // Snooping modes have no sharer vector, so no limit applies.
        cfg.topology.boards = 9;
        cfg.mode = CoherenceMode::Baseline;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn region_bytes_by_mode() {
        assert_eq!(CoherenceMode::Baseline.region_bytes(), 64);
        assert_eq!(
            CoherenceMode::Scaled {
                region_bytes: 1024,
                sets: 8192
            }
            .region_bytes(),
            1024
        );
    }
}
