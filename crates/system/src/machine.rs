//! A whole simulated machine: cores + workload threads + memory system.

use crate::config::SystemConfig;
use crate::memsys::MemorySystem;
use crate::metrics::MemMetrics;
use cgct_cache::Addr;
use cgct_cpu::{Core, CoreConfig, MemoryInterface, UopSource};
use cgct_interconnect::CoreId;
use cgct_sim::{Cycle, SeedSequence};
use cgct_trace::{SharedSink, TraceReport, DEFAULT_CAPACITY};
use cgct_workloads::{BenchmarkSpec, WorkloadThread};

/// Adapter giving one core a view of the shared memory system.
struct Port<'a> {
    mem: &'a mut MemorySystem,
    core: CoreId,
}

impl MemoryInterface for Port<'_> {
    fn ifetch(&mut self, now: Cycle, addr: Addr) -> Cycle {
        self.mem.ifetch(self.core, now, addr)
    }
    fn load(&mut self, now: Cycle, addr: Addr, store_intent: bool) -> Cycle {
        self.mem.load(self.core, now, addr, store_intent)
    }
    fn store(&mut self, now: Cycle, addr: Addr) -> Cycle {
        self.mem.store(self.core, now, addr)
    }
    fn dcbz(&mut self, now: Cycle, addr: Addr) -> Cycle {
        self.mem.dcbz(self.core, now, addr)
    }
}

/// Aggregated Region-Coherence-Array statistics across all nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcaRunStats {
    /// Total region evictions.
    pub evictions: u64,
    /// Fraction of evicted regions with zero cached lines (§3.2: 65.1%).
    pub evicted_empty_fraction: f64,
    /// Fraction with exactly one cached line (§3.2: 17.2%).
    pub evicted_one_line_fraction: f64,
    /// Fraction with exactly two cached lines (§3.2: 5.1%).
    pub evicted_two_lines_fraction: f64,
    /// Region self-invalidations.
    pub self_invalidations: u64,
    /// Mean cached lines per valid region, sampled over the run (§5.2:
    /// 2.8–5).
    pub mean_lines_per_region: f64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Coherence mode label.
    pub mode: String,
    /// Cycles until every core committed its instruction quota.
    pub runtime_cycles: u64,
    /// Total instructions committed across cores during the measured
    /// phase. On a truncated run this is what the cores actually
    /// managed, not the target quota.
    pub committed: u64,
    /// Instructions committed per core during the measured phase.
    pub committed_per_core: Vec<u64>,
    /// Memory completion events delivered during the measured phase
    /// (bus grants, snoop completions, DRAM completions, port releases,
    /// MSHR fills) — identical across the event-driven and
    /// cycle-stepped loops.
    pub mem_events: u64,
    /// Aggregate IPC across cores.
    pub ipc: f64,
    /// Branch misprediction rate across cores.
    pub mispredict_rate: f64,
    /// Memory-system metrics.
    pub metrics: MemMetrics,
    /// RCA statistics (zeroed for non-CGCT modes).
    pub rca: RcaRunStats,
    /// Whether the run hit the cycle cap before finishing.
    pub truncated: bool,
    /// Request-lifetime trace report (`None` unless tracing was on —
    /// `CGCT_TRACE=1` or [`Machine::set_trace`]).
    pub trace: Option<TraceReport>,
}

/// One simulated machine instance.
///
/// Fields the epoch engine (the crate-private `epoch` module) borrows are
/// `pub(crate)`; everything else stays private to this module.
pub struct Machine {
    pub(crate) cores: Vec<Core>,
    pub(crate) threads: Vec<Box<dyn UopSource + Send>>,
    pub(crate) mem: MemorySystem,
    pub(crate) now: Cycle,
    benchmark: String,
    /// Per-core wakeup times from the last tick (see
    /// [`cgct_cpu::Wakeup`]); `now` jumps to their minimum when
    /// `cycle_skip` is on.
    pub(crate) wakeups: Vec<Cycle>,
    /// Per-core committed counts at the metrics epoch (end of warmup),
    /// so measured-phase counts can be reported exactly even when the
    /// run truncates short of its quota.
    epoch_committed: Vec<u64>,
    /// Event-driven time advancement (default). Disabled by the
    /// `CGCT_NO_SKIP` env var (or [`Machine::set_cycle_skip`]), which
    /// restores the plain cycle-stepped loop for A/B validation.
    pub(crate) cycle_skip: bool,
    /// Conservative-parallel epoch engine (DESIGN.md "Concurrency &
    /// determinism model"): `None` (default) runs the legacy
    /// single-threaded engine; `Some(w)` runs the epoch engine on `w`
    /// workers. From `CGCT_INTRA_JOBS` unless overridden by
    /// [`Machine::set_intra`].
    intra: Option<usize>,
    /// Per-logical-process persistent epoch-engine state (deferred-op
    /// bookkeeping and event sub-queues); empty until the epoch engine
    /// first runs.
    pub(crate) intra_lps: Vec<crate::epoch::LpState>,
    /// Request-lifetime trace sink shared with the memory system and the
    /// cores (`CGCT_TRACE=1` or [`Machine::set_trace`]). Tracing is pure
    /// observation: a traced run's architectural outcome is
    /// byte-identical to an untraced one.
    trace: Option<SharedSink>,
    /// Seed the machine was built with (labels the trace report).
    seed: u64,
}

/// Whether request-lifetime tracing is enabled for new machines
/// (`CGCT_TRACE`, via the [`crate::config::env_knobs`] seam).
fn trace_default() -> bool {
    crate::config::env_knobs().trace
}

/// Whether cycle skipping is enabled for new machines (true unless
/// `CGCT_NO_SKIP` is set, via the [`crate::config::env_knobs`] seam).
fn cycle_skip_default() -> bool {
    !crate::config::env_knobs().no_skip
}

/// The epoch-engine worker count for new machines, from
/// `CGCT_INTRA_JOBS` (see [`cgct_sim::pool::intra_jobs`]): `None`
/// selects the legacy engine.
///
/// The environment-derived count is clamped to the host's available
/// parallelism: epoch-engine output is byte-identical at any worker
/// count, so running more workers than hardware threads buys nothing
/// and costs barrier churn. [`Machine::set_intra`] applies no clamp —
/// tests use it to exercise the threaded path deliberately.
fn intra_default() -> Option<usize> {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cgct_sim::pool::intra_jobs().map(|n| n.min(host))
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("benchmark", &self.benchmark)
            .field("now", &self.now)
            .finish()
    }
}

impl Machine {
    /// Builds a machine for `spec` under `cfg`; `seed` controls both the
    /// workload streams and the perturbation RNG.
    pub fn new(cfg: SystemConfig, spec: &BenchmarkSpec, seed: u64) -> Self {
        let seq = SeedSequence::new(seed);
        let n = cfg.topology.total_cores();
        let core_cfg: CoreConfig = cfg.core;
        let cores = (0..n).map(|_| Core::new(core_cfg)).collect();
        let threads = (0..n)
            .map(|c| {
                Box::new(WorkloadThread::new(
                    spec.clone(),
                    c,
                    n,
                    seq.stream(c as u64),
                )) as Box<dyn UopSource + Send>
            })
            .collect();
        let mem = MemorySystem::new(cfg, seq.stream(1000));
        let mut machine = Machine {
            cores,
            threads,
            mem,
            now: Cycle::ZERO,
            benchmark: spec.name.to_string(),
            wakeups: vec![Cycle::ZERO; n],
            epoch_committed: vec![0; n],
            cycle_skip: cycle_skip_default(),
            intra: intra_default(),
            intra_lps: Vec::new(),
            trace: None,
            seed,
        };
        if trace_default() {
            machine.install_trace();
        }
        machine
    }

    /// Builds a machine driven by caller-provided instruction sources —
    /// one per core — e.g. recorded traces
    /// ([`cgct_workloads::trace::TraceThread`]) instead of the synthetic
    /// generators.
    ///
    /// # Panics
    ///
    /// Panics if the number of sources does not match the topology's core
    /// count.
    pub fn from_sources(
        cfg: SystemConfig,
        sources: Vec<Box<dyn UopSource + Send>>,
        label: &str,
        seed: u64,
    ) -> Self {
        let n = cfg.topology.total_cores();
        assert_eq!(sources.len(), n, "need one source per core ({n})");
        let core_cfg: CoreConfig = cfg.core;
        let cores = (0..n).map(|_| Core::new(core_cfg)).collect();
        let mem = MemorySystem::new(cfg, SeedSequence::new(seed).stream(1000));
        let mut machine = Machine {
            cores,
            threads: sources,
            mem,
            now: Cycle::ZERO,
            benchmark: label.to_string(),
            wakeups: vec![Cycle::ZERO; n],
            epoch_committed: vec![0; n],
            cycle_skip: cycle_skip_default(),
            intra: intra_default(),
            intra_lps: Vec::new(),
            trace: None,
            seed,
        };
        if trace_default() {
            machine.install_trace();
        }
        machine
    }

    /// Installs a fresh shared trace ring buffer into the memory system
    /// and every core.
    fn install_trace(&mut self) {
        let sink = SharedSink::new(DEFAULT_CAPACITY);
        self.mem.set_trace(sink.clone());
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.set_trace(i as u8, Box::new(sink.clone()));
        }
        self.trace = Some(sink);
    }

    /// Enables or disables request-lifetime tracing for this machine
    /// (overriding the `CGCT_TRACE` default). Enabling replaces any
    /// existing trace buffer with an empty one.
    pub fn set_trace(&mut self, enabled: bool) {
        if enabled {
            self.install_trace();
        } else {
            self.mem.clear_trace();
            for core in &mut self.cores {
                core.clear_trace();
            }
            self.trace = None;
        }
    }

    /// Whether request-lifetime tracing is on for this machine.
    pub fn trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Overrides the `CGCT_NO_SKIP` default for this machine: `false`
    /// forces the plain cycle-stepped loop, `true` the event-driven one.
    /// The two are observationally equivalent (see
    /// `tests/cycle_skip_equivalence.rs`); the cycle-stepped loop exists
    /// as the trusted reference.
    pub fn set_cycle_skip(&mut self, enabled: bool) {
        self.cycle_skip = enabled;
    }

    /// Whether this machine advances time event-driven (cycle skipping).
    pub fn cycle_skip(&self) -> bool {
        self.cycle_skip
    }

    /// Overrides the `CGCT_INTRA_JOBS` default for this machine: `None`
    /// selects the legacy single-threaded engine, `Some(1)` the epoch
    /// engine run serially (the byte-identity reference), `Some(w)` the
    /// epoch engine on `w` workers. The epoch engine is a documented
    /// model variant: its artifacts are byte-identical **across its own
    /// worker counts** (enforced by
    /// `tests/intra_parallel_determinism.rs`), not to the legacy
    /// engine's.
    pub fn set_intra(&mut self, workers: Option<usize>) {
        self.intra = workers;
    }

    /// The epoch-engine worker count (`None` = legacy engine).
    pub fn intra(&self) -> Option<usize> {
        self.intra
    }

    /// Total core ticks actually executed, summed across cores. Under
    /// the cycle-stepped loop this is (cores x cycles each core ran);
    /// under cycle skipping it is smaller by exactly the number of
    /// skipped no-op ticks — the speedup diagnostic.
    pub fn executed_ticks(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().cycles).sum()
    }

    /// Read access to the memory system (tests, inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Enables or disables the runtime coherence sanitizer for this
    /// machine (overriding the `CGCT_SANITIZE` default).
    pub fn set_sanitize(&mut self, enabled: bool) {
        self.mem.set_sanitize(enabled);
    }

    /// Mutable access to the memory system (sanitizer configuration).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Runs until every core has committed `instructions_per_core`, or
    /// `max_cycles` elapse.
    pub fn run(&mut self, instructions_per_core: u64, max_cycles: u64) -> RunResult {
        self.run_warmed(0, instructions_per_core, max_cycles)
    }

    /// Runs `warmup_per_core` instructions to warm the caches, resets all
    /// metrics, then measures a further `instructions_per_core` per core —
    /// mirroring the paper's warmed-checkpoint methodology (§4).
    pub fn run_warmed(
        &mut self,
        warmup_per_core: u64,
        instructions_per_core: u64,
        max_cycles: u64,
    ) -> RunResult {
        let mut truncated = false;
        if warmup_per_core > 0 {
            truncated |= self.run_until(warmup_per_core, max_cycles);
            self.mark_warmed();
        }
        truncated |= self.run_until(warmup_per_core + instructions_per_core, max_cycles);
        self.finish_run(truncated)
    }

    /// Ends the warmup phase: resets all metrics to start the measured
    /// phase at the current cycle (mirroring the paper's
    /// warmed-checkpoint methodology, §4).
    pub(crate) fn mark_warmed(&mut self) {
        let epoch = self.now;
        self.mem.reset_metrics(epoch);
        for (slot, core) in self.epoch_committed.iter_mut().zip(&self.cores) {
            *slot = core.committed();
        }
    }

    /// Closes out a measured run: finalizes interval tracking, runs the
    /// sanitizer's end-of-run walk, and builds the [`RunResult`].
    pub(crate) fn finish_run(&mut self, truncated: bool) -> RunResult {
        let end = Cycle(self.now.0.saturating_sub(self.mem.metrics_epoch().0));
        self.mem.metrics.finish(end);
        if self.mem.sanitize() {
            // End-of-run walk: periodic checks can miss a violation that
            // appears in the final stretch of the run.
            if let Err(err) = self.mem.check_invariants() {
                panic!("coherence sanitizer (end of run): {err}");
            }
        }
        self.result(truncated)
    }

    /// Runs cores until each has committed `committed_target`
    /// instructions or `now` reaches the (exclusive) `max_cycles` cap.
    ///
    /// With cycle skipping on, `now` jumps to the minimum wakeup across
    /// unfinished cores after each round; otherwise it steps by one.
    /// Both modes tick the same cores with the same `now` at every cycle
    /// where any core makes progress, so the sequence of memory-system
    /// calls — and with it every architectural outcome — is identical.
    /// The cap is exclusive: no core is ever ticked at a cycle >=
    /// `max_cycles`, and a truncated run stops with `now == max_cycles`
    /// in both modes.
    pub(crate) fn run_until(&mut self, committed_target: u64, max_cycles: u64) -> bool {
        if let Some(w) = self.intra {
            // Traced runs stay on one worker: core-side records would
            // otherwise interleave through the shared sink in worker
            // order. Same epoch algorithm either way, so the artifacts
            // still byte-match `--intra-serial`.
            let w = if self.trace.is_some() {
                1
            } else {
                w.min(self.cores.len()).max(1)
            };
            return crate::epoch::run_until_epochs(self, committed_target, max_cycles, w);
        }
        let n = self.cores.len();
        // `unfinished` lists the cores still short of the target, in
        // index order. Maintaining it incrementally keeps each round at
        // one pass over the *running* cores instead of three passes over
        // all of them (done-check, tick loop, wakeup scan).
        let mut unfinished: Vec<usize> = (0..n)
            .filter(|&i| self.cores[i].committed() < committed_target)
            .collect();
        loop {
            if unfinished.is_empty() {
                return false;
            }
            if self.now.0 >= max_cycles {
                return true;
            }
            // One pass: tick every due core, drop freshly-finished
            // cores, and fold the minimum wakeup of the rest.
            let mut earliest = u64::MAX;
            unfinished.retain(|&i| {
                if !self.cycle_skip || self.wakeups[i] <= self.now {
                    let mut port = Port {
                        mem: &mut self.mem,
                        core: CoreId(i),
                    };
                    let w = self.cores[i].tick(self.now, &mut port, &mut *self.threads[i]);
                    self.wakeups[i] = w.0;
                    if self.cores[i].committed() >= committed_target {
                        return false;
                    }
                }
                earliest = earliest.min(self.wakeups[i].0);
                true
            });
            let mut next = self.now.0 + 1;
            if self.cycle_skip {
                // Jump to the earliest wakeup among cores still running.
                // Every unfinished core's wakeup is > now here (ticked
                // cores returned >= now + 1; skipped ones were already
                // ahead), so next only moves forward.
                if earliest != u64::MAX && earliest > next {
                    next = earliest;
                }
                // Second clock source: never skip past a pending memory
                // completion event. Events only *limit* the jump — they
                // never extend it past now + 1, so the loop's stopping
                // times remain a superset of the reference loop's
                // progress times and the end-of-phase `now` matches.
                if let Some(t) = self.mem.next_event_time() {
                    next = next.min(t.0.max(self.now.0 + 1));
                }
            }
            self.now = Cycle(next.min(max_cycles));
            // Retire memory completion events that time has now
            // reached. Purely observational (events carry no state),
            // and both loop modes reach the same final time having
            // delivered everything due by then, so the counts agree.
            self.mem.advance(self.now);
        }
    }

    fn result(&self, truncated: bool) -> RunResult {
        // Report what the cores actually committed since the metrics
        // epoch — NOT `quota * n`, which overstates both committed and
        // IPC whenever the run truncates at the cycle cap before every
        // core reaches its quota. (On a complete run the actual count
        // can differ from the quota by at most one tick's commit width
        // per core.)
        let committed_per_core: Vec<u64> = self
            .cores
            .iter()
            .zip(&self.epoch_committed)
            .map(|(c, &epoch)| c.committed() - epoch)
            .collect();
        let committed: u64 = committed_per_core.iter().sum();
        let (mut preds, mut mispreds) = (0u64, 0u64);
        for c in &self.cores {
            preds += c.branch_predictor().predictions();
            mispreds += c.branch_predictor().mispredictions();
        }
        let mut rca = RcaRunStats::default();
        let mut evicted = [0u64; 3];
        let mut evictions_total = 0u64;
        let mut nodes_with_rca = 0u64;
        for i in 0..self.cores.len() {
            if let Some(r) = self.mem.rca(CoreId(i)) {
                nodes_with_rca += 1;
                let s = r.stats();
                evictions_total += s.evictions.value();
                for (b, slot) in evicted.iter_mut().enumerate() {
                    *slot += s.evicted_line_counts.count(b);
                }
                rca.self_invalidations += s.self_invalidations.value();
                rca.mean_lines_per_region += r.mean_lines_per_region();
            }
        }
        if nodes_with_rca > 0 {
            rca.mean_lines_per_region /= nodes_with_rca as f64;
        }
        rca.evictions = evictions_total;
        if evictions_total > 0 {
            rca.evicted_empty_fraction = evicted[0] as f64 / evictions_total as f64;
            rca.evicted_one_line_fraction = evicted[1] as f64 / evictions_total as f64;
            rca.evicted_two_lines_fraction = evicted[2] as f64 / evictions_total as f64;
        }
        let runtime = self.now.0.saturating_sub(self.mem.metrics_epoch().0);
        RunResult {
            benchmark: self.benchmark.clone(),
            mode: self.mem.config().mode.label(),
            runtime_cycles: runtime,
            committed,
            committed_per_core,
            mem_events: self.mem.events_delivered(),
            ipc: if runtime == 0 {
                0.0
            } else {
                committed as f64 / (runtime as f64 * self.cores.len() as f64)
            },
            mispredict_rate: if preds == 0 {
                0.0
            } else {
                mispreds as f64 / preds as f64
            },
            metrics: self.mem.metrics.clone(),
            rca,
            truncated,
            trace: self.trace.as_ref().map(|sink| {
                TraceReport::from_buffer(
                    format!(
                        "{}/{}#s{}",
                        self.benchmark,
                        self.mem.config().mode.label(),
                        self.seed
                    ),
                    &sink.take(),
                )
            }),
        }
    }

    /// Checks global invariants (delegates to the memory system).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.mem.check_invariants()
    }

    /// The benchmark label this machine was built for.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The seed this machine was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serializes the complete dynamic machine state — every core's
    /// pipeline, every instruction source's generator state, and the
    /// full memory system — as a [`cgct_sim::Json`] snapshot that
    /// [`Machine::restore`] turns back into an identical machine.
    ///
    /// A restored machine's subsequent trajectory is byte-identical to
    /// the uninterrupted one (see `tests/checkpoint_resume.rs`), which
    /// is what makes on-disk checkpoints and warmed-state forking safe.
    ///
    /// # Errors
    ///
    /// Fails when tracing is on, after the epoch engine has run
    /// (checkpointed runs must use the legacy engine —
    /// [`Machine::set_intra`]`(None)`), when an instruction source does
    /// not support checkpointing, or while the memory system is
    /// mid-request.
    pub fn snapshot(&self) -> Result<cgct_sim::Json, String> {
        use cgct_sim::{Json, Snap};
        if self.trace.is_some() {
            return Err("cannot snapshot a traced machine".to_string());
        }
        if !self.intra_lps.is_empty() {
            return Err(
                "cannot snapshot after the epoch engine has run; checkpointed runs use the \
                 legacy engine (set_intra(None))"
                    .to_string(),
            );
        }
        let threads: Vec<Json> = self
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.snap_state().ok_or_else(|| {
                    format!("thread {i}'s instruction source does not support checkpointing")
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(Json::obj([
            ("v", Json::u64(1)),
            ("benchmark", Json::str(self.benchmark.clone())),
            ("seed", Json::u64(self.seed)),
            ("config_fp", Json::u64(self.mem.config().fingerprint())),
            ("now", self.now.snap()),
            ("wakeups", self.wakeups.snap()),
            ("epoch_committed", self.epoch_committed.snap()),
            (
                "cores",
                Json::Array(self.cores.iter().map(|c| c.snap_state()).collect()),
            ),
            ("threads", Json::Array(threads)),
            ("mem", self.mem.snap_state()?),
        ]))
    }

    /// Restores a [`Machine::snapshot`] into this machine, which must
    /// have been built with the identical configuration, benchmark, and
    /// seed (all three are validated against the snapshot).
    ///
    /// # Errors
    ///
    /// Fails on malformed input, any identity mismatch, or when this
    /// machine is traced or has run the epoch engine.
    pub fn restore(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{elements, field, unsnap_field};
        if self.trace.is_some() {
            return Err("cannot restore into a traced machine".to_string());
        }
        if !self.intra_lps.is_empty() {
            return Err("cannot restore after the epoch engine has run".to_string());
        }
        let version: u64 = unsnap_field(v, "v")?;
        if version != 1 {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let benchmark: String = unsnap_field(v, "benchmark")?;
        if benchmark != self.benchmark {
            return Err(format!(
                "snapshot is of benchmark {benchmark:?}, machine runs {:?}",
                self.benchmark
            ));
        }
        let seed: u64 = unsnap_field(v, "seed")?;
        if seed != self.seed {
            return Err(format!(
                "snapshot was taken at seed {seed}, machine uses {}",
                self.seed
            ));
        }
        let fp: u64 = unsnap_field(v, "config_fp")?;
        if fp != self.mem.config().fingerprint() {
            return Err("snapshot was taken under a different configuration".to_string());
        }
        let wakeups: Vec<Cycle> = unsnap_field(v, "wakeups")?;
        if wakeups.len() != self.wakeups.len() {
            return Err("wakeup count does not match core count".to_string());
        }
        let epoch_committed: Vec<u64> = unsnap_field(v, "epoch_committed")?;
        if epoch_committed.len() != self.epoch_committed.len() {
            return Err("epoch-committed count does not match core count".to_string());
        }
        let cores = elements(field(v, "cores")?)?;
        if cores.len() != self.cores.len() {
            return Err(format!(
                "snapshot has {} cores, machine has {}",
                cores.len(),
                self.cores.len()
            ));
        }
        let threads = elements(field(v, "threads")?)?;
        if threads.len() != self.threads.len() {
            return Err(format!(
                "snapshot has {} threads, machine has {}",
                threads.len(),
                self.threads.len()
            ));
        }
        for (i, (core, cv)) in self.cores.iter_mut().zip(cores).enumerate() {
            core.restore_state(cv)
                .map_err(|e| format!("core[{i}]: {e}"))?;
        }
        for (i, (thread, tv)) in self.threads.iter_mut().zip(threads).enumerate() {
            thread
                .restore_state(tv)
                .map_err(|e| format!("thread[{i}]: {e}"))?;
        }
        self.mem
            .restore_state(field(v, "mem")?)
            .map_err(|e| format!("memory system: {e}"))?;
        self.now = unsnap_field(v, "now")?;
        self.wakeups = wakeups;
        self.epoch_committed = epoch_committed;
        Ok(())
    }
}

impl cgct_sim::Snap for RcaRunStats {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("evictions", Json::u64(self.evictions)),
            ("evicted_empty_fraction", self.evicted_empty_fraction.snap()),
            (
                "evicted_one_line_fraction",
                self.evicted_one_line_fraction.snap(),
            ),
            (
                "evicted_two_lines_fraction",
                self.evicted_two_lines_fraction.snap(),
            ),
            ("self_invalidations", Json::u64(self.self_invalidations)),
            ("mean_lines_per_region", self.mean_lines_per_region.snap()),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(RcaRunStats {
            evictions: unsnap_field(v, "evictions")?,
            evicted_empty_fraction: unsnap_field(v, "evicted_empty_fraction")?,
            evicted_one_line_fraction: unsnap_field(v, "evicted_one_line_fraction")?,
            evicted_two_lines_fraction: unsnap_field(v, "evicted_two_lines_fraction")?,
            self_invalidations: unsnap_field(v, "self_invalidations")?,
            mean_lines_per_region: unsnap_field(v, "mean_lines_per_region")?,
        })
    }
}

impl cgct_sim::Snap for RunResult {
    /// The trace report is never serialized: the result cache is
    /// bypassed while tracing, so a cached result is always untraced
    /// and `unsnap` restores `trace: None`.
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("benchmark", Json::str(self.benchmark.clone())),
            ("mode", Json::str(self.mode.clone())),
            ("runtime_cycles", Json::u64(self.runtime_cycles)),
            ("committed", Json::u64(self.committed)),
            ("committed_per_core", self.committed_per_core.snap()),
            ("mem_events", Json::u64(self.mem_events)),
            ("ipc", self.ipc.snap()),
            ("mispredict_rate", self.mispredict_rate.snap()),
            ("metrics", self.metrics.snap()),
            ("rca", self.rca.snap()),
            ("truncated", Json::Bool(self.truncated)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(RunResult {
            benchmark: unsnap_field(v, "benchmark")?,
            mode: unsnap_field(v, "mode")?,
            runtime_cycles: unsnap_field(v, "runtime_cycles")?,
            committed: unsnap_field(v, "committed")?,
            committed_per_core: unsnap_field(v, "committed_per_core")?,
            mem_events: unsnap_field(v, "mem_events")?,
            ipc: unsnap_field(v, "ipc")?,
            mispredict_rate: unsnap_field(v, "mispredict_rate")?,
            metrics: unsnap_field(v, "metrics")?,
            rca: unsnap_field(v, "rca")?,
            truncated: unsnap_field(v, "truncated")?,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceMode;
    use cgct_workloads::by_name;

    fn tiny_run(mode: CoherenceMode, seed: u64) -> (RunResult, Machine) {
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        let spec = by_name("ocean").unwrap();
        let mut m = Machine::new(cfg, &spec, seed);
        let r = m.run(3000, 2_000_000);
        (r, m)
    }

    #[test]
    fn baseline_run_completes_and_holds_invariants() {
        let (r, m) = tiny_run(CoherenceMode::Baseline, 1);
        assert!(!r.truncated, "run truncated at {} cycles", r.runtime_cycles);
        assert!(r.committed >= 4 * 3000);
        assert!(r.ipc > 0.01, "ipc {}", r.ipc);
        assert!(r.metrics.broadcasts > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cgct_run_avoids_broadcasts() {
        let (base, _) = tiny_run(CoherenceMode::Baseline, 1);
        let (cgct, m) = tiny_run(
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
            1,
        );
        assert!(!cgct.truncated);
        assert!(
            cgct.metrics.broadcasts < base.metrics.broadcasts,
            "cgct {} vs base {}",
            cgct.metrics.broadcasts,
            base.metrics.broadcasts
        );
        assert!(cgct.metrics.avoided_fraction() > 0.1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cgct_is_not_slower() {
        let (base, _) = tiny_run(CoherenceMode::Baseline, 2);
        let (cgct, _) = tiny_run(
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
            2,
        );
        // Tiny runs are noisy; allow a small tolerance but catch gross
        // regressions (CGCT must not be meaningfully slower).
        assert!(
            (cgct.runtime_cycles as f64) < base.runtime_cycles as f64 * 1.05,
            "cgct {} vs base {}",
            cgct.runtime_cycles,
            base.runtime_cycles
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = tiny_run(CoherenceMode::Baseline, 7);
        let (b, _) = tiny_run(CoherenceMode::Baseline, 7);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.metrics.broadcasts, b.metrics.broadcasts);
    }

    #[test]
    fn different_seeds_perturb_runtime() {
        let (a, _) = tiny_run(CoherenceMode::Baseline, 1);
        let (b, _) = tiny_run(CoherenceMode::Baseline, 99);
        assert_ne!(
            (a.runtime_cycles, a.metrics.broadcasts),
            (b.runtime_cycles, b.metrics.broadcasts)
        );
    }

    #[test]
    fn sanitized_run_is_byte_identical_and_actually_checks() {
        let mode = CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        };
        let (plain, _) = tiny_run(mode, 5);
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        let spec = by_name("ocean").unwrap();
        let mut m = Machine::new(cfg, &spec, 5);
        m.set_sanitize(true);
        m.memory_mut().set_sanitize_interval(500);
        let sanitized = m.run(3000, 2_000_000);
        // The sanitizer is read-only: every architectural outcome must
        // match the unsanitized run exactly.
        assert_eq!(sanitized.runtime_cycles, plain.runtime_cycles);
        assert_eq!(sanitized.committed, plain.committed);
        assert_eq!(sanitized.metrics.broadcasts, plain.metrics.broadcasts,);
        assert_eq!(
            sanitized.metrics.requests.total(),
            plain.metrics.requests.total()
        );
        // And it must actually have walked the invariants along the way.
        assert!(
            m.memory().sanitize_checks() > 0,
            "no periodic sanitizer walks ran"
        );
    }

    #[test]
    fn traced_run_is_byte_identical_and_spans_are_conserved() {
        let mode = CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        };
        let (plain, _) = tiny_run(mode, 5);
        let mut cfg = SystemConfig::paper_default(mode);
        cfg.perturbation = 0;
        let spec = by_name("ocean").unwrap();
        let mut m = Machine::new(cfg, &spec, 5);
        m.set_trace(true);
        let traced = m.run(3000, 2_000_000);
        // Tracing is pure observation: every architectural outcome must
        // match the untraced run exactly.
        assert_eq!(traced.runtime_cycles, plain.runtime_cycles);
        assert_eq!(traced.committed, plain.committed);
        assert_eq!(traced.metrics.broadcasts, plain.metrics.broadcasts);
        assert_eq!(
            traced.metrics.requests.total(),
            plain.metrics.requests.total()
        );
        // Span conservation: every counted request retired exactly one
        // complete span whose segments partition its lifetime.
        let report = traced.trace.expect("tracing was on");
        assert_eq!(report.dropped_events, 0);
        assert_eq!(report.incomplete, 0, "requests issued but never retired");
        assert_eq!(report.orphans, 0, "milestones without a matching issue");
        assert_eq!(report.spans.len() as u64, traced.metrics.requests.total());
        for span in &report.spans {
            let total: u64 = span.segments.iter().map(|s| s.cycles()).sum();
            assert_eq!(total, span.latency(), "segments must partition {span:?}");
        }
    }

    #[test]
    fn truncation_reported() {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        cfg.perturbation = 0;
        let spec = by_name("barnes").unwrap();
        let mut m = Machine::new(cfg, &spec, 1);
        let r = m.run(1_000_000, 500);
        assert!(r.truncated);
    }
}
