//! The full multiprocessor system simulator for the CGCT reproduction.
//!
//! Assembles the substrate crates into the paper's machine: four
//! out-of-order cores (2 per chip), per-core L1I/L1D and an inclusive
//! MOESI L2, a broadcast address network with Fireplane-like latencies,
//! region-interleaved memory controllers — and, per configuration, a
//! Region Coherence Array per processor implementing Coarse-Grain
//! Coherence Tracking (or the scaled-back / RegionScout variants).
//!
//! The crate also contains the oracle broadcast classifier behind
//! Figure 2, the metrics behind Figures 7–10, the multi-seed runner with
//! 95% confidence intervals, and a driver for every experiment in the
//! paper's evaluation.
//!
//! # Examples
//!
//! ```no_run
//! use cgct_system::{Machine, SystemConfig, CoherenceMode};
//! use cgct_workloads::by_name;
//!
//! let cfg = SystemConfig::paper_default(CoherenceMode::Cgct { region_bytes: 512, sets: 8192 });
//! let spec = by_name("tpc-w").unwrap();
//! let mut machine = Machine::new(cfg, &spec, 1);
//! let result = machine.run(50_000, 10_000_000);
//! println!("runtime: {} cycles", result.runtime_cycles);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod directory;
pub mod energy;
mod epoch;
pub mod experiments;
pub mod machine;
pub mod memsys;
pub mod metrics;
pub mod oracle;
pub mod report;
pub mod resultcache;
pub mod runner;

pub use checkpoint::CheckpointRun;
pub use config::{CoherenceMode, SystemConfig};
pub use machine::{Machine, RunResult};
pub use memsys::MemorySystem;
pub use metrics::{MemMetrics, RequestBreakdown, RequestCategory};
pub use oracle::classify;
pub use resultcache::ResultCache;
pub use runner::{run_averaged, run_once, run_once_cached, AggregateResult, RunPlan};
