//! Content-addressed on-disk cache of deterministic run results.
//!
//! Every sweep cell ([`crate::runner::WorkItem`] + [`RunPlan`]) is a
//! pure function of its inputs: the simulator is deterministic given
//! the configuration, benchmark, seed, plan, and engine variant. That
//! makes its [`RunResult`] cacheable by content address — a 64-bit
//! FNV-1a key over a canonical rendering of exactly those inputs plus
//! a fingerprint of the running binary, so a rebuilt simulator never
//! serves stale results. Hits return the stored result; misses
//! simulate and populate the cache atomically (write-temp-then-rename),
//! so a warm re-run of a whole sweep simulates nothing and produces
//! byte-identical artifacts.
//!
//! The cache is OFF at the library level: nothing here runs unless a
//! binary calls [`install_from_env`] (the `experiments` harness does,
//! by default). `CGCT_CACHE=0` disables it; `CGCT_CACHE_DIR` moves it
//! (default `.cgct-cache`). It also stays off under `CGCT_TRACE`,
//! `CGCT_SANITIZE`, and `CGCT_NO_SKIP`: those runs exist to *exercise*
//! the simulator, which a cache hit would silently skip.
//!
//! Entries are self-validating: an envelope records the payload's byte
//! length and FNV-1a digest, so truncated or corrupted files are
//! detected on read and treated as misses (re-simulated, then
//! overwritten) rather than trusted or panicked over.

use crate::config::SystemConfig;
use crate::machine::RunResult;
use crate::runner::RunPlan;
use cgct_sim::hash::fnv1a;
use cgct_sim::{Json, Snap};
use cgct_workloads::BenchmarkSpec;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Envelope format version.
const VERSION: u64 = 1;

/// FNV-1a fingerprint of the running executable's bytes, computed once
/// per process. `None` when the executable cannot be read (the cache
/// stays disabled rather than risking stale hits across rebuilds).
pub fn code_fingerprint() -> Option<u64> {
    static FP: OnceLock<Option<u64>> = OnceLock::new();
    *FP.get_or_init(|| {
        let exe = std::env::current_exe().ok()?;
        let bytes = std::fs::read(exe).ok()?;
        Some(fnv1a(&bytes))
    })
}

/// The engine variant label that enters the cache key. The epoch
/// engine is a documented model variant whose artifacts are
/// byte-identical across its own worker counts but not to the legacy
/// engine's, so the two must never share cache entries. Worker count
/// itself is deliberately excluded.
fn engine_variant() -> &'static str {
    if cgct_sim::pool::intra_jobs().is_some() {
        "epoch"
    } else {
        "legacy"
    }
}

/// The content address of one sweep cell: FNV-1a over a canonical
/// rendering of everything the result is a function of — the binary's
/// code fingerprint, the full configuration, the benchmark definition,
/// the seed, the plan's per-cell knobs, and the engine variant.
/// Deliberately excluded: worker counts (`CGCT_JOBS`,
/// `CGCT_INTRA_JOBS`' value), tracing, and sanitizing — none of them
/// change the result bytes (and traced/sanitized runs bypass the cache
/// entirely).
pub fn cache_key(cfg: &SystemConfig, spec: &BenchmarkSpec, seed: u64, plan: &RunPlan) -> u64 {
    let canonical = format!(
        "v{VERSION}\ncode={:016x}\nconfig={cfg:?}\nbenchmark={spec:?}\nseed={seed}\n\
         warmup={}\ninstructions={}\nmax_cycles={}\nengine={}\n",
        code_fingerprint().unwrap_or(0),
        plan.warmup_per_core,
        plan.instructions_per_core,
        plan.max_cycles,
        engine_variant(),
    );
    fnv1a(canonical.as_bytes())
}

/// What one garbage collection accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: u64,
    /// Entries kept (current code fingerprint, intact envelope).
    pub kept: u64,
    /// Entries removed (stale code fingerprint or corrupt).
    pub removed: u64,
    /// Bytes reclaimed by the removals.
    pub bytes_reclaimed: u64,
}

/// A content-addressed result store rooted at one directory.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotonic suffix for temp-file names (unique within process).
    temp_seq: AtomicU64,
}

impl ResultCache {
    /// Opens (and lazily creates) a cache rooted at `dir`.
    pub fn new(dir: PathBuf) -> Self {
        ResultCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache hits served since construction (or the last
    /// [`ResultCache::reset_counts`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed since construction (or the last
    /// [`ResultCache::reset_counts`]).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Zeroes the hit/miss counters (per-section reporting).
    pub fn reset_counts(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Looks up `key`, returning the stored result only if the entry's
    /// envelope is intact: version and code fingerprint current, and
    /// the payload's length and FNV-1a digest both matching. Anything
    /// else — missing file, truncation, corruption, stale binary — is
    /// a miss; the caller re-simulates and overwrites.
    pub fn lookup(&self, key: u64) -> Option<RunResult> {
        let result = self.read_validated(key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn read_validated(&self, key: u64) -> Option<RunResult> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let envelope = Json::parse(&text).ok()?;
        let fp = code_fingerprint()?;
        match validate_envelope(&envelope, fp) {
            Ok(payload) => RunResult::unsnap(payload).ok(),
            Err(_) => None,
        }
    }

    /// Stores `result` under `key` atomically: the envelope is written
    /// to a unique temp file in the cache directory and renamed into
    /// place, so readers never observe a partial entry. I/O errors are
    /// swallowed — a cache that cannot write degrades to re-simulation.
    pub fn store(&self, key: u64, result: &RunResult) {
        let Some(fp) = code_fingerprint() else {
            return;
        };
        let payload = result.snap();
        let payload_text = payload.dump();
        let envelope = Json::obj([
            ("v", Json::u64(VERSION)),
            ("code_fp", Json::u64(fp)),
            ("len", Json::u64(payload_text.len() as u64)),
            ("fnv", Json::u64(fnv1a(payload_text.as_bytes()))),
            ("payload", payload),
        ]);
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let temp = self.dir.join(format!(
            ".tmp-{}-{}-{key:016x}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&temp, envelope.dump()).is_err() {
            let _ = std::fs::remove_file(&temp);
            return;
        }
        if std::fs::rename(&temp, self.entry_path(key)).is_err() {
            let _ = std::fs::remove_file(&temp);
        }
    }

    /// Removes entries that can never hit again: stale code
    /// fingerprints, unsupported versions, and corrupt or truncated
    /// envelopes. Leftover temp files are removed too. Returns what was
    /// reclaimed.
    ///
    /// # Errors
    ///
    /// Fails when the cache directory exists but cannot be read.
    pub fn gc(&self) -> Result<GcReport, String> {
        let mut report = GcReport::default();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(err) => return Err(format!("cannot read {}: {err}", self.dir.display())),
        };
        let fp = code_fingerprint().unwrap_or(0);
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let size = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if name.starts_with(".tmp-") {
                if std::fs::remove_file(&path).is_ok() {
                    report.removed += 1;
                    report.bytes_reclaimed += size;
                }
                continue;
            }
            if !name.ends_with(".json") {
                continue;
            }
            report.scanned += 1;
            let intact = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .is_some_and(|env| validate_envelope(&env, fp).is_ok());
            if intact {
                report.kept += 1;
            } else if std::fs::remove_file(&path).is_ok() {
                report.removed += 1;
                report.bytes_reclaimed += size;
            }
        }
        Ok(report)
    }
}

/// Checks an envelope's version, code fingerprint, and payload
/// integrity (length + FNV-1a over the payload's canonical dump, which
/// is exact because every float in a snapshot is stored as an integer
/// bit pattern). Returns the payload on success.
fn validate_envelope(envelope: &Json, fp: u64) -> Result<&Json, String> {
    use cgct_sim::snap::{field, unsnap_field};
    let version: u64 = unsnap_field(envelope, "v")?;
    if version != VERSION {
        return Err(format!("unsupported cache entry version {version}"));
    }
    let entry_fp: u64 = unsnap_field(envelope, "code_fp")?;
    if entry_fp != fp {
        return Err("entry was written by a different binary".to_string());
    }
    let payload = field(envelope, "payload")?;
    let text = payload.dump();
    let len: u64 = unsnap_field(envelope, "len")?;
    if len != text.len() as u64 {
        return Err("payload length mismatch".to_string());
    }
    let digest: u64 = unsnap_field(envelope, "fnv")?;
    if digest != fnv1a(text.as_bytes()) {
        return Err("payload digest mismatch".to_string());
    }
    Ok(payload)
}

/// The process-global cache used by [`crate::runner`]'s cached path.
static GLOBAL: OnceLock<Option<ResultCache>> = OnceLock::new();

/// Installs the process-global result cache from the environment (via
/// the [`crate::config::env_knobs`] seam): rooted at `CGCT_CACHE_DIR`
/// (default `.cgct-cache`). Returns whether a cache is active
/// afterwards — `false` when `CGCT_CACHE=0`, when `CGCT_TRACE` /
/// `CGCT_SANITIZE` / `CGCT_NO_SKIP` ask for a run that must actually
/// execute, or when the binary cannot fingerprint itself. Idempotent;
/// the first call decides.
pub fn install_from_env() -> bool {
    GLOBAL
        .get_or_init(|| {
            let knobs = crate::config::env_knobs();
            if knobs.cache_disabled
                || knobs.trace
                || knobs.sanitize
                || knobs.no_skip
                || code_fingerprint().is_none()
            {
                return None;
            }
            let dir = knobs.cache_dir.unwrap_or_else(|| ".cgct-cache".to_string());
            Some(ResultCache::new(PathBuf::from(dir)))
        })
        .is_some()
}

/// The installed global cache, if [`install_from_env`] activated one.
/// Libraries and tests that never install one run fully uncached.
pub fn global() -> Option<&'static ResultCache> {
    GLOBAL.get().and_then(|c| c.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceMode;
    use crate::runner::run_once;
    use cgct_workloads::by_name;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cgct-resultcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_result() -> (RunResult, SystemConfig, BenchmarkSpec, RunPlan) {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        cfg.perturbation = 0;
        let spec = by_name("barnes").unwrap();
        let plan = RunPlan {
            warmup_per_core: 0,
            instructions_per_core: 1_000,
            max_cycles: 1_000_000,
            runs: 1,
            base_seed: 3,
        };
        let r = run_once(&cfg, &spec, 3, &plan);
        (r, cfg, spec, plan)
    }

    #[test]
    fn roundtrip_hit_returns_identical_result() {
        let (r, cfg, spec, plan) = small_result();
        let cache = ResultCache::new(temp_dir("roundtrip"));
        let key = cache_key(&cfg, &spec, 3, &plan);
        assert!(cache.lookup(key).is_none(), "cold cache must miss");
        cache.store(key, &r);
        let hit = cache.lookup(key).expect("warm cache must hit");
        assert_eq!(hit.snap().dump(), r.snap().dump());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_and_corrupt_entries_miss_without_panicking() {
        let (r, cfg, spec, plan) = small_result();
        let cache = ResultCache::new(temp_dir("corrupt"));
        let key = cache_key(&cfg, &spec, 3, &plan);
        cache.store(key, &r);
        let path = cache.dir().join(format!("{key:016x}.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        // Truncation: the envelope no longer parses.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.lookup(key).is_none());
        // Corruption that still parses: flip a digit inside the payload.
        let poisoned = text.replacen("\"runtime_cycles\":", "\"runtime_cycles\":9", 1);
        assert_ne!(poisoned, text, "poison must change the payload");
        std::fs::write(&path, poisoned).unwrap();
        assert!(cache.lookup(key).is_none());
        // Re-simulating and re-storing recovers the entry.
        cache.store(key, &r);
        assert!(cache.lookup(key).is_some());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn keys_separate_every_input() {
        let (_, cfg, spec, plan) = small_result();
        let base = cache_key(&cfg, &spec, 3, &plan);
        assert_eq!(base, cache_key(&cfg, &spec, 3, &plan), "key is stable");
        assert_ne!(base, cache_key(&cfg, &spec, 4, &plan), "seed in key");
        let mut other = plan;
        other.instructions_per_core += 1;
        assert_ne!(base, cache_key(&cfg, &spec, 3, &other), "plan in key");
        let mut cfg2 = cfg.clone();
        cfg2.perturbation += 1;
        assert_ne!(base, cache_key(&cfg2, &spec, 3, &plan), "config in key");
        let spec2 = by_name("ocean").unwrap();
        assert_ne!(base, cache_key(&cfg, &spec2, 3, &plan), "benchmark in key");
    }

    #[test]
    fn gc_prunes_stale_and_corrupt_entries() {
        let (r, cfg, spec, plan) = small_result();
        let cache = ResultCache::new(temp_dir("gc"));
        let key = cache_key(&cfg, &spec, 3, &plan);
        cache.store(key, &r);
        // A stale entry: same shape, wrong code fingerprint.
        let text = std::fs::read_to_string(cache.dir().join(format!("{key:016x}.json"))).unwrap();
        let stale = text.replacen("\"code_fp\":", "\"code_fp\":1", 1);
        std::fs::write(cache.dir().join("00000000000000ff.json"), stale).unwrap();
        // A corrupt entry and a leftover temp file.
        std::fs::write(cache.dir().join("00000000000000fe.json"), "{trunc").unwrap();
        std::fs::write(cache.dir().join(".tmp-1-2-dead"), "junk").unwrap();
        let report = cache.gc().unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed, 3, "stale + corrupt + temp");
        assert!(report.bytes_reclaimed > 0);
        assert!(cache.lookup(key).is_some(), "live entry survives gc");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn gc_of_missing_directory_is_empty() {
        let cache = ResultCache::new(temp_dir("missing"));
        assert_eq!(cache.gc().unwrap(), GcReport::default());
    }
}
