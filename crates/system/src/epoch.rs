//! The conservative parallel discrete-event engine ("epoch engine").
//!
//! Each node — core, workload thread, private L1I/L1D/L2 arrays, RCA —
//! becomes a **logical process** (LP) with its own completion-event
//! sub-queue. Time is divided into epochs of length
//! [`LatencyModel::epoch_lookahead`](cgct_interconnect::LatencyModel::epoch_lookahead)
//! (one bus clock for the paper machine): within an epoch's *parallel
//! phase*, every LP advances its local clock independently, answering
//! only node-local L1 hits; any access that needs the shared coherence
//! engine is *deferred*. At the epoch barrier, a single thread runs the
//! *serial phase*: all deferred requests execute through the unmodified
//! atomic-bus engine in a canonical order — `(issue time, node, arrival
//! seq)` — with each request's issue-time `now`, so latencies, bus
//! arbitration, snoops, RCA updates, metrics, perturbation draws,
//! tracing, and the sanitizer all behave exactly as if one thread had
//! interleaved the nodes in that order.
//!
//! This makes the engine deterministic **by construction**: nothing a
//! worker thread does in the parallel phase touches shared state, and
//! everything order-sensitive happens serially in an order derived only
//! from simulated time and node index — never from OS scheduling. The
//! artifacts of a `CGCT_INTRA_JOBS=8` run are byte-identical to
//! `--intra-serial` (this engine on one worker); see
//! `tests/intra_parallel_determinism.rs` and the "Concurrency &
//! determinism model" chapter of DESIGN.md for why the lookahead is
//! safe for MOESI × region snooping.
//!
//! The engine is an explicitly documented *model variant*: deferring a
//! miss to the epoch barrier quantizes its issue into the bus-clock
//! grid (the request still executes with its original issue time, but
//! its *answer* reaches the core at the barrier), so its results differ
//! slightly — and validly — from the legacy engine's. The default
//! (`CGCT_INTRA_JOBS` unset) remains the legacy engine, and every
//! pre-existing artifact and test is unaffected.

use crate::machine::Machine;
use crate::memsys::{MemorySystem, Node};
use cgct_cache::{Addr, Geometry};
use cgct_cpu::{Core, MemAttempt, MemoryInterface, UopSource};
use cgct_interconnect::{CoreId, MemEvent};
use cgct_sim::hash::{StableHashMap, StableHashSet};
use cgct_sim::pool::EpochGate;
use cgct_sim::{Cycle, EventQueue};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Which core-facing request a deferred op re-executes at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKind {
    Ifetch,
    Load,
    Store,
    Dcbz,
}

/// One memory access deferred from the parallel phase to the serial
/// phase, carrying everything needed to replay it verbatim.
#[derive(Debug, Clone, Copy)]
struct DeferredOp {
    /// The LP-local cycle the core attempted the access.
    t: Cycle,
    /// Arrival order within this LP and epoch (tie-break after time).
    seq: u64,
    kind: OpKind,
    addr: Addr,
    store_intent: bool,
    /// Line key (dedupe handle shared with `outstanding`/`ready`).
    line: u64,
}

/// Persistent per-LP epoch-engine state. Lives on the [`Machine`]
/// across `run_until` phases so responses produced at the end of warmup
/// are still consumable when measurement starts.
#[derive(Debug, Default)]
pub(crate) struct LpState {
    /// Ops deferred this epoch, in attempt order (drained each barrier).
    deferred: Vec<DeferredOp>,
    /// Arrival counter feeding [`DeferredOp::seq`].
    next_seq: u64,
    /// Keys currently deferred and not yet answered: a repeat attempt
    /// to the same key blocks without re-deferring.
    outstanding: StableHashSet<(OpKind, u64)>,
    /// Barrier answers awaiting their retry, FIFO per key.
    ready: StableHashMap<(OpKind, u64), VecDeque<Cycle>>,
    /// This LP's completion-event sub-queue (the shard of the machine's
    /// central queue holding events its own requests scheduled).
    subq: EventQueue<MemEvent>,
    /// Sub-queue deliveries not yet folded into the shared total.
    delivered: u64,
}

impl LpState {
    fn new() -> LpState {
        LpState::default()
    }
}

/// One logical process: everything a worker may touch in the parallel
/// phase. The node is `Option` because the serial phase lends it back
/// to the [`MemorySystem`] while deferred requests run.
struct LpSlot {
    core: Core,
    thread: Box<dyn UopSource + Send>,
    node: Option<Node>,
    st: LpState,
    /// LP-local clock (within `[epoch start, epoch end]`).
    now: Cycle,
    /// The core's last reported wakeup.
    wakeup: Cycle,
    finished: bool,
    /// The cycle after the finishing tick (valid once `finished`).
    finish: Cycle,
}

/// The [`MemoryInterface`] an LP's core sees during the parallel phase:
/// answers barrier responses and node-local L1 hits, defers everything
/// else. Touches nothing outside the LP.
struct LpPort<'a> {
    node: &'a mut Node,
    st: &'a mut LpState,
    geom: Geometry,
    /// Retry horizon for blocked attempts: the current epoch's end,
    /// when the serial phase will have answered.
    retry: Cycle,
}

impl LpPort<'_> {
    fn attempt(&mut self, kind: OpKind, now: Cycle, addr: Addr, store_intent: bool) -> MemAttempt {
        let line = self.geom.line_of(addr);
        let key = (kind, line.0);
        // 1. A pending barrier answer must be consumed *before* the L1
        //    probe: the serial phase filled the L1, so probing first
        //    would turn the modeled miss into a free hit and leak the
        //    response.
        if let Some(q) = self.st.ready.get_mut(&key) {
            if let Some(done) = q.pop_front() {
                if q.is_empty() {
                    self.st.ready.remove(&key);
                }
                return MemAttempt::Done(done.max(now + 1));
            }
        }
        // 2. Node-local fast path — exactly the first probe of the
        //    corresponding MemorySystem method, metrics- and RNG-free.
        let hit = match kind {
            OpKind::Ifetch => self.node.l1i_hit(line),
            OpKind::Load => self.node.l1d_load_hit(line),
            OpKind::Store => self.node.l1d_store_hit_modified(line),
            // dcbz has no L1 fast path in the atomic-bus engine either.
            OpKind::Dcbz => false,
        };
        if hit {
            return MemAttempt::Done(now + 1);
        }
        // 3. Defer to the serial phase, once per key per answer.
        if self.st.outstanding.insert(key) {
            let seq = self.st.next_seq;
            self.st.next_seq += 1;
            self.st.deferred.push(DeferredOp {
                t: now,
                seq,
                kind,
                addr,
                store_intent,
                line: line.0,
            });
        }
        MemAttempt::Blocked(self.retry)
    }
}

impl MemoryInterface for LpPort<'_> {
    fn ifetch(&mut self, _now: Cycle, _addr: Addr) -> Cycle {
        unreachable!("the core only calls try_* on an epoch-engine port")
    }
    fn load(&mut self, _now: Cycle, _addr: Addr, _store_intent: bool) -> Cycle {
        unreachable!("the core only calls try_* on an epoch-engine port")
    }
    fn store(&mut self, _now: Cycle, _addr: Addr) -> Cycle {
        unreachable!("the core only calls try_* on an epoch-engine port")
    }
    fn dcbz(&mut self, _now: Cycle, _addr: Addr) -> Cycle {
        unreachable!("the core only calls try_* on an epoch-engine port")
    }
    fn try_ifetch(&mut self, now: Cycle, addr: Addr) -> MemAttempt {
        self.attempt(OpKind::Ifetch, now, addr, false)
    }
    fn try_load(&mut self, now: Cycle, addr: Addr, store_intent: bool) -> MemAttempt {
        self.attempt(OpKind::Load, now, addr, store_intent)
    }
    fn try_store(&mut self, now: Cycle, addr: Addr) -> MemAttempt {
        self.attempt(OpKind::Store, now, addr, false)
    }
    fn try_dcbz(&mut self, now: Cycle, addr: Addr) -> MemAttempt {
        self.attempt(OpKind::Dcbz, now, addr, false)
    }
}

/// Advances one LP through the parallel phase of the epoch ending at
/// `e`. Mirrors the legacy `run_until` loop per-LP: tick when due, jump
/// the local clock to `min(wakeup, own sub-queue)` under cycle
/// skipping, deliver due sub-queue events, stop at the epoch end (or
/// when the commit target is reached).
fn advance_lp(slot: &mut LpSlot, e: Cycle, target: u64, cycle_skip: bool, geom: Geometry) {
    if slot.finished {
        return;
    }
    while slot.now < e {
        if !cycle_skip || slot.wakeup <= slot.now {
            let mut port = LpPort {
                // cgct-lint: allow(D006) LP node-lending discipline: between epochs the serial phase owns every node; absence is an engine bug, fail-stop
                node: slot.node.as_mut().expect("node lent to the serial phase"),
                st: &mut slot.st,
                geom,
                retry: e,
            };
            let w = slot.core.tick(slot.now, &mut port, &mut *slot.thread);
            slot.wakeup = w.0;
            if slot.core.committed() >= target {
                slot.finished = true;
                slot.finish = slot.now + 1;
                return;
            }
        }
        let mut next = slot.now.0 + 1;
        if cycle_skip {
            if slot.wakeup.0 > next {
                next = slot.wakeup.0;
            }
            if let Some(tq) = slot.st.subq.next_time() {
                next = next.min(tq.0.max(slot.now.0 + 1));
            }
        }
        slot.now = Cycle(next.min(e.0));
        while slot.st.subq.pop_due(slot.now).is_some() {
            slot.st.delivered += 1;
        }
    }
}

/// The serial coherence phase at the epoch barrier: lends every node
/// back to the memory system, replays all deferred requests through the
/// unmodified atomic-bus engine in `(time, node, seq)` order — swapping
/// the central event queue with each requester's sub-queue around its
/// call so scheduled events land where the requester's clock delivers
/// them — then lends the nodes back out.
fn serial_phase(mem: &mut MemorySystem, guards: &mut [MutexGuard<'_, LpSlot>], epoch_end: Cycle) {
    let mut ops: Vec<(usize, DeferredOp)> = Vec::new();
    for (i, g) in guards.iter_mut().enumerate() {
        ops.extend(g.st.deferred.drain(..).map(|op| (i, op)));
        g.st.next_seq = 0;
    }
    if !ops.is_empty() {
        ops.sort_by_key(|&(lp, op)| (op.t, lp, op.seq));
        let nodes: Vec<Node> = guards
            .iter_mut()
            // cgct-lint: allow(D006) LP node-lending discipline: between epochs the serial phase owns every node; absence is an engine bug, fail-stop
            .map(|g| g.node.take().expect("node already lent"))
            .collect();
        mem.put_nodes(nodes);
        for (lp, op) in ops {
            let g = &mut guards[lp];
            mem.swap_events(&mut g.st.subq);
            let done = match op.kind {
                OpKind::Ifetch => mem.ifetch(CoreId(lp), op.t, op.addr),
                OpKind::Load => mem.load(CoreId(lp), op.t, op.addr, op.store_intent),
                OpKind::Store => mem.store(CoreId(lp), op.t, op.addr),
                OpKind::Dcbz => mem.dcbz(CoreId(lp), op.t, op.addr),
            };
            mem.swap_events(&mut g.st.subq);
            let key = (op.kind, op.line);
            g.st.outstanding.remove(&key);
            g.st.ready.entry(key).or_default().push_back(done);
        }
        let nodes = mem.take_nodes();
        for (g, node) in guards.iter_mut().zip(nodes) {
            g.node = Some(node);
        }
    }
    // The central queue is normally empty in epoch mode (every request
    // runs with a sub-queue swapped in), but a machine that previously
    // ran the legacy engine may still hold events there.
    mem.advance(epoch_end);
}

/// Where the next epoch starts: normally at this epoch's end, but when
/// every unfinished LP is provably idle past it (no wakeup, no
/// sub-queue event, and therefore no deferred answer pending — a
/// blocked core's wakeup is the epoch end itself), jump straight to the
/// earliest thing that can happen. Pure function of LP state, so the
/// decision is identical at any worker count.
fn next_epoch_start(
    e: Cycle,
    guards: &[MutexGuard<'_, LpSlot>],
    cycle_skip: bool,
    max_cycles: u64,
) -> Cycle {
    if !cycle_skip {
        return e;
    }
    let mut min_due = u64::MAX;
    for g in guards.iter() {
        if g.finished {
            continue;
        }
        min_due = min_due.min(g.wakeup.0);
        if let Some(tq) = g.st.subq.next_time() {
            min_due = min_due.min(tq.0);
        }
    }
    if min_due == u64::MAX || min_due <= e.0 {
        e
    } else {
        Cycle(min_due.min(max_cycles))
    }
}

/// The epoch engine's `run_until`: runs cores until each has committed
/// `committed_target` instructions or `max_cycles` is reached
/// (exclusive cap, like the legacy loop). `workers` must be >= 1;
/// worker 1 handles LPs `0, workers, 2*workers, ...` — the caller's
/// thread is worker 0 and also coordinates the barriers.
pub(crate) fn run_until_epochs(
    m: &mut Machine,
    committed_target: u64,
    max_cycles: u64,
    workers: usize,
) -> bool {
    let n = m.cores.len();
    if n == 0 {
        return false;
    }
    let lookahead = {
        let cfg = m.mem.config();
        cfg.latency.epoch_lookahead(&cfg.topology).max(1)
    };
    let geom = m.mem.geometry();
    let cycle_skip = m.cycle_skip;
    if m.intra_lps.len() != n {
        m.intra_lps = (0..n).map(|_| LpState::new()).collect();
    }

    // Move each LP's private state into a lockable slot. Locks are
    // uncontended by construction (worker w only touches LPs with
    // index % workers == w; the coordinator takes all of them only
    // while workers are parked at the barrier) — they exist to make
    // the sharing pattern checkable by the type system.
    let start = m.now;
    let cores = std::mem::take(&mut m.cores);
    let threads = std::mem::take(&mut m.threads);
    let states = std::mem::take(&mut m.intra_lps);
    let nodes = m.mem.take_nodes();
    let slots: Vec<Mutex<LpSlot>> = cores
        .into_iter()
        .zip(threads)
        .zip(states)
        .zip(nodes)
        .enumerate()
        .map(|(i, (((core, thread), st), node))| {
            let finished = core.committed() >= committed_target;
            Mutex::new(LpSlot {
                core,
                thread,
                node: Some(node),
                st,
                now: start,
                wakeup: m.wakeups[i],
                finished,
                finish: start,
            })
        })
        .collect();

    let workers = workers.min(n).max(1);
    let mut truncated = false;
    if workers == 1 {
        // Serial epoch engine (`--intra-serial`): same algorithm on the
        // calling thread, no worker threads, no barriers.
        let mut guards: Vec<MutexGuard<'_, LpSlot>> =
            // cgct-lint: allow(D006) lock poisoning only follows a worker panic, which already aborted the run; propagating it is correct
            slots.iter().map(|s| s.lock().expect("lp slot")).collect();
        let mut t = start;
        loop {
            if guards.iter().all(|g| g.finished) {
                break;
            }
            if t.0 >= max_cycles {
                truncated = true;
                break;
            }
            let e = Cycle((t.0 + lookahead).min(max_cycles));
            for g in guards.iter_mut() {
                advance_lp(g, e, committed_target, cycle_skip, geom);
            }
            serial_phase(&mut m.mem, &mut guards, e);
            t = next_epoch_start(e, &guards, cycle_skip, max_cycles);
        }
    } else {
        let gate_parallel = EpochGate::new(workers);
        let gate_serial = EpochGate::new(workers);
        let epoch_end = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let slots_ref = &slots;
        let mem = &mut m.mem;
        std::thread::scope(|scope| {
            for w in 1..workers {
                let (gate_parallel, gate_serial) = (&gate_parallel, &gate_serial);
                let (epoch_end, done) = (&epoch_end, &done);
                // cgct-lint: allow(D003) the epoch engine's scoped workers ARE the intra-run determinism mechanism: barrier-synchronized, results merged in LP index order, byte-identical at any CGCT_INTRA_JOBS (ci.sh A/B smoke)
                scope.spawn(move || loop {
                    // Wait for the coordinator to open the epoch.
                    gate_serial.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let e = Cycle(epoch_end.load(Ordering::Acquire));
                    for i in (w..slots_ref.len()).step_by(workers) {
                        // cgct-lint: allow(D006) lock poisoning only follows a worker panic, which already aborted the run; propagating it is correct
                        let mut g = slots_ref[i].lock().expect("lp slot");
                        advance_lp(&mut g, e, committed_target, cycle_skip, geom);
                    }
                    gate_parallel.wait();
                });
            }
            // Coordinator = worker 0, on the calling thread.
            let mut t = start;
            loop {
                let all_done = slots_ref
                    .iter()
                    // cgct-lint: allow(D006) lock poisoning only follows a worker panic, which already aborted the run; propagating it is correct
                    .all(|s| s.lock().expect("lp slot").finished);
                if all_done || t.0 >= max_cycles {
                    truncated = !all_done;
                    done.store(true, Ordering::Release);
                    gate_serial.wait(); // release workers into the exit check
                    break;
                }
                let e = Cycle((t.0 + lookahead).min(max_cycles));
                epoch_end.store(e.0, Ordering::Release);
                gate_serial.wait(); // open the epoch
                for i in (0..slots_ref.len()).step_by(workers) {
                    // cgct-lint: allow(D006) lock poisoning only follows a worker panic, which already aborted the run; propagating it is correct
                    let mut g = slots_ref[i].lock().expect("lp slot");
                    advance_lp(&mut g, e, committed_target, cycle_skip, geom);
                }
                gate_parallel.wait(); // all parallel phases complete
                let mut guards: Vec<MutexGuard<'_, LpSlot>> = slots_ref
                    .iter()
                    // cgct-lint: allow(D006) lock poisoning only follows a worker panic, which already aborted the run; propagating it is correct
                    .map(|s| s.lock().expect("lp slot"))
                    .collect();
                serial_phase(mem, &mut guards, e);
                t = next_epoch_start(e, &guards, cycle_skip, max_cycles);
            }
        });
    }

    // Move everything back into the machine, in node order.
    let mut final_now = start;
    let mut nodes = Vec::with_capacity(n);
    let mut states = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        // cgct-lint: allow(D006) lock poisoning only follows a worker panic, which already aborted the run; propagating it is correct
        let mut s = slot.into_inner().expect("lp slot");
        m.wakeups[i] = s.wakeup;
        if s.finished {
            final_now = final_now.max(s.finish);
        }
        // cgct-lint: allow(D006) LP node-lending discipline: between epochs the serial phase owns every node; absence is an engine bug, fail-stop
        nodes.push(s.node.take().expect("node returns with its LP"));
        m.mem.add_events_delivered(s.st.delivered);
        s.st.delivered = 0;
        states.push(s.st);
        m.cores.push(s.core);
        m.threads.push(s.thread);
    }
    m.mem.put_nodes(nodes);
    m.intra_lps = states;
    m.now = if truncated {
        Cycle(max_cycles)
    } else {
        final_now
    };
    truncated
}
