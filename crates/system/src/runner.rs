//! Multi-seed experiment runner.
//!
//! The paper averages several perturbed runs per benchmark and reports
//! 95% confidence intervals (§4). [`run_averaged`] does the same,
//! fanning seeds out across the deterministic thread pool
//! ([`cgct_sim::pool`]). The unit of scheduling is a [`WorkItem`] — a
//! `(benchmark, configuration, seed)` triple executed by a pure
//! function — so results never depend on which worker ran what.

use crate::config::SystemConfig;
use crate::machine::{Machine, RunResult};
use cgct_sim::{pool, RunningStats};
use cgct_workloads::BenchmarkSpec;

/// How much work one experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPlan {
    /// Cache-warming instructions per core before measurement starts.
    pub warmup_per_core: u64,
    /// Instructions each core must commit during measurement.
    pub instructions_per_core: u64,
    /// Hard cycle cap (guards against pathological configurations).
    pub max_cycles: u64,
    /// Number of perturbed runs to average.
    pub runs: u64,
    /// Base seed; run *i* uses `base_seed + i`.
    pub base_seed: u64,
}

impl RunPlan {
    /// A quick plan for tests and smoke runs.
    pub fn smoke() -> Self {
        RunPlan {
            warmup_per_core: 2_000,
            instructions_per_core: 5_000,
            max_cycles: 5_000_000,
            runs: 2,
            base_seed: 1,
        }
    }

    /// The default evaluation plan used by the benchmark harness.
    pub fn evaluation() -> Self {
        RunPlan {
            warmup_per_core: 250_000,
            instructions_per_core: 150_000,
            max_cycles: 80_000_000,
            runs: 4,
            base_seed: 1,
        }
    }

    /// The root seed for perturbed run `run` of this plan.
    ///
    /// This is a pure function of the plan and the run index (run *i*
    /// uses `base_seed + i`, the scheme the committed `results/*.json`
    /// were generated with), so a [`WorkItem`] carries its seed from
    /// the moment the work list is built — worker identity and
    /// completion order can never leak into it. The seed becomes the
    /// root of the machine's [`cgct_sim::SeedSequence`], from which
    /// every per-component stream is derived. Keeping the same seed
    /// for run *i* across coherence modes is load-bearing: speedup
    /// confidence intervals pair baseline and CGCT runs by seed.
    pub fn seed_for(&self, run: u64) -> u64 {
        self.base_seed + run
    }
}

/// One independent cell of an experiment sweep: a benchmark under a
/// fully-adjusted configuration at one perturbation seed.
///
/// Executing a `WorkItem` is a pure function — the same item yields the
/// same [`RunResult`] regardless of the thread that runs it or the
/// order items complete in — which is what lets the pool collect
/// results out of order and merge them canonically.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The benchmark to run.
    pub spec: BenchmarkSpec,
    /// The system configuration (mode, topology, ablation toggles).
    pub cfg: SystemConfig,
    /// Root seed for this item's `SeedSequence` (see
    /// [`RunPlan::seed_for`]).
    pub seed: u64,
}

impl WorkItem {
    /// A human-readable `benchmark/mode#seed` tag for progress lines
    /// and `timing.json`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}#s{}",
            self.spec.name,
            self.cfg.mode.label(),
            self.seed
        )
    }

    /// Runs the item to completion under `plan`.
    pub fn execute(&self, plan: &RunPlan) -> RunResult {
        run_once(&self.cfg, &self.spec, self.seed, plan)
    }

    /// The item's content address under `plan` (see
    /// [`crate::resultcache::cache_key`]).
    pub fn cache_key(&self, plan: &RunPlan) -> u64 {
        crate::resultcache::cache_key(&self.cfg, &self.spec, self.seed, plan)
    }

    /// Runs the item through the process-global result cache, if one is
    /// installed ([`crate::resultcache::install_from_env`]): a hit
    /// returns the stored result without simulating; a miss simulates
    /// and populates the cache. The returned flag records whether this
    /// was a hit. Without an installed cache this is exactly
    /// [`WorkItem::execute`].
    pub fn execute_cached(&self, plan: &RunPlan) -> (RunResult, bool) {
        let Some(cache) = crate::resultcache::global() else {
            return (self.execute(plan), false);
        };
        let key = self.cache_key(plan);
        if let Some(result) = cache.lookup(key) {
            return (result, true);
        }
        let result = self.execute(plan);
        cache.store(key, &result);
        (result, false)
    }
}

/// Mean/CI aggregation of several perturbed runs of one configuration.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Mode label.
    pub mode: String,
    /// Runtime in cycles across runs.
    pub runtime: RunningStats,
    /// Fraction of requests that avoided a broadcast.
    pub avoided_fraction: RunningStats,
    /// Oracle-unnecessary fraction (meaningful for baseline runs).
    pub unnecessary_fraction: RunningStats,
    /// Average broadcasts per traffic window.
    pub avg_traffic: RunningStats,
    /// Peak broadcasts in any window.
    pub peak_traffic: RunningStats,
    /// L2 miss ratio.
    pub l2_miss_ratio: RunningStats,
    /// The individual runs.
    pub runs: Vec<RunResult>,
}

impl AggregateResult {
    /// Folds per-seed runs into mean/CI statistics. The fold order is
    /// the order of `runs`, so callers must pass runs in ascending
    /// seed-index order for bit-identical aggregates across worker
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn from_runs(runs: Vec<RunResult>) -> AggregateResult {
        let mut agg = AggregateResult {
            benchmark: runs[0].benchmark.clone(),
            mode: runs[0].mode.clone(),
            runtime: RunningStats::new(),
            avoided_fraction: RunningStats::new(),
            unnecessary_fraction: RunningStats::new(),
            avg_traffic: RunningStats::new(),
            peak_traffic: RunningStats::new(),
            l2_miss_ratio: RunningStats::new(),
            runs: Vec::new(),
        };
        for r in &runs {
            agg.runtime.push(r.runtime_cycles as f64);
            agg.avoided_fraction.push(r.metrics.avoided_fraction());
            agg.unnecessary_fraction
                .push(r.metrics.unnecessary_fraction());
            agg.avg_traffic.push(r.metrics.avg_traffic());
            agg.peak_traffic.push(r.metrics.peak_traffic() as f64);
            agg.l2_miss_ratio.push(r.metrics.l2_miss_ratio());
        }
        agg.runs = runs;
        agg
    }

    /// Mean runtime in cycles.
    pub fn mean_runtime(&self) -> f64 {
        self.runtime.mean()
    }
}

/// Runs one seed of one configuration.
pub fn run_once(cfg: &SystemConfig, spec: &BenchmarkSpec, seed: u64, plan: &RunPlan) -> RunResult {
    let mut machine = Machine::new(cfg.clone(), spec, seed);
    machine.run_warmed(
        plan.warmup_per_core,
        plan.instructions_per_core,
        plan.max_cycles,
    )
}

/// [`run_once`] through the process-global result cache (see
/// [`WorkItem::execute_cached`]); the flag records a cache hit.
pub fn run_once_cached(
    cfg: &SystemConfig,
    spec: &BenchmarkSpec,
    seed: u64,
    plan: &RunPlan,
) -> (RunResult, bool) {
    WorkItem {
        spec: spec.clone(),
        cfg: cfg.clone(),
        seed,
    }
    .execute_cached(plan)
}

/// Runs `plan.runs` perturbed seeds of one configuration on the
/// deterministic pool (worker count from `CGCT_JOBS` or the machine's
/// available parallelism) and aggregates them in seed order.
///
/// # Panics
///
/// Panics if `plan.runs` is zero or a worker thread panics.
pub fn run_averaged(cfg: &SystemConfig, spec: &BenchmarkSpec, plan: &RunPlan) -> AggregateResult {
    assert!(plan.runs > 0, "need at least one run");
    let items: Vec<WorkItem> = (0..plan.runs)
        .map(|i| WorkItem {
            spec: spec.clone(),
            cfg: cfg.clone(),
            seed: plan.seed_for(i),
        })
        .collect();
    let results = pool::run(items, |_, item| item.execute(plan));
    AggregateResult::from_runs(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceMode;
    use cgct_workloads::by_name;

    #[test]
    fn averaged_runs_aggregate() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = by_name("specint2000rate").unwrap();
        let plan = RunPlan {
            warmup_per_core: 500,
            instructions_per_core: 2_000,
            max_cycles: 2_000_000,
            runs: 2,
            base_seed: 10,
        };
        let agg = run_averaged(&cfg, &spec, &plan);
        assert_eq!(agg.runs.len(), 2);
        assert_eq!(agg.runtime.count(), 2);
        assert!(agg.mean_runtime() > 0.0);
        assert!(agg.unnecessary_fraction.mean() > 0.0);
        // Perturbation makes the runs differ.
        assert!(agg.runs[0].runtime_cycles != agg.runs[1].runtime_cycles);
    }

    #[test]
    fn run_once_is_reproducible() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = by_name("barnes").unwrap();
        let plan = RunPlan {
            warmup_per_core: 0,
            instructions_per_core: 1_500,
            max_cycles: 2_000_000,
            runs: 1,
            base_seed: 3,
        };
        let a = run_once(&cfg, &spec, 3, &plan);
        let b = run_once(&cfg, &spec, 3, &plan);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.metrics.broadcasts, b.metrics.broadcasts);
    }

    #[test]
    fn work_item_is_pure_and_labeled() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        let spec = by_name("barnes").unwrap();
        let plan = RunPlan {
            warmup_per_core: 0,
            instructions_per_core: 1_000,
            max_cycles: 1_000_000,
            runs: 1,
            base_seed: 4,
        };
        let item = WorkItem {
            spec,
            cfg,
            seed: plan.seed_for(0),
        };
        assert_eq!(item.seed, 4);
        assert_eq!(item.label(), "barnes/cgct-512B#s4");
        let a = item.execute(&plan);
        let b = item.execute(&plan);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
    }

    #[test]
    fn seeds_are_item_derived_and_mode_independent() {
        let plan = RunPlan::smoke();
        // The same run index maps to the same seed whatever the mode —
        // speedup CIs pair baseline/CGCT runs by seed.
        assert_eq!(plan.seed_for(0), plan.base_seed);
        assert_eq!(plan.seed_for(3), plan.base_seed + 3);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = by_name("barnes").unwrap();
        let plan = RunPlan {
            warmup_per_core: 0,
            instructions_per_core: 100,
            max_cycles: 1000,
            runs: 0,
            base_seed: 0,
        };
        let _ = run_averaged(&cfg, &spec, &plan);
    }
}
