//! Multi-seed experiment runner.
//!
//! The paper averages several perturbed runs per benchmark and reports
//! 95% confidence intervals (§4). [`run_averaged`] does the same, fanning
//! seeds out across OS threads.

use crate::config::SystemConfig;
use crate::machine::{Machine, RunResult};
use cgct_sim::RunningStats;
use cgct_workloads::BenchmarkSpec;

/// How much work one experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPlan {
    /// Cache-warming instructions per core before measurement starts.
    pub warmup_per_core: u64,
    /// Instructions each core must commit during measurement.
    pub instructions_per_core: u64,
    /// Hard cycle cap (guards against pathological configurations).
    pub max_cycles: u64,
    /// Number of perturbed runs to average.
    pub runs: u64,
    /// Base seed; run *i* uses `base_seed + i`.
    pub base_seed: u64,
}

impl RunPlan {
    /// A quick plan for tests and smoke runs.
    pub fn smoke() -> Self {
        RunPlan {
            warmup_per_core: 2_000,
            instructions_per_core: 5_000,
            max_cycles: 5_000_000,
            runs: 2,
            base_seed: 1,
        }
    }

    /// The default evaluation plan used by the benchmark harness.
    pub fn evaluation() -> Self {
        RunPlan {
            warmup_per_core: 250_000,
            instructions_per_core: 150_000,
            max_cycles: 80_000_000,
            runs: 4,
            base_seed: 1,
        }
    }
}

/// Mean/CI aggregation of several perturbed runs of one configuration.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Mode label.
    pub mode: String,
    /// Runtime in cycles across runs.
    pub runtime: RunningStats,
    /// Fraction of requests that avoided a broadcast.
    pub avoided_fraction: RunningStats,
    /// Oracle-unnecessary fraction (meaningful for baseline runs).
    pub unnecessary_fraction: RunningStats,
    /// Average broadcasts per traffic window.
    pub avg_traffic: RunningStats,
    /// Peak broadcasts in any window.
    pub peak_traffic: RunningStats,
    /// L2 miss ratio.
    pub l2_miss_ratio: RunningStats,
    /// The individual runs.
    pub runs: Vec<RunResult>,
}

impl AggregateResult {
    fn from_runs(runs: Vec<RunResult>) -> AggregateResult {
        let mut agg = AggregateResult {
            benchmark: runs[0].benchmark.clone(),
            mode: runs[0].mode.clone(),
            runtime: RunningStats::new(),
            avoided_fraction: RunningStats::new(),
            unnecessary_fraction: RunningStats::new(),
            avg_traffic: RunningStats::new(),
            peak_traffic: RunningStats::new(),
            l2_miss_ratio: RunningStats::new(),
            runs: Vec::new(),
        };
        for r in &runs {
            agg.runtime.push(r.runtime_cycles as f64);
            agg.avoided_fraction.push(r.metrics.avoided_fraction());
            agg.unnecessary_fraction
                .push(r.metrics.unnecessary_fraction());
            agg.avg_traffic.push(r.metrics.avg_traffic());
            agg.peak_traffic.push(r.metrics.peak_traffic() as f64);
            agg.l2_miss_ratio.push(r.metrics.l2_miss_ratio());
        }
        agg.runs = runs;
        agg
    }

    /// Mean runtime in cycles.
    pub fn mean_runtime(&self) -> f64 {
        self.runtime.mean()
    }
}

/// Runs one seed of one configuration.
pub fn run_once(cfg: &SystemConfig, spec: &BenchmarkSpec, seed: u64, plan: &RunPlan) -> RunResult {
    let mut machine = Machine::new(cfg.clone(), spec, seed);
    machine.run_warmed(
        plan.warmup_per_core,
        plan.instructions_per_core,
        plan.max_cycles,
    )
}

/// Runs `plan.runs` perturbed seeds of one configuration in parallel and
/// aggregates them.
///
/// # Panics
///
/// Panics if `plan.runs` is zero or a worker thread panics.
pub fn run_averaged(cfg: &SystemConfig, spec: &BenchmarkSpec, plan: &RunPlan) -> AggregateResult {
    assert!(plan.runs > 0, "need at least one run");
    let results: Vec<RunResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.runs)
            .map(|i| {
                let cfg = cfg.clone();
                let spec = spec.clone();
                let plan = *plan;
                scope.spawn(move || run_once(&cfg, &spec, plan.base_seed + i, &plan))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run thread panicked"))
            .collect()
    });
    AggregateResult::from_runs(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceMode;
    use cgct_workloads::by_name;

    #[test]
    fn averaged_runs_aggregate() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = by_name("specint2000rate").unwrap();
        let plan = RunPlan {
            warmup_per_core: 500,
            instructions_per_core: 2_000,
            max_cycles: 2_000_000,
            runs: 2,
            base_seed: 10,
        };
        let agg = run_averaged(&cfg, &spec, &plan);
        assert_eq!(agg.runs.len(), 2);
        assert_eq!(agg.runtime.count(), 2);
        assert!(agg.mean_runtime() > 0.0);
        assert!(agg.unnecessary_fraction.mean() > 0.0);
        // Perturbation makes the runs differ.
        assert!(agg.runs[0].runtime_cycles != agg.runs[1].runtime_cycles);
    }

    #[test]
    fn run_once_is_reproducible() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = by_name("barnes").unwrap();
        let plan = RunPlan {
            warmup_per_core: 0,
            instructions_per_core: 1_500,
            max_cycles: 2_000_000,
            runs: 1,
            base_seed: 3,
        };
        let a = run_once(&cfg, &spec, 3, &plan);
        let b = run_once(&cfg, &spec, 3, &plan);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.metrics.broadcasts, b.metrics.broadcasts);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let spec = by_name("barnes").unwrap();
        let plan = RunPlan {
            warmup_per_core: 0,
            instructions_per_core: 100,
            max_cycles: 1000,
            runs: 0,
            base_seed: 0,
        };
        let _ = run_averaged(&cfg, &spec, &plan);
    }
}
