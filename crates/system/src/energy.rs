//! Interconnect/memory-system energy accounting (§6 future work).
//!
//! The paper's conclusions note that CGCT should save power "by reducing
//! network activity \[17\], tag array lookups \[15, 18\], and DRAM accesses",
//! while the added RCA logic "may cancel out some of that savings". This
//! module turns a run's event counts into a relative energy estimate so
//! the benchmark harness can quantify that trade-off.
//!
//! Energy weights are *relative units* in the spirit of the Jetty and
//! RegionScout evaluations (a broadcast costs every other processor a tag
//! lookup; a DRAM access costs roughly an order of magnitude more than an
//! SRAM lookup; the RCA lookup is charged on every local request and
//! every observed snoop). Absolute joules would require a technology
//! model the paper does not provide.
//!
//! All weights and accumulated totals are exact integers in
//! **milli-units** (one tag lookup = 1000), so energy accounting obeys
//! the same determinism discipline as every other accumulator in the
//! tree: order-independent, byte-stable, no floating-point drift.

use crate::metrics::MemMetrics;

/// Relative energy cost per event, in milli-units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyModel {
    /// One cache tag-array lookup (charged at every snooped processor for
    /// every broadcast).
    pub tag_lookup_milli: u64,
    /// Driving one request across the broadcast address network.
    pub bus_broadcast_milli: u64,
    /// One point-to-point direct request packet.
    pub direct_request_milli: u64,
    /// One critical-word data transfer over the data network.
    pub data_transfer_milli: u64,
    /// One DRAM access (demand fill, write-back, or wasted speculation).
    pub dram_access_milli: u64,
    /// One RCA lookup (local request check or external snoop check) —
    /// the overhead CGCT adds.
    pub rca_lookup_milli: u64,
    /// One Jetty filter query (a few small SRAM arrays).
    pub jetty_lookup_milli: u64,
}

impl EnergyModel {
    /// Default relative weights: tag lookup 1; broadcast 4 (long global
    /// wires); direct request 1 (point-to-point); data transfer 4;
    /// DRAM access 20; RCA lookup 0.5 (a small tag array, ~6% of the
    /// cache per Table 2); Jetty query 0.1.
    pub fn default_weights() -> Self {
        EnergyModel {
            tag_lookup_milli: 1000,
            bus_broadcast_milli: 4000,
            direct_request_milli: 1000,
            data_transfer_milli: 4000,
            dram_access_milli: 20_000,
            rca_lookup_milli: 500,
            jetty_lookup_milli: 100,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_weights()
    }
}

/// Energy attributed to each subsystem for one run, in relative
/// milli-units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyBreakdown {
    /// Cache tag lookups induced by snooping other processors' requests.
    pub snoop_tag_lookups_milli: u64,
    /// Address-network broadcast energy.
    pub bus_milli: u64,
    /// Direct-request packet energy.
    pub direct_milli: u64,
    /// Data-network transfer energy.
    pub data_milli: u64,
    /// DRAM access energy (fills + write-backs + wasted speculation).
    pub dram_milli: u64,
    /// RCA lookup overhead (zero for the baseline).
    pub rca_overhead_milli: u64,
    /// Jetty filter query overhead (zero without the filter).
    pub jetty_overhead_milli: u64,
}

impl EnergyBreakdown {
    /// Total energy across subsystems, in milli-units.
    pub fn total_milli(&self) -> u64 {
        self.snoop_tag_lookups_milli
            + self.bus_milli
            + self.direct_milli
            + self.data_milli
            + self.dram_milli
            + self.rca_overhead_milli
            + self.jetty_overhead_milli
    }
}

/// Estimates the energy of a run from its metrics.
///
/// `snoopers` is the number of *other* processors that look up their tags
/// on each broadcast (paper machine: 3). `has_rca` charges the RCA lookup
/// overhead on every local request and every observed broadcast.
///
/// # Examples
///
/// ```
/// use cgct_system::energy::{energy_of, EnergyModel};
/// use cgct_system::MemMetrics;
///
/// let m = MemMetrics::new(100_000);
/// let e = energy_of(&m, 3, false, &EnergyModel::default_weights());
/// assert_eq!(e.total_milli(), 0);
/// ```
pub fn energy_of(
    metrics: &MemMetrics,
    snoopers: usize,
    has_rca: bool,
    model: &EnergyModel,
) -> EnergyBreakdown {
    let broadcasts = metrics.broadcasts;
    let direct = metrics.direct.total();
    // Prefer the exact per-snooper lookup counts (which reflect any Jetty
    // filtering); fall back to broadcasts x snoopers for hand-assembled
    // metrics.
    let tag_lookups = if metrics.snooped_tag_lookups + metrics.jetty_filtered_lookups > 0 {
        metrics.snooped_tag_lookups
    } else {
        broadcasts * snoopers as u64
    };
    let jetty_queries = metrics.snooped_tag_lookups + metrics.jetty_filtered_lookups;
    let jetty_active = metrics.jetty_filtered_lookups > 0;
    let dram_accesses =
        metrics.memory_fills + metrics.requests.writeback + metrics.dram_speculation_wasted;
    let transfers = metrics.memory_fills + metrics.cache_to_cache;
    let rca_lookups = if has_rca {
        // Every local coherence-point request checks the RCA, and every
        // observed broadcast snoops it at each other processor.
        metrics.requests.total() + broadcasts * snoopers as u64
    } else {
        0
    };
    EnergyBreakdown {
        snoop_tag_lookups_milli: tag_lookups * model.tag_lookup_milli,
        bus_milli: broadcasts * model.bus_broadcast_milli,
        direct_milli: direct * model.direct_request_milli,
        data_milli: transfers * model.data_transfer_milli,
        dram_milli: dram_accesses * model.dram_access_milli,
        rca_overhead_milli: rca_lookups * model.rca_lookup_milli,
        jetty_overhead_milli: if jetty_active {
            jetty_queries * model.jetty_lookup_milli
        } else {
            0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RequestCategory;

    fn metrics_with(broadcasts: u64, direct: u64, fills: u64, wbs: u64, c2c: u64) -> MemMetrics {
        let mut m = MemMetrics::new(100_000);
        m.broadcasts = broadcasts;
        for _ in 0..direct {
            m.direct.record(RequestCategory::DataReadWrite);
        }
        m.memory_fills = fills;
        for _ in 0..wbs {
            m.requests.record(RequestCategory::Writeback);
        }
        m.cache_to_cache = c2c;
        m
    }

    #[test]
    fn baseline_charges_no_rca_overhead() {
        let m = metrics_with(100, 0, 80, 10, 20);
        let e = energy_of(&m, 3, false, &EnergyModel::default_weights());
        assert_eq!(e.rca_overhead_milli, 0);
        assert!(e.snoop_tag_lookups_milli > 0 && e.bus_milli > 0 && e.dram_milli > 0);
    }

    #[test]
    fn avoided_broadcasts_save_tag_and_bus_energy() {
        let w = EnergyModel::default_weights();
        let baseline = energy_of(&metrics_with(100, 0, 80, 10, 20), 3, false, &w);
        // CGCT: 40 broadcasts became direct requests; same data movement.
        let cgct = energy_of(&metrics_with(60, 40, 80, 10, 20), 3, true, &w);
        assert!(
            cgct.snoop_tag_lookups_milli < baseline.snoop_tag_lookups_milli,
            "fewer snooped lookups"
        );
        assert!(cgct.bus_milli < baseline.bus_milli);
        assert!(
            cgct.rca_overhead_milli > 0,
            "the RCA itself costs something"
        );
        assert!(
            cgct.total_milli() < baseline.total_milli(),
            "net win: {} vs {}",
            cgct.total_milli(),
            baseline.total_milli()
        );
    }

    #[test]
    fn wasted_dram_speculation_costs_energy() {
        let w = EnergyModel::default_weights();
        let mut a = metrics_with(10, 0, 5, 0, 5);
        let b = {
            let mut b = metrics_with(10, 0, 5, 0, 5);
            b.dram_speculation_wasted = 5;
            b
        };
        a.dram_speculation_wasted = 0;
        let ea = energy_of(&a, 3, false, &w);
        let eb = energy_of(&b, 3, false, &w);
        assert!(eb.dram_milli > ea.dram_milli);
        assert_eq!(eb.dram_milli - ea.dram_milli, 5 * w.dram_access_milli);
    }

    #[test]
    fn scaling_with_snooper_count() {
        let w = EnergyModel::default_weights();
        let m = metrics_with(100, 0, 0, 0, 0);
        let four = energy_of(&m, 3, false, &w);
        let sixteen = energy_of(&m, 15, false, &w);
        assert_eq!(
            sixteen.snoop_tag_lookups_milli,
            5 * four.snoop_tag_lookups_milli
        );
    }

    #[test]
    fn integer_weights_match_paper_relative_costs() {
        // The milli-unit weights are exactly 1000x the documented
        // relative costs (1, 4, 1, 4, 20, 0.5, 0.1).
        let w = EnergyModel::default_weights();
        assert_eq!(w.tag_lookup_milli, 1000);
        assert_eq!(w.dram_access_milli, 20 * w.tag_lookup_milli);
        assert_eq!(w.rca_lookup_milli * 2, w.tag_lookup_milli);
        assert_eq!(w.jetty_lookup_milli * 10, w.tag_lookup_milli);
    }
}
