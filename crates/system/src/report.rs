//! Markdown rendering for experiment results.
//!
//! These renderers produce the tables written into `EXPERIMENTS.md` by
//! the `experiments` binary in `cgct-bench`.

use crate::experiments::{Fig10Row, Fig2Row, Fig7Row, RcaStatsRow, SpeedupRow};
use cgct::StorageModel;
use cgct_interconnect::{DistanceClass, LatencyModel};
use std::fmt::Write;

/// Renders a markdown table.
///
/// # Examples
///
/// ```
/// use cgct_system::report::markdown_table;
/// let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
/// assert!(t.contains("| a | b |"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Figure 2 table: unnecessary broadcasts by category.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                pct(r.data),
                pct(r.writeback),
                pct(r.ifetch),
                pct(r.dcb),
                pct(r.total()),
            ]
        })
        .collect();
    let avg: f64 = rows.iter().map(|r| r.total()).sum::<f64>() / rows.len().max(1) as f64;
    format!(
        "{}\nAverage unnecessary: **{}** (paper: 67% average, 15-94% range)\n",
        markdown_table(
            &[
                "benchmark",
                "data r/w",
                "write-backs",
                "ifetches",
                "DCB ops",
                "total"
            ],
            &body
        ),
        pct(avg)
    )
}

/// Figure 7 table: oracle opportunity vs broadcasts avoided by CGCT.
pub fn render_fig7(rows: &[Fig7Row], region_sizes: &[u64]) -> String {
    let mut headers: Vec<String> = vec!["benchmark".into(), "oracle".into()];
    for rs in region_sizes {
        headers.push(format!("avoided {rs}B"));
        headers.push(format!("captured {rs}B"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.benchmark.clone(), pct(r.oracle)];
            for rs in region_sizes {
                let avoided = r.avoided[rs];
                row.push(pct(avoided));
                let captured = if r.oracle > 0.0 {
                    avoided / r.oracle
                } else {
                    0.0
                };
                row.push(pct(captured));
            }
            row
        })
        .collect();
    markdown_table(&headers_ref, &body)
}

/// Figure 8 / Figure 9 table: runtime reduction per configuration.
pub fn render_speedups(rows: &[SpeedupRow], labels: &[String]) -> String {
    let mut headers: Vec<String> = vec!["benchmark".into()];
    for l in labels {
        headers.push(format!("{l} reduction"));
        headers.push(format!("{l} 95% CI"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.benchmark.clone()];
            for l in labels {
                let (mean, ci) = &r.reduction_pct[l];
                row.push(format!("{mean:.1}%"));
                row.push(format!("[{:.1}%, {:.1}%]", ci.low, ci.high));
            }
            row
        })
        .collect();
    markdown_table(&headers_ref, &body)
}

/// Figure 10 table: average/peak broadcast traffic per window.
pub fn render_fig10(rows: &[Fig10Row], window: u64) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.0}", r.base_avg),
                format!("{:.0}", r.base_peak),
                format!("{:.0}", r.cgct_avg),
                format!("{:.0}", r.cgct_peak),
            ]
        })
        .collect();
    format!(
        "Broadcasts per {window} cycles:\n\n{}",
        markdown_table(
            &[
                "benchmark",
                "base avg",
                "base peak",
                "cgct-512B avg",
                "cgct-512B peak"
            ],
            &body
        )
    )
}

/// §3.2 / §5.2 RCA statistics table.
pub fn render_rca_stats(rows: &[RcaStatsRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                pct(r.evicted_empty),
                pct(r.evicted_one),
                pct(r.evicted_two),
                format!("{:.2}", r.mean_lines_per_region),
                format!("{:+.1}%", r.miss_ratio_increase * 100.0),
                format!("{:.0}", r.self_invalidations_per_mreq),
            ]
        })
        .collect();
    markdown_table(
        &[
            "benchmark",
            "evicted empty",
            "evicted 1 line",
            "evicted 2 lines",
            "mean lines/region",
            "L2 miss-ratio delta",
            "self-inval / Mreq",
        ],
        &body,
    )
}

/// Table 2 (storage overhead) — analytic, matches the paper exactly.
pub fn render_table2(model: &StorageModel) -> String {
    let body: Vec<Vec<String>> = model
        .table2()
        .iter()
        .map(|r| {
            vec![
                format!("{}K entries, {}B regions", r.entries / 1024, r.region_bytes),
                r.tag_bits.to_string(),
                r.state_bits.to_string(),
                r.line_count_bits.to_string(),
                r.mc_id_bits.to_string(),
                r.lru_bits.to_string(),
                r.ecc_bits.to_string(),
                r.total_bits.to_string(),
                format!("{:.1}%", r.tag_space_overhead * 100.0),
                format!("{:.1}%", r.cache_space_overhead * 100.0),
            ]
        })
        .collect();
    markdown_table(
        &[
            "configuration",
            "tag (x2)",
            "state (x2)",
            "line count (x2)",
            "MC id (x2)",
            "LRU",
            "ECC",
            "total bits",
            "tag-space overhead",
            "cache-space overhead",
        ],
        &body,
    )
}

/// Figure 6 (memory request latency scenarios) — analytic.
pub fn render_fig6(lat: &LatencyModel) -> String {
    let name = |d: DistanceClass| match d {
        DistanceClass::SameChip => "own memory",
        DistanceClass::SameSwitch => "same data switch",
        DistanceClass::SameBoard => "same board",
        DistanceClass::Remote => "remote",
    };
    let body: Vec<Vec<String>> = DistanceClass::ALL
        .iter()
        .map(|&d| {
            vec![
                name(d).to_string(),
                format!(
                    "{} cpu ({} sys)",
                    lat.snoop_memory_access(d),
                    lat.snoop_memory_access(d) / 10
                ),
                format!(
                    "{} cpu (~{} sys)",
                    lat.direct_memory_access(d),
                    (lat.direct_memory_access(d) + 5) / 10
                ),
                format!("{} cpu", lat.cache_to_cache(d)),
                format!("{}", lat.direct_advantage(d)),
            ]
        })
        .collect();
    markdown_table(
        &[
            "memory location",
            "snooped access",
            "direct access",
            "cache-to-cache",
            "direct advantage (cpu)",
        ],
        &body,
    )
}

/// Table 1 (region protocol states).
pub fn render_table1() -> String {
    use cgct::RegionState;
    use cgct_cache::ReqKind;
    let body: Vec<Vec<String>> = RegionState::ALL
        .iter()
        .map(|&s| {
            let bcast = match (
                s.permission(ReqKind::Read),
                s.permission(ReqKind::ReadShared),
            ) {
                (cgct::RegionPermission::Broadcast, cgct::RegionPermission::Broadcast) => "Yes",
                (cgct::RegionPermission::Broadcast, _) => "For modifiable copy",
                _ => "No",
            };
            vec![
                s.mnemonic().to_string(),
                match s.local() {
                    None => "No cached copies".into(),
                    Some(cgct::LocalPart::Clean) => "Unmodified copies only".into(),
                    Some(cgct::LocalPart::Dirty) => "May have modified copies".into(),
                },
                match s.external() {
                    None => "Unknown".into(),
                    Some(cgct::ExternalPart::Invalid) => "No cached copies".into(),
                    Some(cgct::ExternalPart::Clean) => "Unmodified copies only".into(),
                    Some(cgct::ExternalPart::Dirty) => "May have modified copies".into(),
                },
                bcast.to_string(),
            ]
        })
        .collect();
    markdown_table(
        &[
            "state",
            "processor",
            "other processors",
            "broadcast needed?",
        ],
        &body,
    )
}

/// Renders a labeled horizontal ASCII bar chart (terminal-friendly
/// companion to the markdown tables).
///
/// # Examples
///
/// ```
/// use cgct_system::report::ascii_bars;
/// let chart = ascii_bars(&[("a".into(), 0.5), ("b".into(), 1.0)], 10);
/// assert!(chart.contains("a"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn ascii_bars(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:<label_w$} |{}{} {value:.1}",
            "█".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        );
    }
    out
}

/// Renders the live progress line the parallel experiment runner
/// prints to stderr: items done/total, elapsed seconds, throughput,
/// and the remaining-time estimate extrapolated from the mean rate.
///
/// # Examples
///
/// ```
/// use cgct_system::report::progress_line;
/// let line = progress_line(10, 40, 5.0);
/// assert_eq!(line, "10/40 items | 5s elapsed | 2.0 items/s | ETA 15s");
/// assert_eq!(progress_line(0, 40, 0.0), "0/40 items | 0s elapsed");
/// ```
pub fn progress_line(done: usize, total: usize, elapsed_secs: f64) -> String {
    let mut line = format!("{done}/{total} items | {elapsed_secs:.0}s elapsed");
    if done > 0 && elapsed_secs > 0.0 {
        let rate = done as f64 / elapsed_secs;
        let eta = (total.saturating_sub(done)) as f64 / rate;
        let _ = write!(line, " | {rate:.1} items/s | ETA {eta:.0}s");
    }
    line
}

/// Renders the slowest work items of a run as a markdown table —
/// the human-readable companion to `results/timing.json`.
pub fn render_timing(timings: &[(String, f64)], top: usize) -> String {
    let total: f64 = timings.iter().map(|(_, s)| s).sum();
    let mut sorted: Vec<&(String, f64)> = timings.iter().collect();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    let body: Vec<Vec<String>> = sorted
        .iter()
        .take(top)
        .map(|(label, secs)| {
            vec![
                label.clone(),
                format!("{secs:.2}s"),
                format!("{:.1}%", 100.0 * secs / total.max(f64::MIN_POSITIVE)),
            ]
        })
        .collect();
    format!(
        "{} items, {total:.1}s of work; slowest {}:\n\n{}",
        timings.len(),
        body.len(),
        markdown_table(&["item", "wall time", "share"], &body)
    )
}

/// A paired-series ASCII chart: baseline vs CGCT per benchmark.
pub fn ascii_paired(rows: &[(String, f64, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .flat_map(|(_, a, b)| [*a, *b])
        .fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, base, cgct) in rows {
        let bar = |v: f64| {
            let filled = if max > 0.0 {
                ((v / max) * width as f64).round() as usize
            } else {
                0
            };
            "█".repeat(filled.min(width))
        };
        let _ = writeln!(out, "{label:<label_w$} base |{} {base:.0}", bar(*base));
        let _ = writeln!(out, "{:label_w$} cgct |{} {cgct:.0}", "", bar(*cgct));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("---"));
    }

    #[test]
    fn table1_renders_seven_states() {
        let t = render_table1();
        for s in [
            "| I |", "| CI |", "| CC |", "| CD |", "| DI |", "| DC |", "| DD |",
        ] {
            assert!(t.contains(s), "missing {s} in\n{t}");
        }
        assert!(t.contains("For modifiable copy"));
    }

    #[test]
    fn table2_renders_paper_totals() {
        let t = render_table2(&StorageModel::paper_default());
        assert!(t.contains("| 76 |"));
        assert!(t.contains("| 71 |"));
        assert!(t.contains("5.9%"));
    }

    #[test]
    fn ascii_bars_scale_to_max() {
        let chart = ascii_bars(&[("x".into(), 2.0), ("yy".into(), 4.0)], 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        // The max value fills the full width.
        assert!(lines[1].contains(&"█".repeat(8)));
        // Labels are padded to equal width.
        assert!(lines[0].starts_with("x  |") || lines[0].starts_with("x "));
    }

    #[test]
    fn ascii_bars_handle_all_zero() {
        let chart = ascii_bars(&[("a".into(), 0.0)], 5);
        assert!(chart.contains("0.0"));
    }

    #[test]
    fn ascii_paired_emits_two_lines_per_row() {
        let chart = ascii_paired(&[("b".into(), 10.0, 5.0)], 10);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains("base"));
        assert!(chart.contains("cgct"));
    }

    #[test]
    fn progress_line_reports_rate_and_eta() {
        assert_eq!(
            progress_line(25, 100, 50.0),
            "25/100 items | 50s elapsed | 0.5 items/s | ETA 150s"
        );
        // Before the first completion there is no rate to extrapolate.
        assert_eq!(progress_line(0, 100, 2.0), "0/100 items | 2s elapsed");
        // Finished runs never report a negative ETA.
        assert!(progress_line(100, 100, 50.0).ends_with("ETA 0s"));
    }

    #[test]
    fn render_timing_sorts_by_cost() {
        let t = render_timing(&[("fast".into(), 1.0), ("slow".into(), 3.0)], 10);
        assert!(t.contains("2 items, 4.0s of work"));
        let slow_at = t.find("| slow |").unwrap();
        let fast_at = t.find("| fast |").unwrap();
        assert!(slow_at < fast_at, "slowest item must come first:\n{t}");
        assert!(t.contains("75.0%"));
    }

    #[test]
    fn fig6_renders_scenarios() {
        let t = render_fig6(&LatencyModel::paper_default());
        assert!(t.contains("own memory"));
        assert!(t.contains("250 cpu (25 sys)"));
        assert!(t.contains("181 cpu (~18 sys)"));
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::experiments::{Fig10Row, Fig2Row, Fig7Row, SpeedupRow};
    use cgct_sim::ConfidenceInterval;
    use std::collections::BTreeMap;

    #[test]
    fn fig2_renders_rows_and_average() {
        let rows = vec![Fig2Row {
            benchmark: "ocean".into(),
            data: 0.5,
            writeback: 0.1,
            ifetch: 0.05,
            dcb: 0.0,
        }];
        let t = render_fig2(&rows);
        assert!(t.contains("| ocean |"));
        assert!(t.contains("65.0%")); // total
        assert!(t.contains("Average unnecessary"));
    }

    #[test]
    fn fig7_renders_capture_rates() {
        let mut avoided = BTreeMap::new();
        avoided.insert(512u64, 0.4);
        let rows = vec![Fig7Row {
            benchmark: "tpc-w".into(),
            oracle: 0.8,
            avoided,
        }];
        let t = render_fig7(&rows, &[512]);
        assert!(t.contains("| tpc-w | 80.0% | 40.0% | 50.0% |"));
    }

    #[test]
    fn speedups_render_with_cis() {
        let mut reduction = BTreeMap::new();
        reduction.insert(
            "cgct-512B".to_string(),
            (
                8.8,
                ConfidenceInterval {
                    low: 8.0,
                    high: 9.6,
                },
            ),
        );
        let rows = vec![SpeedupRow {
            benchmark: "barnes".into(),
            reduction_pct: reduction,
        }];
        let t = render_speedups(&rows, &["cgct-512B".to_string()]);
        assert!(t.contains("8.8%"));
        assert!(t.contains("[8.0%, 9.6%]"));
    }

    #[test]
    fn fig10_renders_traffic_pairs() {
        let rows = vec![Fig10Row {
            benchmark: "tpc-b".into(),
            base_avg: 2573.0,
            base_peak: 7365.0,
            cgct_avg: 1103.0,
            cgct_peak: 2683.0,
        }];
        let t = render_fig10(&rows, 100_000);
        assert!(t.contains("| tpc-b | 2573 | 7365 | 1103 | 2683 |"));
        assert!(t.contains("100000 cycles"));
    }
}
