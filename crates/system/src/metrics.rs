//! Metrics behind the paper's figures: request/broadcast accounting by
//! category (Figure 2/7), traffic-per-interval (Figure 10), latency and
//! RCA behaviour (§3.2, §5.2).

use cgct_cache::ReqKind;
use cgct_sim::{Cycle, IntStats, IntervalTracker};

/// Figure 2's request categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestCategory {
    /// Ordinary reads and writes (including prefetches) of data.
    DataReadWrite,
    /// Write-backs of dirty lines.
    Writeback,
    /// Instruction fetches.
    Ifetch,
    /// Data-cache-block operations (DCBZ etc.).
    DcbOp,
}

impl RequestCategory {
    /// The category a request kind reports under. Instruction fetches are
    /// the only `ReadShared` issuers in this system.
    pub fn of(req: ReqKind) -> RequestCategory {
        match req {
            ReqKind::ReadShared => RequestCategory::Ifetch,
            ReqKind::Writeback => RequestCategory::Writeback,
            ReqKind::Dcbz => RequestCategory::DcbOp,
            ReqKind::Read | ReqKind::ReadExclusive | ReqKind::Upgrade => {
                RequestCategory::DataReadWrite
            }
        }
    }

    /// All categories in Figure 2's stacking order.
    pub const ALL: [RequestCategory; 4] = [
        RequestCategory::DataReadWrite,
        RequestCategory::Writeback,
        RequestCategory::Ifetch,
        RequestCategory::DcbOp,
    ];
}

/// Per-category request counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// Reads/writes/upgrades/prefetches.
    pub data: u64,
    /// Write-backs.
    pub writeback: u64,
    /// Instruction fetches.
    pub ifetch: u64,
    /// DCB operations.
    pub dcb: u64,
}

impl RequestBreakdown {
    /// Adds one event in `category`.
    pub fn record(&mut self, category: RequestCategory) {
        match category {
            RequestCategory::DataReadWrite => self.data += 1,
            RequestCategory::Writeback => self.writeback += 1,
            RequestCategory::Ifetch => self.ifetch += 1,
            RequestCategory::DcbOp => self.dcb += 1,
        }
    }

    /// Count for `category`.
    pub fn get(&self, category: RequestCategory) -> u64 {
        match category {
            RequestCategory::DataReadWrite => self.data,
            RequestCategory::Writeback => self.writeback,
            RequestCategory::Ifetch => self.ifetch,
            RequestCategory::DcbOp => self.dcb,
        }
    }

    /// Sum over categories.
    pub fn total(&self) -> u64 {
        self.data + self.writeback + self.ifetch + self.dcb
    }
}

/// Memory-system metrics for one run.
#[derive(Debug, Clone)]
pub struct MemMetrics {
    /// All coherence-point requests (what the baseline would broadcast).
    pub requests: RequestBreakdown,
    /// Requests actually broadcast.
    pub broadcasts: u64,
    /// Requests sent directly to a memory controller.
    pub direct: RequestBreakdown,
    /// Requests completed with no external request at all.
    pub local: RequestBreakdown,
    /// Oracle-unnecessary broadcasts by category (Figure 2; measured on
    /// what was actually broadcast).
    pub unnecessary: RequestBreakdown,
    /// Broadcast traffic over time (Figure 10).
    pub traffic: IntervalTracker,
    /// Cache-to-cache transfers served by owners.
    pub cache_to_cache: u64,
    /// Demand fills served from memory.
    pub memory_fills: u64,
    /// Demand (non-prefetch) data request latency, accumulated exactly
    /// in milli-cycles.
    pub demand_latency: IntStats,
    /// L2 demand accesses and misses (for miss-ratio impact, §3.2).
    pub l2_accesses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// Lines flushed from the cache to keep RCA inclusion (§3.2).
    pub inclusion_flushes: u64,
    /// Prefetches issued into the memory system.
    pub prefetches: u64,
    /// Prefetches suppressed by the region-state filter (§6 extension).
    pub prefetches_filtered: u64,
    /// Speculative DRAM accesses started alongside a snoop that turned
    /// out to be wasted (the owner cache supplied the data).
    pub dram_speculation_wasted: u64,
    /// Speculative DRAM accesses avoided by the region-state predictor
    /// (§6 extension).
    pub dram_speculation_saved: u64,
    /// Tag-array lookups performed at snooped processors.
    pub snooped_tag_lookups: u64,
    /// Snoop-induced tag lookups skipped by the Jetty filter.
    pub jetty_filtered_lookups: u64,
    /// Reads satisfied point-to-point by a predicted owner without a
    /// broadcast (§6 extension).
    pub owner_prediction_hits: u64,
    /// Owner-prediction probes that missed and fell back to a broadcast.
    pub owner_prediction_misses: u64,
    /// Sampled lines per valid region (§5.2's 2.8–5 range), accumulated
    /// exactly in milli-lines.
    pub lines_per_region_samples: IntStats,
    /// Directory modes: full home-directory DRAM lookups performed.
    pub dir_lookups: u64,
    /// Directory modes: home-directory lookups skipped because the
    /// requester's RCA or the home's region-grain directory cache
    /// proved the region non-shared.
    pub dir_bypasses: u64,
    /// Directory modes: owner-forwarded (three-hop) transfers.
    pub three_hop_transfers: u64,
    /// Hierarchical mode: broadcast-class requests resolved without
    /// leaving the requester's cluster.
    pub cluster_local_requests: u64,
    /// Hierarchical mode: broadcast-class requests that visited at
    /// least one other cluster.
    pub cross_cluster_requests: u64,
    /// Hierarchical mode: cross-cluster snoop deliveries avoided by the
    /// inter-cluster region directory (one per cluster skipped per
    /// request) — the "interconnect hops saved" of the scalability
    /// figure.
    pub cluster_snoops_filtered: u64,
}

impl MemMetrics {
    /// Creates empty metrics with the given traffic window.
    pub fn new(traffic_window: u64) -> Self {
        MemMetrics {
            requests: RequestBreakdown::default(),
            broadcasts: 0,
            direct: RequestBreakdown::default(),
            local: RequestBreakdown::default(),
            unnecessary: RequestBreakdown::default(),
            traffic: IntervalTracker::new(traffic_window),
            cache_to_cache: 0,
            memory_fills: 0,
            demand_latency: IntStats::new(),
            l2_accesses: 0,
            l2_misses: 0,
            inclusion_flushes: 0,
            prefetches: 0,
            prefetches_filtered: 0,
            dram_speculation_wasted: 0,
            dram_speculation_saved: 0,
            snooped_tag_lookups: 0,
            jetty_filtered_lookups: 0,
            owner_prediction_hits: 0,
            owner_prediction_misses: 0,
            lines_per_region_samples: IntStats::new(),
            dir_lookups: 0,
            dir_bypasses: 0,
            three_hop_transfers: 0,
            cluster_local_requests: 0,
            cross_cluster_requests: 0,
            cluster_snoops_filtered: 0,
        }
    }

    /// Fraction of home-directory consultations resolved without a DRAM
    /// directory lookup (the scalability figure's "bypass rate").
    pub fn dir_bypass_fraction(&self) -> f64 {
        let total = self.dir_lookups + self.dir_bypasses;
        if total == 0 {
            0.0
        } else {
            self.dir_bypasses as f64 / total as f64
        }
    }

    /// Fraction of all requests that avoided a broadcast (direct + local).
    pub fn avoided_fraction(&self) -> f64 {
        let avoided = self.direct.total() + self.local.total();
        if self.requests.total() == 0 {
            0.0
        } else {
            avoided as f64 / self.requests.total() as f64
        }
    }

    /// Fraction of all requests whose broadcast the oracle deems
    /// unnecessary (Figure 2's bars, when measured on a baseline run).
    pub fn unnecessary_fraction(&self) -> f64 {
        if self.requests.total() == 0 {
            0.0
        } else {
            self.unnecessary.total() as f64 / self.requests.total() as f64
        }
    }

    /// L2 demand miss ratio.
    pub fn l2_miss_ratio(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// Broadcasts per `window` cycles, averaged over the run.
    pub fn avg_traffic(&self) -> f64 {
        self.traffic.average_per_window()
    }

    /// Peak broadcasts in any window.
    pub fn peak_traffic(&self) -> u64 {
        self.traffic.peak()
    }

    /// Closes interval tracking at the end of a run.
    pub fn finish(&mut self, end: Cycle) {
        self.traffic.finish(end);
    }
}

impl cgct_sim::Snap for RequestBreakdown {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("data", Json::u64(self.data)),
            ("writeback", Json::u64(self.writeback)),
            ("ifetch", Json::u64(self.ifetch)),
            ("dcb", Json::u64(self.dcb)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(RequestBreakdown {
            data: unsnap_field(v, "data")?,
            writeback: unsnap_field(v, "writeback")?,
            ifetch: unsnap_field(v, "ifetch")?,
            dcb: unsnap_field(v, "dcb")?,
        })
    }
}

impl cgct_sim::Snap for MemMetrics {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("requests", self.requests.snap()),
            ("broadcasts", Json::u64(self.broadcasts)),
            ("direct", self.direct.snap()),
            ("local", self.local.snap()),
            ("unnecessary", self.unnecessary.snap()),
            ("traffic", self.traffic.snap()),
            ("cache_to_cache", Json::u64(self.cache_to_cache)),
            ("memory_fills", Json::u64(self.memory_fills)),
            ("demand_latency", self.demand_latency.snap()),
            ("l2_accesses", Json::u64(self.l2_accesses)),
            ("l2_misses", Json::u64(self.l2_misses)),
            ("inclusion_flushes", Json::u64(self.inclusion_flushes)),
            ("prefetches", Json::u64(self.prefetches)),
            ("prefetches_filtered", Json::u64(self.prefetches_filtered)),
            (
                "dram_speculation_wasted",
                Json::u64(self.dram_speculation_wasted),
            ),
            (
                "dram_speculation_saved",
                Json::u64(self.dram_speculation_saved),
            ),
            ("snooped_tag_lookups", Json::u64(self.snooped_tag_lookups)),
            (
                "jetty_filtered_lookups",
                Json::u64(self.jetty_filtered_lookups),
            ),
            (
                "owner_prediction_hits",
                Json::u64(self.owner_prediction_hits),
            ),
            (
                "owner_prediction_misses",
                Json::u64(self.owner_prediction_misses),
            ),
            (
                "lines_per_region_samples",
                self.lines_per_region_samples.snap(),
            ),
            ("dir_lookups", Json::u64(self.dir_lookups)),
            ("dir_bypasses", Json::u64(self.dir_bypasses)),
            ("three_hop_transfers", Json::u64(self.three_hop_transfers)),
            (
                "cluster_local_requests",
                Json::u64(self.cluster_local_requests),
            ),
            (
                "cross_cluster_requests",
                Json::u64(self.cross_cluster_requests),
            ),
            (
                "cluster_snoops_filtered",
                Json::u64(self.cluster_snoops_filtered),
            ),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(MemMetrics {
            requests: unsnap_field(v, "requests")?,
            broadcasts: unsnap_field(v, "broadcasts")?,
            direct: unsnap_field(v, "direct")?,
            local: unsnap_field(v, "local")?,
            unnecessary: unsnap_field(v, "unnecessary")?,
            traffic: unsnap_field(v, "traffic")?,
            cache_to_cache: unsnap_field(v, "cache_to_cache")?,
            memory_fills: unsnap_field(v, "memory_fills")?,
            demand_latency: unsnap_field(v, "demand_latency")?,
            l2_accesses: unsnap_field(v, "l2_accesses")?,
            l2_misses: unsnap_field(v, "l2_misses")?,
            inclusion_flushes: unsnap_field(v, "inclusion_flushes")?,
            prefetches: unsnap_field(v, "prefetches")?,
            prefetches_filtered: unsnap_field(v, "prefetches_filtered")?,
            dram_speculation_wasted: unsnap_field(v, "dram_speculation_wasted")?,
            dram_speculation_saved: unsnap_field(v, "dram_speculation_saved")?,
            snooped_tag_lookups: unsnap_field(v, "snooped_tag_lookups")?,
            jetty_filtered_lookups: unsnap_field(v, "jetty_filtered_lookups")?,
            owner_prediction_hits: unsnap_field(v, "owner_prediction_hits")?,
            owner_prediction_misses: unsnap_field(v, "owner_prediction_misses")?,
            lines_per_region_samples: unsnap_field(v, "lines_per_region_samples")?,
            dir_lookups: unsnap_field(v, "dir_lookups")?,
            dir_bypasses: unsnap_field(v, "dir_bypasses")?,
            three_hop_transfers: unsnap_field(v, "three_hop_transfers")?,
            cluster_local_requests: unsnap_field(v, "cluster_local_requests")?,
            cross_cluster_requests: unsnap_field(v, "cross_cluster_requests")?,
            cluster_snoops_filtered: unsnap_field(v, "cluster_snoops_filtered")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_of_request_kinds() {
        assert_eq!(
            RequestCategory::of(ReqKind::Read),
            RequestCategory::DataReadWrite
        );
        assert_eq!(
            RequestCategory::of(ReqKind::ReadExclusive),
            RequestCategory::DataReadWrite
        );
        assert_eq!(
            RequestCategory::of(ReqKind::Upgrade),
            RequestCategory::DataReadWrite
        );
        assert_eq!(
            RequestCategory::of(ReqKind::ReadShared),
            RequestCategory::Ifetch
        );
        assert_eq!(
            RequestCategory::of(ReqKind::Writeback),
            RequestCategory::Writeback
        );
        assert_eq!(RequestCategory::of(ReqKind::Dcbz), RequestCategory::DcbOp);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = RequestBreakdown::default();
        for c in RequestCategory::ALL {
            b.record(c);
            b.record(c);
        }
        assert_eq!(b.total(), 8);
        for c in RequestCategory::ALL {
            assert_eq!(b.get(c), 2);
        }
    }

    #[test]
    fn fractions() {
        let mut m = MemMetrics::new(1000);
        for _ in 0..10 {
            m.requests.record(RequestCategory::DataReadWrite);
        }
        m.direct.record(RequestCategory::DataReadWrite);
        m.local.record(RequestCategory::DataReadWrite);
        m.unnecessary.record(RequestCategory::DataReadWrite);
        assert!((m.avoided_fraction() - 0.2).abs() < 1e-12);
        assert!((m.unnecessary_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = MemMetrics::new(100);
        assert_eq!(m.avoided_fraction(), 0.0);
        assert_eq!(m.unnecessary_fraction(), 0.0);
        assert_eq!(m.l2_miss_ratio(), 0.0);
    }

    #[test]
    fn traffic_roundtrip() {
        let mut m = MemMetrics::new(100);
        for t in [0u64, 1, 2, 150] {
            m.traffic.record(Cycle(t));
        }
        m.finish(Cycle(200));
        assert_eq!(m.peak_traffic(), 3);
        assert!((m.avg_traffic() - 2.0).abs() < 1e-12);
    }
}
