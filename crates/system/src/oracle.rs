//! The oracle broadcast classifier behind Figure 2.
//!
//! For each broadcast, the simulator has perfect knowledge of every other
//! cache's state, so it can decide whether the broadcast was *necessary*:
//! whether any other processor actually had to see the request. The paper
//! reports that on average 67% (15–94% across workloads) of broadcasts are
//! unnecessary by this test.

use crate::metrics::RequestCategory;
use cgct_cache::{broadcast_unnecessary, LineSnoopResponse, ReqKind};

/// The oracle's verdict for one broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleVerdict {
    /// The broadcast was unnecessary: memory could have serviced the
    /// request directly without violating coherence.
    pub unnecessary: bool,
    /// The Figure 2 category the request reports under.
    pub category: RequestCategory,
}

/// Classifies one broadcast given the aggregated line snoop response
/// (which reflects the other caches' states *before* the request).
///
/// # Examples
///
/// ```
/// use cgct_system::classify;
/// use cgct_cache::{LineSnoopResponse, ReqKind};
///
/// // A read to a line nobody caches: broadcast wasted.
/// let v = classify(ReqKind::Read, LineSnoopResponse::default());
/// assert!(v.unnecessary);
///
/// // A read to a line modified elsewhere: the broadcast was required.
/// let dirty = LineSnoopResponse { shared: true, dirty: true, exclusive: false };
/// assert!(!classify(ReqKind::Read, dirty).unnecessary);
/// ```
pub fn classify(req: ReqKind, response: LineSnoopResponse) -> OracleVerdict {
    OracleVerdict {
        unnecessary: broadcast_unnecessary(req, response),
        category: RequestCategory::of(req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOBODY: LineSnoopResponse = LineSnoopResponse {
        shared: false,
        dirty: false,
        exclusive: false,
    };

    #[test]
    fn writebacks_always_unnecessary() {
        let dirty = LineSnoopResponse {
            shared: true,
            dirty: true,
            exclusive: false,
        };
        let v = classify(ReqKind::Writeback, dirty);
        assert!(v.unnecessary);
        assert_eq!(v.category, RequestCategory::Writeback);
    }

    #[test]
    fn ifetch_of_clean_shared_data_unnecessary() {
        let clean_shared = LineSnoopResponse {
            shared: true,
            dirty: false,
            exclusive: false,
        };
        let v = classify(ReqKind::ReadShared, clean_shared);
        assert!(v.unnecessary);
        assert_eq!(v.category, RequestCategory::Ifetch);
    }

    #[test]
    fn ifetch_of_possibly_dirty_data_necessary() {
        let e_held = LineSnoopResponse {
            shared: true,
            dirty: false,
            exclusive: true,
        };
        assert!(!classify(ReqKind::ReadShared, e_held).unnecessary);
    }

    #[test]
    fn unshared_data_requests_unnecessary() {
        for req in [
            ReqKind::Read,
            ReqKind::ReadExclusive,
            ReqKind::Upgrade,
            ReqKind::Dcbz,
        ] {
            let v = classify(req, NOBODY);
            assert!(v.unnecessary, "{req:?}");
        }
    }

    #[test]
    fn shared_data_requests_necessary() {
        let shared = LineSnoopResponse {
            shared: true,
            dirty: false,
            exclusive: false,
        };
        for req in [
            ReqKind::Read,
            ReqKind::ReadExclusive,
            ReqKind::Upgrade,
            ReqKind::Dcbz,
        ] {
            assert!(!classify(req, shared).unnecessary, "{req:?}");
        }
    }
}
