//! Deterministic mid-run checkpoint/resume for measured runs.
//!
//! [`CheckpointRun`] drives the same warmup → reset → measure sequence
//! as [`Machine::run_warmed`], but in caller-sized cycle segments with
//! a serializable pause between any two of them. Segmentation is
//! invisible to the simulation: the legacy run loop's stopping times
//! are a superset of its progress times, so running to a cycle
//! boundary, snapshotting, restoring, and continuing produces the
//! byte-identical trajectory — and therefore the byte-identical
//! [`RunResult`] — of an uninterrupted run (see
//! `tests/checkpoint_resume.rs`).
//!
//! A snapshot taken at the warmup boundary can also be *forked*:
//! resumed any number of times, optionally with a different
//! measurement quota per fork ([`CheckpointRun::override_measure`]),
//! so a sweep pays for cache warming once.

use crate::config::SystemConfig;
use crate::machine::{Machine, RunResult};
use cgct_sim::snap::{field, unsnap_field};
use cgct_sim::Json;
use cgct_workloads::BenchmarkSpec;

/// A measured run that can pause at cycle boundaries, serialize itself,
/// and resume — on this process or another — without perturbing the
/// simulated trajectory.
#[derive(Debug)]
pub struct CheckpointRun {
    machine: Machine,
    warmup: u64,
    instructions: u64,
    max_cycles: u64,
    truncated: bool,
    warmed: bool,
    done: bool,
}

impl CheckpointRun {
    /// Wraps `machine` in a resumable run of `warmup` then `instructions`
    /// instructions per core under a `max_cycles` cap (the same plan
    /// shape as [`Machine::run_warmed`]).
    ///
    /// The machine is forced onto the legacy engine — epoch-engine
    /// mid-run state is not serializable — and must not have run yet.
    ///
    /// # Errors
    ///
    /// Fails when tracing is on (traced runs are not checkpointable).
    pub fn new(
        mut machine: Machine,
        warmup: u64,
        instructions: u64,
        max_cycles: u64,
    ) -> Result<Self, String> {
        if machine.trace() {
            return Err("checkpointed runs cannot be traced".to_string());
        }
        machine.set_intra(None);
        Ok(CheckpointRun {
            machine,
            warmup,
            instructions,
            max_cycles,
            truncated: false,
            warmed: false,
            done: false,
        })
    }

    /// Advances the run by at most `cycles` simulated cycles (minimum
    /// one). Returns `true` once the run has completed — every core hit
    /// its quota or the cycle cap was reached — after which
    /// [`CheckpointRun::finish`] yields the result.
    pub fn step(&mut self, cycles: u64) -> bool {
        if self.done {
            return true;
        }
        let stop = self
            .machine
            .now()
            .0
            .saturating_add(cycles.max(1))
            .min(self.max_cycles);
        if !self.warmed {
            if self.warmup > 0 {
                let hit = self.machine.run_until(self.warmup, stop);
                if hit && self.machine.now().0 < self.max_cycles {
                    // Paused at the segment boundary mid-warmup.
                    return false;
                }
                self.truncated |= hit;
            }
            self.machine.mark_warmed();
            self.warmed = true;
        }
        let target = self.warmup + self.instructions;
        let hit = self.machine.run_until(target, stop);
        if hit && self.machine.now().0 < self.max_cycles {
            return false;
        }
        self.truncated |= hit;
        self.done = true;
        true
    }

    /// Whether the run has completed.
    pub fn done(&self) -> bool {
        self.done
    }

    /// The machine being driven (inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Closes out a completed run and returns its result — identical to
    /// what [`Machine::run_warmed`] would have returned uninterrupted.
    ///
    /// # Errors
    ///
    /// Fails if the run has not completed ([`CheckpointRun::step`]
    /// until it returns `true`).
    pub fn finish(mut self) -> Result<RunResult, String> {
        if !self.done {
            return Err("run has not completed; keep stepping".to_string());
        }
        Ok(self.machine.finish_run(self.truncated))
    }

    /// Replaces the measurement quota and cycle cap — the fork seam: a
    /// warmup-boundary snapshot resumed several times with different
    /// quotas yields several independently-sized measured runs from one
    /// paid-for warm state. Overriding *mid-measurement* still runs
    /// deterministically but no longer corresponds to any single
    /// uninterrupted plan.
    ///
    /// # Errors
    ///
    /// Fails once the run has completed.
    pub fn override_measure(&mut self, instructions: u64, max_cycles: u64) -> Result<(), String> {
        if self.done {
            return Err("run has already completed".to_string());
        }
        self.instructions = instructions;
        self.max_cycles = max_cycles;
        Ok(())
    }

    /// Serializes the paused run: the full machine snapshot plus the
    /// run-plan progress header.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::snapshot`] failures.
    pub fn snapshot(&self) -> Result<Json, String> {
        Ok(Json::obj([
            ("machine", self.machine.snapshot()?),
            (
                "run",
                Json::obj([
                    ("warmup", Json::u64(self.warmup)),
                    ("instructions", Json::u64(self.instructions)),
                    ("max_cycles", Json::u64(self.max_cycles)),
                    ("truncated", Json::Bool(self.truncated)),
                    ("warmed", Json::Bool(self.warmed)),
                    ("done", Json::Bool(self.done)),
                ]),
            ),
        ]))
    }

    /// Rebuilds a paused run from a [`CheckpointRun::snapshot`]. The
    /// configuration and spec must be the ones the snapshot was taken
    /// under ([`Machine::restore`] validates both, plus the seed stored
    /// in the snapshot).
    ///
    /// # Errors
    ///
    /// Fails on malformed input or any identity mismatch.
    pub fn resume(cfg: SystemConfig, spec: &BenchmarkSpec, v: &Json) -> Result<Self, String> {
        let mv = field(v, "machine")?;
        let seed: u64 = unsnap_field(mv, "seed")?;
        let mut machine = Machine::new(cfg, spec, seed);
        machine.set_trace(false);
        machine.set_intra(None);
        machine.restore(mv)?;
        let r = field(v, "run")?;
        Ok(CheckpointRun {
            machine,
            warmup: unsnap_field(r, "warmup")?,
            instructions: unsnap_field(r, "instructions")?,
            max_cycles: unsnap_field(r, "max_cycles")?,
            truncated: unsnap_field(r, "truncated")?,
            warmed: unsnap_field(r, "warmed")?,
            done: unsnap_field(r, "done")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceMode;
    use cgct_workloads::by_name;

    fn cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        cfg.perturbation = 0;
        cfg
    }

    fn machine(seed: u64) -> Machine {
        let mut m = Machine::new(cfg(), &by_name("ocean").unwrap(), seed);
        m.set_trace(false);
        m.set_intra(None);
        m
    }

    #[test]
    fn segmented_run_matches_uninterrupted() {
        let mut reference = machine(3);
        let expect = reference.run_warmed(500, 2000, 2_000_000);
        let mut run = CheckpointRun::new(machine(3), 500, 2000, 2_000_000).unwrap();
        let mut steps = 0;
        while !run.step(1000) {
            steps += 1;
            assert!(steps < 100_000, "run never completes");
        }
        assert!(steps > 2, "segments too coarse to exercise pausing");
        let got = run.finish().unwrap();
        assert_eq!(got.runtime_cycles, expect.runtime_cycles);
        assert_eq!(got.committed, expect.committed);
        assert_eq!(got.metrics.broadcasts, expect.metrics.broadcasts);
    }

    #[test]
    fn snapshot_resume_roundtrip_matches() {
        let mut reference = machine(9);
        let expect = reference.run_warmed(500, 2000, 2_000_000);
        let mut run = CheckpointRun::new(machine(9), 500, 2000, 2_000_000).unwrap();
        let mut result = None;
        for _ in 0..100_000 {
            if run.step(700) {
                result = Some(run.finish().unwrap());
                break;
            }
            // Serialize, discard the live run, resume from the bytes.
            let snap = run.snapshot().unwrap();
            let bytes = snap.dump();
            let parsed = Json::parse(&bytes).unwrap();
            run = CheckpointRun::resume(cfg(), &by_name("ocean").unwrap(), &parsed).unwrap();
        }
        let got = result.expect("run completed");
        assert_eq!(got.runtime_cycles, expect.runtime_cycles);
        assert_eq!(got.committed, expect.committed);
        assert_eq!(got.metrics.broadcasts, expect.metrics.broadcasts);
        assert_eq!(got.mem_events, expect.mem_events);
    }

    #[test]
    fn snapshot_is_idempotent_across_restore() {
        let mut run = CheckpointRun::new(machine(5), 500, 2000, 2_000_000).unwrap();
        assert!(!run.step(1500));
        let first = run.snapshot().unwrap().dump();
        let parsed = Json::parse(&first).unwrap();
        let resumed = CheckpointRun::resume(cfg(), &by_name("ocean").unwrap(), &parsed).unwrap();
        let second = resumed.snapshot().unwrap().dump();
        assert_eq!(first, second, "snapshot -> restore -> snapshot drifted");
    }

    #[test]
    fn resume_rejects_wrong_benchmark_and_config() {
        let mut run = CheckpointRun::new(machine(5), 500, 2000, 2_000_000).unwrap();
        assert!(!run.step(1000));
        let snap = run.snapshot().unwrap();
        let err = CheckpointRun::resume(cfg(), &by_name("barnes").unwrap(), &snap).unwrap_err();
        assert!(err.contains("benchmark"), "{err}");
        let mut other = cfg();
        other.perturbation = 7;
        let err = CheckpointRun::resume(other, &by_name("ocean").unwrap(), &snap).unwrap_err();
        assert!(err.contains("configuration"), "{err}");
    }
}
