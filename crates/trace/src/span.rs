//! Span assembly: folding raw trace events into per-request lifetimes.
//!
//! Every request that issues at the coherence point records an
//! [`EventKind::Issue`], zero or more milestone events (bus grant,
//! snoop resolution, DRAM start/done, ...), and exactly one
//! [`EventKind::Retire`]. The assembler partitions each lifetime at its
//! milestone cycles into labelled, non-overlapping [`Segment`]s that sum
//! to exactly `retire - issue` *by construction*: boundaries are clamped
//! monotonically into `[issue, retire]`, so overlapped work (a DRAM
//! access speculatively started under a snoop) shows up as a shortened
//! segment rather than double-counted time.

use crate::{Category, EventKind, PathTag, ReqTag, TraceBuffer, TraceEvent, UNKEYED};
use cgct_sim::hash::StableHashMap;

/// One labelled slice of a request's lifetime: `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// What the request was waiting on ("arbitration", "snoop", ...).
    pub label: &'static str,
    /// First cycle of the segment.
    pub start: u64,
    /// First cycle after the segment.
    pub end: u64,
}

impl Segment {
    /// Segment length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// One request's assembled lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Issuing node.
    pub node: u8,
    /// Per-node request id.
    pub seq: u64,
    /// Request kind.
    pub kind: ReqTag,
    /// Reporting category.
    pub category: Category,
    /// Line address (line number).
    pub line: u64,
    /// True for hardware-prefetch requests.
    pub prefetch: bool,
    /// The path the request took.
    pub path: PathTag,
    /// Issue cycle.
    pub issue: u64,
    /// Retire cycle.
    pub retire: u64,
    /// Non-overlapping segments covering `[issue, retire)` exactly.
    pub segments: Vec<Segment>,
}

impl Span {
    /// Total lifetime in cycles.
    pub fn latency(&self) -> u64 {
        self.retire - self.issue
    }
}

/// MSHR activity observed alongside the spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrCounts {
    /// Primary misses that allocated an MSHR.
    pub allocs: u64,
    /// Secondary misses merged into an in-flight MSHR.
    pub merges: u64,
    /// Total cycles merged accesses still waited for their fill.
    pub merge_wait_cycles: u64,
}

/// Region Coherence Array activity observed alongside the spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RcaCounts {
    /// Requests that found a usable region entry.
    pub hits: u64,
    /// Requests that found no usable region entry.
    pub misses: u64,
    /// Region entries evicted to make room.
    pub evictions: u64,
    /// Cached lines flushed by those evictions (RCA inclusion).
    pub evicted_lines: u64,
    /// Region permissions given up on external requests.
    pub self_invalidations: u64,
}

/// Everything the assembler extracted from one buffer.
#[derive(Debug, Clone, Default)]
pub struct Assembly {
    /// Complete spans, sorted by `(node, issue, seq)`.
    pub spans: Vec<Span>,
    /// Issues whose retire never appeared (only possible after drops).
    pub incomplete: u64,
    /// Milestone/retire events whose issue was dropped from the ring.
    pub orphans: u64,
    /// Events the saturated ring buffer evicted.
    pub dropped: u64,
    /// MSHR activity.
    pub mshr: MshrCounts,
    /// RCA activity.
    pub rca: RcaCounts,
    /// DCBZ operations completed with no external request.
    pub dcbz_elided: u64,
}

/// The segment label a milestone event closes (the time *since the
/// previous boundary* was spent waiting on this).
fn milestone_label(kind: &EventKind) -> Option<&'static str> {
    match kind {
        EventKind::BusGrant { .. } => Some("arbitration"),
        EventKind::HopDone => Some("hop"),
        EventKind::SnoopDone { .. } => Some("snoop"),
        EventKind::DramStart { .. } => Some("dram_queue"),
        EventKind::DramDone => Some("dram"),
        EventKind::Fill => Some("transfer"),
        _ => None,
    }
}

struct Pending {
    kind: ReqTag,
    category: Category,
    line: u64,
    prefetch: bool,
    issue: u64,
    milestones: Vec<(&'static str, u64)>,
}

impl Pending {
    /// Closes the lifetime: clamp milestone boundaries monotonically
    /// into `[issue, retire]` and label the final stretch "fill".
    fn finish(self, node: u8, seq: u64, retire: u64, path: PathTag) -> Span {
        let retire = retire.max(self.issue);
        let mut segments = Vec::with_capacity(self.milestones.len() + 1);
        let mut prev = self.issue;
        for (label, cycle) in self.milestones {
            let end = cycle.clamp(prev, retire);
            if end > prev {
                segments.push(Segment {
                    label,
                    start: prev,
                    end,
                });
                prev = end;
            }
        }
        if retire > prev {
            segments.push(Segment {
                label: "fill",
                start: prev,
                end: retire,
            });
        }
        Span {
            node,
            seq,
            kind: self.kind,
            category: self.category,
            line: self.line,
            prefetch: self.prefetch,
            path,
            issue: self.issue,
            retire,
            segments,
        }
    }
}

/// Assembles a buffer's events into spans and counters.
pub fn assemble(buffer: &TraceBuffer) -> Assembly {
    let mut asm = Assembly {
        dropped: buffer.dropped(),
        ..Assembly::default()
    };
    let mut pending: StableHashMap<(u8, u64), Pending> = StableHashMap::default();
    for ev in buffer.events() {
        let TraceEvent {
            node,
            seq,
            cycle,
            kind,
        } = *ev;
        if seq == UNKEYED {
            match kind {
                EventKind::MshrAlloc { .. } => asm.mshr.allocs += 1,
                EventKind::MshrMerge { wait, .. } => {
                    asm.mshr.merges += 1;
                    asm.mshr.merge_wait_cycles += wait;
                }
                EventKind::RcaHit { .. } => asm.rca.hits += 1,
                EventKind::RcaMiss { .. } => asm.rca.misses += 1,
                EventKind::RcaEvict { lines, .. } => {
                    asm.rca.evictions += 1;
                    asm.rca.evicted_lines += u64::from(lines);
                }
                EventKind::RcaSelfInvalidate { .. } => asm.rca.self_invalidations += 1,
                EventKind::DcbzElided { .. } => asm.dcbz_elided += 1,
                _ => asm.orphans += 1,
            }
            continue;
        }
        match kind {
            EventKind::Issue {
                kind,
                category,
                line,
                prefetch,
            } => {
                pending.insert(
                    (node, seq),
                    Pending {
                        kind,
                        category,
                        line,
                        prefetch,
                        issue: cycle,
                        milestones: Vec::new(),
                    },
                );
            }
            EventKind::Retire { path } => match pending.remove(&(node, seq)) {
                Some(p) => asm.spans.push(p.finish(node, seq, cycle, path)),
                None => asm.orphans += 1,
            },
            other => match (milestone_label(&other), pending.get_mut(&(node, seq))) {
                (Some(label), Some(p)) => p.milestones.push((label, cycle)),
                _ => asm.orphans += 1,
            },
        }
    }
    asm.incomplete = pending.len() as u64;
    asm.spans.sort_by_key(|s| (s.node, s.issue, s.seq));
    asm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    fn keyed(seq: u64, cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            node: 1,
            seq,
            cycle,
            kind,
        }
    }

    fn issue(seq: u64, cycle: u64) -> TraceEvent {
        keyed(
            seq,
            cycle,
            EventKind::Issue {
                kind: ReqTag::Read,
                category: Category::Data,
                line: 0x1000 + seq,
                prefetch: false,
            },
        )
    }

    fn retire(seq: u64, cycle: u64, path: PathTag) -> TraceEvent {
        keyed(seq, cycle, EventKind::Retire { path })
    }

    /// Conservation: segments are non-overlapping, in order, and sum to
    /// exactly `retire - issue`.
    fn assert_conserved(span: &Span) {
        let mut prev = span.issue;
        let mut total = 0;
        for seg in &span.segments {
            assert_eq!(seg.start, prev, "segments must be contiguous");
            assert!(seg.end > seg.start, "segments must be non-empty");
            total += seg.cycles();
            prev = seg.end;
        }
        assert_eq!(
            prev,
            if span.segments.is_empty() {
                span.issue
            } else {
                span.retire
            }
        );
        assert_eq!(total, span.latency());
    }

    #[test]
    fn broadcast_lifetime_partitions_exactly() {
        let mut buf = TraceBuffer::new(64);
        buf.record(issue(0, 100));
        buf.record(keyed(0, 130, EventKind::BusGrant { queued: 30 }));
        buf.record(keyed(0, 290, EventKind::SnoopDone { owner: false }));
        buf.record(keyed(0, 300, EventKind::DramStart { queued: 10 }));
        buf.record(keyed(0, 460, EventKind::DramDone));
        buf.record(retire(0, 480, PathTag::BroadcastMemory));
        let asm = assemble(&buf);
        assert_eq!(asm.spans.len(), 1);
        let span = &asm.spans[0];
        assert_eq!(span.latency(), 380);
        assert_conserved(span);
        let labels: Vec<_> = span.segments.iter().map(|s| s.label).collect();
        assert_eq!(
            labels,
            vec!["arbitration", "snoop", "dram_queue", "dram", "fill"]
        );
    }

    #[test]
    fn overlapped_dram_is_clamped_not_double_counted() {
        // Speculative DRAM start *before* the snoop resolves: the
        // monotonic clamp charges the overlap to the snoop segment.
        let mut buf = TraceBuffer::new(64);
        buf.record(issue(3, 0));
        buf.record(keyed(3, 10, EventKind::BusGrant { queued: 10 }));
        buf.record(keyed(3, 170, EventKind::SnoopDone { owner: false }));
        buf.record(keyed(3, 10, EventKind::DramStart { queued: 0 }));
        buf.record(keyed(3, 240, EventKind::DramDone));
        buf.record(retire(3, 260, PathTag::BroadcastMemory));
        let asm = assemble(&buf);
        let span = &asm.spans[0];
        assert_conserved(span);
        // dram_queue clamps to zero length and disappears.
        let labels: Vec<_> = span.segments.iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!["arbitration", "snoop", "dram", "fill"]);
    }

    #[test]
    fn zero_latency_span_has_no_segments() {
        let mut buf = TraceBuffer::new(8);
        buf.record(issue(7, 42));
        buf.record(retire(7, 42, PathTag::Local));
        let asm = assemble(&buf);
        assert_eq!(asm.spans[0].latency(), 0);
        assert!(asm.spans[0].segments.is_empty());
        assert_conserved(&asm.spans[0]);
    }

    #[test]
    fn spans_sort_canonically_and_losses_are_counted() {
        let mut buf = TraceBuffer::new(64);
        // Out-of-order issue cycles across seqs; plus one incomplete
        // and one orphan retire.
        buf.record(issue(5, 200));
        buf.record(issue(4, 50));
        buf.record(retire(5, 260, PathTag::Direct));
        buf.record(retire(4, 90, PathTag::Direct));
        buf.record(issue(6, 300)); // never retires
        buf.record(retire(9, 400, PathTag::Direct)); // issue lost
        let asm = assemble(&buf);
        assert_eq!(asm.spans.len(), 2);
        assert_eq!(asm.spans[0].seq, 4);
        assert_eq!(asm.spans[1].seq, 5);
        assert_eq!(asm.incomplete, 1);
        assert_eq!(asm.orphans, 1);
    }

    #[test]
    fn unkeyed_events_feed_counters() {
        let mut buf = TraceBuffer::new(64);
        let un = |kind| TraceEvent {
            node: 2,
            seq: UNKEYED,
            cycle: 5,
            kind,
        };
        buf.record(un(EventKind::MshrAlloc { line: 1 }));
        buf.record(un(EventKind::MshrMerge { line: 1, wait: 120 }));
        buf.record(un(EventKind::MshrMerge { line: 1, wait: 30 }));
        buf.record(un(EventKind::RcaHit { region: 9 }));
        buf.record(un(EventKind::RcaMiss { region: 9 }));
        buf.record(un(EventKind::RcaEvict {
            region: 9,
            lines: 3,
        }));
        buf.record(un(EventKind::RcaSelfInvalidate { region: 9 }));
        buf.record(un(EventKind::DcbzElided { line: 4 }));
        let asm = assemble(&buf);
        assert_eq!(asm.mshr.allocs, 1);
        assert_eq!(asm.mshr.merges, 2);
        assert_eq!(asm.mshr.merge_wait_cycles, 150);
        assert_eq!(asm.rca.hits, 1);
        assert_eq!(asm.rca.misses, 1);
        assert_eq!(asm.rca.evictions, 1);
        assert_eq!(asm.rca.evicted_lines, 3);
        assert_eq!(asm.rca.self_invalidations, 1);
        assert_eq!(asm.dcbz_elided, 1);
        assert!(asm.spans.is_empty());
    }
}
