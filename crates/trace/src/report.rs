//! Aggregation and rendering: per-path latency statistics, the
//! canonical `trace_summary.json`, Chrome `about://tracing` JSON, and a
//! top-N slow-request markdown report.
//!
//! Every emitted number is an exact integer (cycle counts, or
//! milli-cycle fixed point for means), so the summary survives a
//! `parse -> dump` round trip through [`cgct_sim::json`] byte-for-byte
//! and is identical under any worker count.

use crate::span::{assemble, MshrCounts, RcaCounts, Span};
use crate::{Category, PathTag, TraceBuffer};
use cgct_sim::Json;

/// Latency statistics for one (category, path) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSummary {
    /// Request category.
    pub category: Category,
    /// Path taken.
    pub path: PathTag,
    /// Number of spans in the cell.
    pub count: u64,
    /// Sum of latencies, in cycles.
    pub total_cycles: u64,
    /// Mean latency in milli-cycles (fixed point: `total * 1000 / count`).
    pub mean_milli: u64,
    /// Median latency (nearest rank).
    pub p50: u64,
    /// 95th-percentile latency (nearest rank).
    pub p95: u64,
    /// 99th-percentile latency (nearest rank).
    pub p99: u64,
    /// Sparse log2 histogram: `(bucket, count)` where bucket `b`
    /// covers latencies in `[2^(b-1), 2^b)` and bucket 0 holds zero.
    pub log2_buckets: Vec<(u32, u64)>,
}

impl PathSummary {
    /// Mean latency in cycles (derived from the fixed-point field).
    pub fn mean(&self) -> f64 {
        self.mean_milli as f64 / 1000.0
    }
}

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (pct * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

fn log2_bucket(latency: u64) -> u32 {
    match latency {
        0 => 0,
        d => 64 - d.leading_zeros(),
    }
}

/// One run's assembled trace, ready for aggregation and rendering.
///
/// Plain data (`Send + Clone`), so it can travel back from pool workers
/// inside run results.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Run label, e.g. `ocean/cgct-512B#s1`.
    pub label: String,
    /// Complete spans in canonical `(node, issue, seq)` order.
    pub spans: Vec<Span>,
    /// Issues whose retire never appeared (only possible after drops).
    pub incomplete: u64,
    /// Events whose issue was dropped from the ring.
    pub orphans: u64,
    /// Events evicted by ring saturation.
    pub dropped_events: u64,
    /// MSHR activity.
    pub mshr: MshrCounts,
    /// RCA activity.
    pub rca: RcaCounts,
    /// DCBZ operations elided locally.
    pub dcbz_elided: u64,
}

impl TraceReport {
    /// Assembles a buffer into a report.
    pub fn from_buffer(label: impl Into<String>, buffer: &TraceBuffer) -> TraceReport {
        let asm = assemble(buffer);
        TraceReport {
            label: label.into(),
            spans: asm.spans,
            incomplete: asm.incomplete,
            orphans: asm.orphans,
            dropped_events: asm.dropped,
            mshr: asm.mshr,
            rca: asm.rca,
            dcbz_elided: asm.dcbz_elided,
        }
    }

    /// Per-(category, path) latency statistics in canonical order.
    pub fn path_summaries(&self) -> Vec<PathSummary> {
        let mut cells: Vec<((Category, PathTag), Vec<u64>)> = Vec::new();
        for span in &self.spans {
            let key = (span.category, span.path);
            match cells.iter_mut().find(|(k, _)| *k == key) {
                Some((_, lat)) => lat.push(span.latency()),
                None => cells.push((key, vec![span.latency()])),
            }
        }
        cells.sort_by_key(|(k, _)| *k);
        cells
            .into_iter()
            .map(|((category, path), mut lat)| {
                lat.sort_unstable();
                let count = lat.len() as u64;
                let total_cycles: u64 = lat.iter().sum();
                let mut log2_buckets: Vec<(u32, u64)> = Vec::new();
                for &d in &lat {
                    let b = log2_bucket(d);
                    match log2_buckets.iter_mut().find(|(k, _)| *k == b) {
                        Some((_, c)) => *c += 1,
                        None => log2_buckets.push((b, 1)),
                    }
                }
                log2_buckets.sort_unstable();
                PathSummary {
                    category,
                    path,
                    count,
                    total_cycles,
                    mean_milli: total_cycles.saturating_mul(1000) / count,
                    p50: percentile(&lat, 50),
                    p95: percentile(&lat, 95),
                    p99: percentile(&lat, 99),
                    log2_buckets,
                }
            })
            .collect()
    }

    /// The `n` slowest spans, ties broken canonically.
    pub fn slowest(&self, n: usize) -> Vec<&Span> {
        let mut refs: Vec<&Span> = self.spans.iter().collect();
        refs.sort_by_key(|s| (std::cmp::Reverse(s.latency()), s.node, s.issue, s.seq));
        refs.truncate(n);
        refs
    }
}

fn span_json(span: &Span) -> Json {
    Json::obj([
        ("node", Json::u64(u64::from(span.node))),
        ("seq", Json::u64(span.seq)),
        ("kind", Json::str(span.kind.name())),
        ("category", Json::str(span.category.name())),
        ("path", Json::str(span.path.name())),
        ("line", Json::u64(span.line)),
        ("prefetch", Json::Bool(span.prefetch)),
        ("issue", Json::u64(span.issue)),
        ("retire", Json::u64(span.retire)),
        ("latency", Json::u64(span.latency())),
        (
            "segments",
            Json::Array(
                span.segments
                    .iter()
                    .map(|seg| {
                        Json::obj([
                            ("label", Json::str(seg.label)),
                            ("start", Json::u64(seg.start)),
                            ("end", Json::u64(seg.end)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Number of slowest spans listed per run in the summary and report.
pub const SLOWEST_PER_RUN: usize = 5;

/// Builds the canonical `trace_summary.json` value for a set of runs.
///
/// The runs must already be in canonical order; everything inside is
/// integer-exact and deterministic under any `CGCT_JOBS`.
pub fn summary(reports: &[TraceReport]) -> Json {
    let runs: Vec<Json> = reports
        .iter()
        .map(|r| {
            let paths: Vec<Json> = r
                .path_summaries()
                .iter()
                .map(|p| {
                    Json::obj([
                        ("category", Json::str(p.category.name())),
                        ("path", Json::str(p.path.name())),
                        ("count", Json::u64(p.count)),
                        ("total_cycles", Json::u64(p.total_cycles)),
                        ("mean_milli", Json::u64(p.mean_milli)),
                        ("p50", Json::u64(p.p50)),
                        ("p95", Json::u64(p.p95)),
                        ("p99", Json::u64(p.p99)),
                        (
                            "log2_buckets",
                            Json::Array(
                                p.log2_buckets
                                    .iter()
                                    .map(|&(b, c)| {
                                        Json::obj([
                                            ("bucket", Json::u64(u64::from(b))),
                                            (
                                                "ge",
                                                Json::u64(if b == 0 { 0 } else { 1u64 << (b - 1) }),
                                            ),
                                            ("count", Json::u64(c)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            Json::obj([
                ("label", Json::str(r.label.clone())),
                ("spans", Json::u64(r.spans.len() as u64)),
                ("incomplete", Json::u64(r.incomplete)),
                ("orphans", Json::u64(r.orphans)),
                ("dropped_events", Json::u64(r.dropped_events)),
                (
                    "mshr",
                    Json::obj([
                        ("allocs", Json::u64(r.mshr.allocs)),
                        ("merges", Json::u64(r.mshr.merges)),
                        ("merge_wait_cycles", Json::u64(r.mshr.merge_wait_cycles)),
                    ]),
                ),
                (
                    "rca",
                    Json::obj([
                        ("hits", Json::u64(r.rca.hits)),
                        ("misses", Json::u64(r.rca.misses)),
                        ("evictions", Json::u64(r.rca.evictions)),
                        ("evicted_lines", Json::u64(r.rca.evicted_lines)),
                        ("self_invalidations", Json::u64(r.rca.self_invalidations)),
                    ]),
                ),
                ("dcbz_elided", Json::u64(r.dcbz_elided)),
                ("paths", Json::Array(paths)),
                (
                    "slowest",
                    Json::Array(
                        r.slowest(SLOWEST_PER_RUN)
                            .into_iter()
                            .map(span_json)
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::str("cgct-trace-summary-v1")),
        ("runs", Json::Array(runs)),
    ])
}

/// Builds a Chrome `about://tracing` JSON value: one process per run,
/// one thread (track) per node, one complete (`ph: "X"`) event per
/// span with its segment breakdown in `args`. Events on each track are
/// emitted in nondecreasing `ts` order.
pub fn chrome_trace(reports: &[TraceReport]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (pid, report) in reports.iter().enumerate() {
        let pid = pid as u64;
        events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(pid)),
            (
                "args",
                Json::obj([("name", Json::str(report.label.clone()))]),
            ),
        ]));
        let mut nodes: Vec<u8> = report.spans.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for node in &nodes {
            events.push(Json::obj([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::u64(pid)),
                ("tid", Json::u64(u64::from(*node))),
                (
                    "args",
                    Json::obj([("name", Json::str(format!("node {node}")))]),
                ),
            ]));
        }
        // Spans are already sorted by (node, issue, seq): per-track
        // timestamps come out nondecreasing.
        for span in &report.spans {
            let mut args = vec![
                ("seq".to_string(), Json::u64(span.seq)),
                ("line".to_string(), Json::u64(span.line)),
                ("path".to_string(), Json::str(span.path.name())),
                ("prefetch".to_string(), Json::Bool(span.prefetch)),
            ];
            for seg in &span.segments {
                args.push((seg.label.to_string(), Json::u64(seg.cycles())));
            }
            events.push(Json::obj([
                (
                    "name",
                    Json::str(format!("{}/{}", span.kind.name(), span.path.name())),
                ),
                ("cat", Json::str(span.category.name())),
                ("ph", Json::str("X")),
                ("pid", Json::u64(pid)),
                ("tid", Json::u64(u64::from(span.node))),
                ("ts", Json::u64(span.issue)),
                ("dur", Json::u64(span.latency())),
                ("args", Json::Object(args)),
            ]));
        }
    }
    Json::obj([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::str("ns")),
    ])
}

/// Renders the top-N slow-request report (markdown).
pub fn markdown_report(reports: &[TraceReport]) -> String {
    let mut out = String::new();
    out.push_str("# Slowest requests by run\n");
    for report in reports {
        out.push_str(&format!("\n## {}\n\n", report.label));
        out.push_str(&format!(
            "{} spans, {} dropped events, {} incomplete\n",
            report.spans.len(),
            report.dropped_events,
            report.incomplete
        ));
        for span in report.slowest(SLOWEST_PER_RUN) {
            out.push_str(&format!(
                "\n- node {} seq {} `{}` {} {} line {:#x}{}: {} cycles ({} -> {})\n",
                span.node,
                span.seq,
                span.kind.name(),
                span.category.name(),
                span.path.name(),
                span.line,
                if span.prefetch { " prefetch" } else { "" },
                span.latency(),
                span.issue,
                span.retire
            ));
            for seg in &span.segments {
                out.push_str(&format!(
                    "    - {:<12} {:>8} cycles ({} -> {})\n",
                    seg.label,
                    seg.cycles(),
                    seg.start,
                    seg.end
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, ReqTag, TraceEvent, TraceSink};

    fn demo_report() -> TraceReport {
        let mut buf = TraceBuffer::new(256);
        let mut rec = |node: u8, seq: u64, cycle: u64, kind: EventKind| {
            buf.record(TraceEvent {
                node,
                seq,
                cycle,
                kind,
            })
        };
        // Three direct data reads and two broadcast reads on two nodes.
        for (i, (node, base, lat)) in [(0u8, 100u64, 180u64), (0, 400, 200), (1, 120, 190)]
            .iter()
            .enumerate()
        {
            rec(
                *node,
                i as u64,
                *base,
                EventKind::Issue {
                    kind: ReqTag::Read,
                    category: Category::Data,
                    line: 64 + i as u64,
                    prefetch: false,
                },
            );
            rec(*node, i as u64, base + 10, EventKind::HopDone);
            rec(
                *node,
                i as u64,
                base + lat,
                EventKind::Retire {
                    path: PathTag::Direct,
                },
            );
        }
        for (i, (node, base, lat)) in [(0u8, 150u64, 260u64), (1, 500, 300)].iter().enumerate() {
            let seq = 10 + i as u64;
            rec(
                *node,
                seq,
                *base,
                EventKind::Issue {
                    kind: ReqTag::Read,
                    category: Category::Data,
                    line: 128 + i as u64,
                    prefetch: false,
                },
            );
            rec(*node, seq, base + 20, EventKind::BusGrant { queued: 20 });
            rec(
                *node,
                seq,
                base + 180,
                EventKind::SnoopDone { owner: false },
            );
            rec(
                *node,
                seq,
                base + lat,
                EventKind::Retire {
                    path: PathTag::BroadcastMemory,
                },
            );
        }
        TraceReport::from_buffer("demo/baseline#s1", &buf)
    }

    #[test]
    fn path_summaries_aggregate_exactly() {
        let report = demo_report();
        let paths = report.path_summaries();
        assert_eq!(paths.len(), 2);
        let direct = &paths[0];
        assert_eq!(
            (direct.category, direct.path),
            (Category::Data, PathTag::Direct)
        );
        assert_eq!(direct.count, 3);
        assert_eq!(direct.total_cycles, 180 + 200 + 190);
        assert_eq!(direct.mean_milli, 570_000 / 3);
        assert_eq!(direct.p50, 190);
        assert_eq!(direct.p95, 200);
        assert_eq!(direct.p99, 200);
        let bcast = &paths[1];
        assert_eq!(bcast.path, PathTag::BroadcastMemory);
        assert_eq!(bcast.count, 2);
        // Fig 6 ordering on the synthetic data: direct < broadcast.
        assert!(direct.mean_milli < bcast.mean_milli);
    }

    #[test]
    fn log2_buckets_cover_all_spans() {
        let report = demo_report();
        for p in report.path_summaries() {
            let total: u64 = p.log2_buckets.iter().map(|(_, c)| c).sum();
            assert_eq!(total, p.count);
        }
        assert_eq!(super::log2_bucket(0), 0);
        assert_eq!(super::log2_bucket(1), 1);
        assert_eq!(super::log2_bucket(255), 8);
        assert_eq!(super::log2_bucket(256), 9);
    }

    #[test]
    fn slowest_orders_by_latency_then_canonically() {
        let report = demo_report();
        let slow = report.slowest(3);
        assert_eq!(slow.len(), 3);
        assert_eq!(slow[0].latency(), 300);
        assert_eq!(slow[1].latency(), 260);
        assert_eq!(slow[2].latency(), 200);
    }

    #[test]
    fn summary_round_trips_byte_exactly() {
        let report = demo_report();
        let value = summary(&[report]);
        let text = value.dump_pretty();
        let reparsed = Json::parse(&text).expect("summary must parse");
        assert_eq!(reparsed.dump_pretty(), text);
        assert_eq!(
            value.get("schema").and_then(Json::as_str),
            Some("cgct-trace-summary-v1")
        );
    }

    #[test]
    fn chrome_trace_is_monotonic_per_track() {
        let report = demo_report();
        let value = chrome_trace(&[report]);
        let text = value.dump();
        let reparsed = Json::parse(&text).expect("chrome trace must parse");
        let events = reparsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let mut last: Vec<((u64, u64), u64)> = Vec::new();
        let mut timed = 0;
        for ev in events {
            let Some(ts) = ev.get("ts").and_then(Json::as_u64) else {
                continue; // metadata
            };
            timed += 1;
            let key = (
                ev.get("pid").and_then(Json::as_u64).unwrap(),
                ev.get("tid").and_then(Json::as_u64).unwrap(),
            );
            match last.iter_mut().find(|(k, _)| *k == key) {
                Some((_, prev)) => {
                    assert!(*prev <= ts, "timestamps must be monotonic per track");
                    *prev = ts;
                }
                None => last.push((key, ts)),
            }
        }
        assert_eq!(timed, 5);
    }

    #[test]
    fn markdown_report_lists_slowest() {
        let report = demo_report();
        let md = markdown_report(&[report]);
        assert!(md.contains("## demo/baseline#s1"));
        assert!(md.contains("broadcast-memory"));
        assert!(md.contains("snoop"));
    }
}
