//! Deterministic request-lifetime tracing for the CGCT simulator.
//!
//! The simulator's metrics answer *how many* requests took each path;
//! this crate answers *where a single request spent its cycles*. Model
//! components record typed, cycle-stamped [`TraceEvent`]s into a
//! bounded ring buffer through the [`TraceSink`] trait; after a run,
//! the [`span`] assembler folds the events of each request id into a
//! lifetime breakdown (arbitration / snoop / DRAM / transfer segments,
//! tagged with the direct-vs-broadcast path it took), and [`report`]
//! aggregates spans into log2-bucket latency histograms with
//! p50/p95/p99 per (request category, path) plus Chrome
//! `about://tracing` JSON.
//!
//! Determinism rules: every event is stamped with a *simulated* cycle —
//! never wall clock — and recording is single-threaded per machine, so
//! the event stream, the assembled spans, and every aggregate are pure
//! functions of (benchmark, configuration, seed). Tracing is
//! observation only: sinks must not influence the simulation.
//!
//! # Examples
//!
//! ```
//! use cgct_trace::{EventKind, TraceBuffer, TraceEvent, TraceSink};
//! use cgct_trace::{Category, PathTag, ReqTag};
//!
//! let mut buf = TraceBuffer::new(16);
//! buf.record(TraceEvent {
//!     node: 0,
//!     seq: 0,
//!     cycle: 100,
//!     kind: EventKind::Issue {
//!         kind: ReqTag::Read,
//!         category: Category::Data,
//!         line: 0x40,
//!         prefetch: false,
//!     },
//! });
//! buf.record(TraceEvent {
//!     node: 0,
//!     seq: 0,
//!     cycle: 350,
//!     kind: EventKind::Retire { path: PathTag::Direct },
//! });
//! let asm = cgct_trace::span::assemble(&buf);
//! assert_eq!(asm.spans.len(), 1);
//! assert_eq!(asm.spans[0].latency(), 250);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod report;
pub mod span;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

pub use report::{PathSummary, TraceReport};
pub use span::{Segment, Span};

/// Sequence number used by events that are not tied to one request's
/// lifetime (MSHR activity, RCA bookkeeping, DCBZ elisions).
pub const UNKEYED: u64 = u64::MAX;

/// Default ring-buffer capacity, in events. Sized so a quick-plan run
/// fits without drops; longer runs saturate gracefully (drop-oldest,
/// counted in [`TraceBuffer::dropped`]).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Request kinds, mirroring the coherence-point request vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReqTag {
    /// Read for shared or exclusive data (load miss).
    Read,
    /// Read that leaves remote copies valid (ifetch, shared-read bypass).
    ReadShared,
    /// Read with intent to modify (store miss, exclusive prefetch).
    ReadExclusive,
    /// Upgrade a valid shared copy to modifiable.
    Upgrade,
    /// Write dirty data back to memory.
    Writeback,
    /// Data-cache-block zero.
    Dcbz,
}

impl ReqTag {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReqTag::Read => "read",
            ReqTag::ReadShared => "read-shared",
            ReqTag::ReadExclusive => "read-exclusive",
            ReqTag::Upgrade => "upgrade",
            ReqTag::Writeback => "writeback",
            ReqTag::Dcbz => "dcbz",
        }
    }
}

/// Request categories, mirroring the metrics breakdown (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Ordinary data reads/writes/upgrades, including prefetches.
    Data,
    /// Write-backs of dirty lines.
    Writeback,
    /// Instruction fetches.
    Ifetch,
    /// Data-cache-block operations.
    Dcb,
}

impl Category {
    /// All categories, in reporting order.
    pub const ALL: [Category; 4] = [
        Category::Data,
        Category::Writeback,
        Category::Ifetch,
        Category::Dcb,
    ];

    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Category::Data => "data",
            Category::Writeback => "writeback",
            Category::Ifetch => "ifetch",
            Category::Dcb => "dcb",
        }
    }
}

/// The path a request took through the memory system — the axis the
/// paper's latency claims (Figure 6) are made on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathTag {
    /// Completed entirely within the node (no external request).
    Local,
    /// Sent point-to-point to a memory controller, skipping the snoop.
    Direct,
    /// Served point-to-point by a predicted owner (§6 extension).
    OwnerPredicted,
    /// Broadcast; data supplied cache-to-cache by the owner.
    BroadcastCache,
    /// Broadcast; data supplied by memory after the snoop resolved.
    BroadcastMemory,
    /// Broadcast that moved no data to the requester (upgrades,
    /// broadcast write-backs).
    BroadcastControl,
    /// Directory protocol; data supplied by memory.
    DirectoryMemory,
    /// Directory protocol; data forwarded by the owning cache (3-hop).
    DirectoryForwarded,
    /// Directory protocol; no data moved to the requester (upgrades,
    /// invalidate-only requests, directory write-backs). Kept apart
    /// from [`PathTag::DirectoryMemory`] so bypassed-vs-full-lookup
    /// latency comparisons see matched data-fill populations.
    DirectoryControl,
    /// Directory protocol; the home-directory lookup was skipped —
    /// either the requester's RCA proved the region non-shared (direct
    /// to memory, no lookup serialization) or the home's region-grain
    /// directory cache proved it uncached elsewhere.
    DirectoryBypassed,
    /// Hierarchical machine; the request was satisfied without leaving
    /// the requester's cluster (the inter-cluster region directory
    /// filtered out every other cluster).
    ClusterLocal,
    /// Hierarchical machine; the request had to visit at least one
    /// other cluster.
    ClusterRemote,
}

impl PathTag {
    /// All paths, in reporting order.
    pub const ALL: [PathTag; 12] = [
        PathTag::Local,
        PathTag::Direct,
        PathTag::OwnerPredicted,
        PathTag::BroadcastCache,
        PathTag::BroadcastMemory,
        PathTag::BroadcastControl,
        PathTag::DirectoryMemory,
        PathTag::DirectoryForwarded,
        PathTag::DirectoryControl,
        PathTag::DirectoryBypassed,
        PathTag::ClusterLocal,
        PathTag::ClusterRemote,
    ];

    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PathTag::Local => "local",
            PathTag::Direct => "direct",
            PathTag::OwnerPredicted => "owner-predicted",
            PathTag::BroadcastCache => "broadcast-cache",
            PathTag::BroadcastMemory => "broadcast-memory",
            PathTag::BroadcastControl => "broadcast-control",
            PathTag::DirectoryMemory => "directory-memory",
            PathTag::DirectoryForwarded => "directory-forwarded",
            PathTag::DirectoryControl => "directory-control",
            PathTag::DirectoryBypassed => "directory-bypassed",
            PathTag::ClusterLocal => "cluster-local",
            PathTag::ClusterRemote => "cluster-remote",
        }
    }
}

/// What happened, and the payload needed to interpret it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request entered the coherence point.
    Issue {
        /// Request kind.
        kind: ReqTag,
        /// Reporting category.
        category: Category,
        /// Line address (line number, not byte address).
        line: u64,
        /// True for hardware-prefetch requests.
        prefetch: bool,
    },
    /// The broadcast address network granted the request a slot.
    BusGrant {
        /// Cycles spent waiting for the grant.
        queued: u64,
    },
    /// A point-to-point request hop arrived at its destination.
    HopDone,
    /// The snoop response resolved.
    SnoopDone {
        /// True if some remote cache owned the line (will supply data).
        owner: bool,
    },
    /// A memory-controller bank accepted the access.
    DramStart {
        /// Cycles spent queued for a free bank.
        queued: u64,
    },
    /// The DRAM access completed.
    DramDone,
    /// The fill was installed in the requester's cache.
    Fill,
    /// The request's lifetime ended; its data (if any) is usable.
    Retire {
        /// The path the request took.
        path: PathTag,
    },
    /// A miss allocated an MSHR (unkeyed; node is the core id).
    MshrAlloc {
        /// Line address.
        line: u64,
    },
    /// A secondary miss merged into an in-flight MSHR (unkeyed).
    MshrMerge {
        /// Line address.
        line: u64,
        /// Cycles the merged access still had to wait for the fill.
        wait: u64,
    },
    /// The RCA held a usable region entry for this request (unkeyed).
    RcaHit {
        /// Region address.
        region: u64,
    },
    /// The RCA had no usable entry for this request (unkeyed).
    RcaMiss {
        /// Region address.
        region: u64,
    },
    /// An RCA entry was evicted to make room (unkeyed).
    RcaEvict {
        /// Region address of the victim.
        region: u64,
        /// Cached lines flushed to keep RCA inclusion.
        lines: u32,
    },
    /// A node gave up region permissions on an external request
    /// (self-invalidation, unkeyed).
    RcaSelfInvalidate {
        /// Region address.
        region: u64,
    },
    /// A DCBZ completed without any external request (unkeyed).
    DcbzElided {
        /// Line address.
        line: u64,
    },
}

/// One cycle-stamped event, keyed by `(node, seq)`.
///
/// `seq` is a per-node request id for lifetime events and [`UNKEYED`]
/// for standalone observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The node (or core, for MSHR events) that recorded the event.
    pub node: u8,
    /// Per-node request id, or [`UNKEYED`].
    pub seq: u64,
    /// Simulated CPU cycle of the event.
    pub cycle: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// Destination for trace events.
///
/// The default implementation everywhere is effectively a null sink:
/// components hold an `Option` of a sink and skip all recording work
/// when it is absent, so tracing off costs nothing and simulated
/// behaviour never depends on the sink.
pub trait TraceSink: std::fmt::Debug {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// Whether events are being kept (lets callers skip building them).
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Bounded drop-oldest ring buffer of trace events.
///
/// When full, recording evicts the oldest event and counts it in
/// [`TraceBuffer::dropped`] — long runs saturate gracefully instead of
/// growing without bound, and the summary surfaces the loss.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted by saturation since the last [`clear`](Self::clear).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Discards all events and resets the drop counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// A cloneable handle to one shared [`TraceBuffer`].
///
/// One buffer per machine is shared between the memory system and every
/// core. The handle is `Arc<Mutex<..>>` so cores carrying a sink clone
/// remain `Send` (the epoch-parallel machine moves cores across
/// workers); recording order stays deterministic because traced runs
/// execute the machine single-threaded — the lock is for the type
/// system, never contended.
#[derive(Debug, Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<TraceBuffer>>,
}

impl SharedSink {
    /// Creates a new shared buffer with the given capacity.
    pub fn new(capacity: usize) -> SharedSink {
        SharedSink {
            inner: Arc::new(Mutex::new(TraceBuffer::new(capacity))),
        }
    }

    /// Discards buffered events (used when measurement starts, so
    /// warmup activity never appears in reports).
    pub fn clear(&self) {
        self.inner.lock().expect("trace buffer poisoned").clear();
    }

    /// Takes the buffer contents, leaving an empty buffer behind.
    pub fn take(&self) -> TraceBuffer {
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        let capacity = inner.capacity();
        std::mem::replace(&mut *inner, TraceBuffer::new(capacity))
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, ev: TraceEvent) {
        self.inner.lock().expect("trace buffer poisoned").record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, cycle: u64) -> TraceEvent {
        TraceEvent {
            node: 0,
            seq,
            cycle,
            kind: EventKind::HopDone,
        }
    }

    #[test]
    fn ring_buffer_saturates_drop_oldest() {
        let mut buf = TraceBuffer::new(4);
        for i in 0..4 {
            buf.record(ev(i, i));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 0);
        // Wrap around twice over: the oldest events leave first and the
        // drop counter tracks exactly how many were lost.
        for i in 4..11 {
            buf.record(ev(i, i));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 7);
        let kept: Vec<u64> = buf.events().map(|e| e.seq).collect();
        assert_eq!(kept, vec![7, 8, 9, 10]);
    }

    #[test]
    fn clear_resets_drop_counter() {
        let mut buf = TraceBuffer::new(2);
        for i in 0..5 {
            buf.record(ev(i, i));
        }
        assert_eq!(buf.dropped(), 3);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 0);
        buf.record(ev(9, 9));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut buf = TraceBuffer::new(0);
        assert_eq!(buf.capacity(), 1);
        buf.record(ev(0, 0));
        buf.record(ev(1, 1));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn shared_sink_clones_share_one_buffer() {
        let sink = SharedSink::new(8);
        let mut a = sink.clone();
        let mut b = sink.clone();
        a.record(ev(0, 1));
        b.record(ev(1, 2));
        let buf = sink.take();
        assert_eq!(buf.len(), 2);
        let empty = sink.take();
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 8);
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        let buf = TraceBuffer::new(4);
        assert!(TraceSink::enabled(&buf));
        NullSink.record(ev(0, 0));
    }
}
