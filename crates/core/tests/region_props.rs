//! Property tests of the region protocol's algebra and the RCA's
//! bookkeeping under arbitrary operation sequences.

#![allow(clippy::disallowed_types)]
// ^ D002 mirror (clippy.toml): test code is exempt by policy

use cgct::{
    external_next_state, local_fill_next_state, FillKind, RcaConfig, RegionCoherenceArray,
    RegionSnoopResponse, RegionState,
};
use cgct_cache::{Geometry, RegionAddr, ReqKind};
use cgct_sim::check::{check, gen_vec};
use cgct_sim::Xoshiro256pp;

fn gen_region_state(g: &mut Xoshiro256pp) -> RegionState {
    *g.choose(&RegionState::ALL).unwrap()
}

fn gen_fill(g: &mut Xoshiro256pp) -> FillKind {
    if g.gen_bool(0.5) {
        FillKind::Shared
    } else {
        FillKind::Exclusive
    }
}

fn gen_resp(g: &mut Xoshiro256pp) -> RegionSnoopResponse {
    RegionSnoopResponse {
        clean: g.gen_bool(0.5),
        dirty: g.gen_bool(0.5),
    }
}

fn gen_req(g: &mut Xoshiro256pp) -> ReqKind {
    *g.choose(&[
        ReqKind::Read,
        ReqKind::ReadShared,
        ReqKind::ReadExclusive,
        ReqKind::Upgrade,
        ReqKind::Writeback,
        ReqKind::Dcbz,
    ])
    .unwrap()
}

#[test]
fn local_fill_always_yields_valid_state() {
    check("region::local_fill_always_yields_valid_state", 64, |g| {
        let s = gen_region_state(g);
        let fill = gen_fill(g);
        let resp = gen_resp(g);
        let next = local_fill_next_state(s, fill, Some(resp));
        assert!(next.is_valid());
        // The external part mirrors the response exactly.
        assert_eq!(next.external(), Some(resp.external_part()));
        // Exclusive fills always leave the local part dirty.
        if fill == FillKind::Exclusive {
            assert_eq!(next.local(), Some(cgct::LocalPart::Dirty));
        }
    });
}

#[test]
fn local_part_is_monotonic_toward_dirty() {
    check("region::local_part_is_monotonic_toward_dirty", 64, |g| {
        let s = gen_region_state(g);
        let fill = gen_fill(g);
        let resp = gen_resp(g);
        let next = local_fill_next_state(s, fill, Some(resp));
        if s.local() == Some(cgct::LocalPart::Dirty) {
            assert_eq!(next.local(), Some(cgct::LocalPart::Dirty));
        }
    });
}

#[test]
fn external_requests_never_grant_exclusivity() {
    check(
        "region::external_requests_never_grant_exclusivity",
        64,
        |g| {
            let s = gen_region_state(g);
            let req = gen_req(g);
            let fill_ex = g.gen_bool(0.5);
            let next = external_next_state(s, req, fill_ex);
            if s.is_valid() && req != ReqKind::Writeback {
                assert!(next.is_valid());
                assert!(
                    !next.is_exclusive(),
                    "{s} + external {req:?} left exclusive {next}"
                );
                // Local part is untouched by external requests.
                assert_eq!(next.local(), s.local());
            }
            if req == ReqKind::Writeback {
                assert_eq!(next, s);
            }
        },
    );
}

#[test]
fn external_part_monotonically_degrades() {
    check("region::external_part_monotonically_degrades", 64, |g| {
        let s = gen_region_state(g);
        let reqs = gen_vec(g, 1..8, |g| (gen_req(g), g.gen_bool(0.5)));
        // Across any sequence of external requests, the external part only
        // moves Invalid -> Clean -> Dirty, never back.
        let mut cur = s;
        let mut prev_ext = cur.external();
        for (req, fill_ex) in reqs {
            cur = external_next_state(cur, req, fill_ex);
            if let (Some(a), Some(b)) = (prev_ext, cur.external()) {
                assert!(b >= a, "external part improved: {a:?} -> {b:?}");
            }
            prev_ext = cur.external();
        }
    });
}

/// RCA line counts track an explicit multiset of cached lines across
/// arbitrary interleavings of fills, line movement, and snoops.
#[test]
fn rca_line_counts_match_reference() {
    check("region::rca_line_counts_match_reference", 64, |g| {
        let ops = gen_vec(g, 1..300, |g| {
            (g.gen_range(0u8..4), g.gen_range(0u64..16), g.gen_bool(0.5))
        });
        let geometry = Geometry::new(64, 512);
        let mut rca = RegionCoherenceArray::new(RcaConfig {
            sets: 16,
            ways: 2,
            geometry,
            self_invalidation: true,
            favor_empty_replacement: true,
        });
        let mut counts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (op, region_id, flag) in ops {
            let region = RegionAddr(region_id);
            match op {
                // Local fill (broadcast): allocate/refresh the entry.
                0 => {
                    let resp = RegionSnoopResponse {
                        clean: flag,
                        dirty: !flag,
                    };
                    if let Some(ev) = rca.local_fill(
                        region,
                        if flag {
                            FillKind::Shared
                        } else {
                            FillKind::Exclusive
                        },
                        Some(resp),
                        0,
                    ) {
                        // Displaced region: the caller flushes its lines.
                        counts.remove(&ev.region.0);
                    }
                }
                // Cache a line (only legal with a valid entry and room).
                1 => {
                    if rca.entry(region).is_some()
                        && *counts.get(&region_id).unwrap_or(&0)
                            < geometry.lines_per_region() as u32
                    {
                        rca.line_cached(region);
                        *counts.entry(region_id).or_insert(0) += 1;
                    }
                }
                // Evict a line.
                2 => {
                    if rca.entry(region).is_some() && *counts.get(&region_id).unwrap_or(&0) > 0 {
                        rca.line_uncached(region);
                        *counts.entry(region_id).or_insert(1) -= 1;
                    }
                }
                // External request (may self-invalidate empty regions).
                _ => {
                    let had_entry = rca.entry(region).is_some();
                    let was_empty = *counts.get(&region_id).unwrap_or(&0) == 0;
                    let _ = rca.external_request(region, ReqKind::Read, flag);
                    if had_entry && was_empty {
                        assert!(
                            rca.entry(region).is_none(),
                            "empty region must self-invalidate"
                        );
                        counts.remove(&region_id);
                    }
                }
            }
            // Every tracked count matches the model.
            for (region, entry) in rca.iter() {
                assert_eq!(
                    entry.line_count,
                    *counts.get(&region.0).unwrap_or(&0),
                    "region {region} count mismatch"
                );
            }
        }
    });
}
