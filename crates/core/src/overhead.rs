//! Storage-overhead model (Table 2).
//!
//! The paper sizes the RCA for a system like the UltraSPARC-IV: at least a
//! 40-bit physical address, a 1 MB 2-way set-associative cache with 64-byte
//! lines (8K sets), per-line 21-bit tags + 3-bit state + 8 bytes of data
//! ECC, and per-set LRU and tag ECC — 23 bytes of tag space per set. Each
//! 2-way RCA set stores two entries of {address tag, 3-bit region state,
//! line count, 6-bit memory-controller ID} plus an LRU bit and ECC.

/// One row of Table 2: entry/region sizing and the resulting overheads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Total RCA entries (2-way, so sets = entries / 2).
    pub entries: u64,
    /// Region size in bytes.
    pub region_bytes: u64,
    /// Address tag bits per entry.
    pub tag_bits: u32,
    /// Region state bits per entry (3: seven stable states).
    pub state_bits: u32,
    /// Line count bits per entry.
    pub line_count_bits: u32,
    /// Memory controller ID bits per entry.
    pub mc_id_bits: u32,
    /// LRU bits per set.
    pub lru_bits: u32,
    /// ECC bits per set.
    pub ecc_bits: u32,
    /// Total bits per RCA set.
    pub total_bits: u32,
    /// RCA bits as a fraction of the cache's tag space.
    pub tag_space_overhead: f64,
    /// RCA bits as a fraction of the whole cache (tags + data).
    pub cache_space_overhead: f64,
}

/// The storage model behind Table 2.
///
/// # Examples
///
/// ```
/// use cgct::StorageModel;
/// let m = StorageModel::paper_default();
/// let row = m.row(16 * 1024, 512);
/// assert_eq!(row.total_bits, 71);
/// assert!((row.cache_space_overhead - 0.059).abs() < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageModel {
    /// Physical address bits (paper: 40 — up to 16 GB DRAM per chip and
    /// 72 processors).
    pub phys_addr_bits: u32,
    /// Cache sets (paper: 8192 — 1 MB, 2-way, 64 B lines).
    pub cache_sets: u64,
    /// Cache associativity.
    pub cache_ways: u32,
    /// Cache line bytes.
    pub cache_line_bytes: u64,
    /// RCA associativity.
    pub rca_ways: u32,
}

impl StorageModel {
    /// The design point of §3.2.
    pub fn paper_default() -> Self {
        StorageModel {
            phys_addr_bits: 40,
            cache_sets: 8192,
            cache_ways: 2,
            cache_line_bytes: 64,
            rca_ways: 2,
        }
    }

    /// Cache line tag bits: address bits minus line offset and set index.
    pub fn cache_tag_bits(&self) -> u32 {
        self.phys_addr_bits
            - self.cache_line_bytes.trailing_zeros()
            - self.cache_sets.trailing_zeros()
    }

    /// Tag-space bits per cache set: per the paper, each line carries a
    /// 21-bit tag, 3 bits of coherence state, and 8 bytes of ECC; each set
    /// adds an LRU bit and 9 bits of ECC over tags and state — 23¼ bytes.
    pub fn cache_tag_space_bits_per_set(&self) -> u32 {
        let per_line = self.cache_tag_bits() + 3 + 64; // tag + state + data ECC
        per_line * self.cache_ways + 1 + 9 // + LRU + tag/state ECC
    }

    /// Total cache bits per set, tags plus data.
    pub fn cache_total_bits_per_set(&self) -> u32 {
        self.cache_tag_space_bits_per_set() + self.cache_ways * (self.cache_line_bytes as u32) * 8
    }

    /// RCA address tag bits for a given array size and region size.
    pub fn rca_tag_bits(&self, entries: u64, region_bytes: u64) -> u32 {
        let sets = entries / self.rca_ways as u64;
        self.phys_addr_bits - region_bytes.trailing_zeros() - sets.trailing_zeros()
    }

    /// Line-count bits: enough to count `0..=lines_per_region`.
    pub fn line_count_bits(&self, region_bytes: u64) -> u32 {
        let lines = region_bytes / self.cache_line_bytes;
        lines.trailing_zeros() + 1
    }

    /// ECC bits per RCA set. The paper allocates 9 bits for the 4K-entry
    /// arrays and 8 bits for the 8K- and 16K-entry arrays (Table 2).
    pub fn rca_ecc_bits(&self, entries: u64) -> u32 {
        if entries <= 4096 {
            9
        } else {
            8
        }
    }

    /// Computes one Table 2 row.
    pub fn row(&self, entries: u64, region_bytes: u64) -> OverheadRow {
        let tag_bits = self.rca_tag_bits(entries, region_bytes);
        let state_bits = 3;
        let line_count_bits = self.line_count_bits(region_bytes);
        let mc_id_bits = 6;
        let lru_bits = 1;
        let ecc_bits = self.rca_ecc_bits(entries);
        let per_entry = tag_bits + state_bits + line_count_bits + mc_id_bits;
        let total_bits = per_entry * self.rca_ways + lru_bits + ecc_bits;
        // Overheads compare RCA bits against cache bits for the *whole*
        // cache: scale by the ratio of RCA sets to cache sets.
        let rca_sets = entries / self.rca_ways as u64;
        let scale = rca_sets as f64 / self.cache_sets as f64;
        let rca_bits_per_cache_set = total_bits as f64 * scale;
        OverheadRow {
            entries,
            region_bytes,
            tag_bits,
            state_bits,
            line_count_bits,
            mc_id_bits,
            lru_bits,
            ecc_bits,
            total_bits,
            tag_space_overhead: rca_bits_per_cache_set / self.cache_tag_space_bits_per_set() as f64,
            cache_space_overhead: rca_bits_per_cache_set / self.cache_total_bits_per_set() as f64,
        }
    }

    /// All nine rows of Table 2 (4K/8K/16K entries × 256/512/1024-byte
    /// regions).
    pub fn table2(&self) -> Vec<OverheadRow> {
        let mut rows = Vec::new();
        for entries in [4 * 1024, 8 * 1024, 16 * 1024] {
            for region in [256, 512, 1024] {
                rows.push(self.row(entries, region));
            }
        }
        rows
    }
}

impl Default for StorageModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_design_point() {
        let m = StorageModel::paper_default();
        // "each line needs 21 bits for the physical address tag"
        assert_eq!(m.cache_tag_bits(), 21);
        // "a total of 23 bytes per set" (tag space, rounded down)
        assert_eq!(m.cache_tag_space_bits_per_set() / 8, 23);
    }

    #[test]
    fn table2_tag_bits_match_paper() {
        let m = StorageModel::paper_default();
        let expect = [
            (4096, 256, 21),
            (4096, 512, 20),
            (4096, 1024, 19),
            (8192, 256, 20),
            (8192, 512, 19),
            (8192, 1024, 18),
            (16384, 256, 19),
            (16384, 512, 18),
            (16384, 1024, 17),
        ];
        for (entries, region, tag) in expect {
            assert_eq!(
                m.rca_tag_bits(entries, region),
                tag,
                "{entries} entries, {region} B"
            );
        }
    }

    #[test]
    fn table2_line_count_bits_match_paper() {
        let m = StorageModel::paper_default();
        assert_eq!(m.line_count_bits(256), 3);
        assert_eq!(m.line_count_bits(512), 4);
        assert_eq!(m.line_count_bits(1024), 5);
    }

    #[test]
    fn table2_total_bits_match_paper() {
        let m = StorageModel::paper_default();
        assert_eq!(m.row(4096, 256).total_bits, 76);
        assert_eq!(m.row(4096, 512).total_bits, 76);
        assert_eq!(m.row(4096, 1024).total_bits, 76);
        assert_eq!(m.row(8192, 256).total_bits, 73);
        assert_eq!(m.row(8192, 512).total_bits, 73);
        assert_eq!(m.row(8192, 1024).total_bits, 73);
        assert_eq!(m.row(16384, 256).total_bits, 71);
        assert_eq!(m.row(16384, 512).total_bits, 71);
        assert_eq!(m.row(16384, 1024).total_bits, 71);
    }

    #[test]
    fn table2_overheads_match_paper() {
        let m = StorageModel::paper_default();
        // 16K entries: 38.2% of tag space, 5.9% of the cache.
        let r = m.row(16384, 512);
        assert!((r.tag_space_overhead - 0.382).abs() < 0.005, "{r:?}");
        assert!((r.cache_space_overhead - 0.059).abs() < 0.001, "{r:?}");
        // 8K entries: 19.6% / 3.0%.
        let r = m.row(8192, 512);
        assert!((r.tag_space_overhead - 0.196).abs() < 0.005, "{r:?}");
        assert!((r.cache_space_overhead - 0.030).abs() < 0.001, "{r:?}");
        // 4K entries: 10.2% / 1.6%.
        let r = m.row(4096, 512);
        assert!((r.tag_space_overhead - 0.102).abs() < 0.005, "{r:?}");
        assert!((r.cache_space_overhead - 0.016).abs() < 0.001, "{r:?}");
    }

    #[test]
    fn table2_has_nine_rows() {
        assert_eq!(StorageModel::paper_default().table2().len(), 9);
    }

    #[test]
    fn halving_entries_roughly_halves_overhead() {
        // §3.2: "If the number of entries is halved, the overhead is
        // nearly halved, to 3%."
        let m = StorageModel::paper_default();
        let full = m.row(16384, 512).cache_space_overhead;
        let half = m.row(8192, 512).cache_space_overhead;
        assert!(half < full * 0.55 && half > full * 0.45);
    }
}
