//! A Jetty-style snoop filter (related work, §2).
//!
//! Moshovos et al.'s JETTY (HPCA 2001) sits between the bus and each
//! cache's tag array and answers "is this line *definitely not* here?"
//! so that snoop-induced tag lookups — a large power cost in SMP servers
//! — can be skipped. As the paper notes when positioning CGCT:
//!
//! > "Jetty can reduce the overhead of maintaining coherence; however
//! > Jetty does not avoid sending requests and does not reduce request
//! > latency."
//!
//! This implementation is an *exclusive* Jetty: a pair of counting hash
//! arrays updated on every fill and eviction. A line is definitely absent
//! when either array's counter is zero (no false negatives as long as
//! the bookkeeping is exact, which the memory system guarantees).

use cgct_cache::LineAddr;

/// A counting-filter Jetty for one cache.
///
/// # Examples
///
/// ```
/// use cgct::JettyFilter;
/// use cgct_cache::LineAddr;
///
/// let mut j = JettyFilter::paper_default();
/// assert!(!j.maybe_present(LineAddr(42)));
/// j.insert(LineAddr(42));
/// assert!(j.maybe_present(LineAddr(42)));
/// j.remove(LineAddr(42));
/// assert!(!j.maybe_present(LineAddr(42)));
/// ```
#[derive(Debug, Clone)]
pub struct JettyFilter {
    a: Vec<u32>,
    b: Vec<u32>,
    queries: u64,
    filtered: u64,
}

impl JettyFilter {
    /// Creates a filter with two `entries`-counter arrays.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "Jetty arrays must be powers of two"
        );
        JettyFilter {
            a: vec![0; entries],
            b: vec![0; entries],
            queries: 0,
            filtered: 0,
        }
    }

    /// Sized for the 16K-line L2 of Table 3: two 16K-counter arrays
    /// (about 16 KB of 4-bit counters — small beside the 1 MB cache, as
    /// in the HPCA 2001 evaluation's include-Jetty). At a load factor of
    /// ~1 per array, roughly 60% of absent-line snoops are filtered.
    pub fn paper_default() -> Self {
        JettyFilter::new(16 * 1024)
    }

    fn idx_a(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.a.len() - 1)
    }

    fn idx_b(&self, line: LineAddr) -> usize {
        let h = line.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & (self.b.len() - 1)
    }

    /// Records a line entering the cache.
    pub fn insert(&mut self, line: LineAddr) {
        let (ia, ib) = (self.idx_a(line), self.idx_b(line));
        self.a[ia] += 1;
        self.b[ib] += 1;
    }

    /// Records a line leaving the cache.
    ///
    /// # Panics
    ///
    /// Panics if the counters would underflow (a bookkeeping bug that
    /// could otherwise cause unsafe false negatives).
    pub fn remove(&mut self, line: LineAddr) {
        let (ia, ib) = (self.idx_a(line), self.idx_b(line));
        assert!(
            self.a[ia] > 0 && self.b[ib] > 0,
            "Jetty underflow for {line}"
        );
        self.a[ia] -= 1;
        self.b[ib] -= 1;
    }

    /// Answers a snoop: `false` means the line is definitely absent and
    /// the tag lookup can be skipped.
    pub fn maybe_present(&mut self, line: LineAddr) -> bool {
        self.queries += 1;
        let present = self.a[self.idx_a(line)] > 0 && self.b[self.idx_b(line)] > 0;
        if !present {
            self.filtered += 1;
        }
        present
    }

    /// Total snoop queries answered.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Queries answered "definitely absent" (tag lookups saved).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Clears the statistics (contents untouched).
    pub fn reset_stats(&mut self) {
        self.queries = 0;
        self.filtered = 0;
    }

    /// Snapshots both counter arrays and the statistics.
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([
            ("a", self.a.snap()),
            ("b", self.b.snap()),
            ("queries", Json::u64(self.queries)),
            ("filtered", Json::u64(self.filtered)),
        ])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into a
    /// filter of the same size.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or an array-size mismatch.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::unsnap_field;
        let a: Vec<u32> = unsnap_field(v, "a")?;
        let b: Vec<u32> = unsnap_field(v, "b")?;
        if a.len() != self.a.len() || b.len() != self.b.len() {
            return Err("Jetty array size mismatch".to_string());
        }
        self.a = a;
        self.b = b;
        self.queries = unsnap_field(v, "queries")?;
        self.filtered = unsnap_field(v, "filtered")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_false_negative() {
        let mut j = JettyFilter::new(16); // tiny: heavy aliasing
        let lines: Vec<LineAddr> = (0..200).map(LineAddr).collect();
        for &l in &lines {
            j.insert(l);
        }
        for &l in &lines {
            assert!(j.maybe_present(l), "{l} wrongly filtered");
        }
    }

    #[test]
    fn filters_after_removal() {
        let mut j = JettyFilter::new(64);
        j.insert(LineAddr(5));
        j.insert(LineAddr(9));
        j.remove(LineAddr(5));
        // 9 is still in; 5 may alias with 9 in one array but both arrays
        // zero out only when truly absent — with these indices they don't
        // collide, so 5 is filtered.
        assert!(j.maybe_present(LineAddr(9)));
        assert!(!j.maybe_present(LineAddr(5)));
        assert_eq!(j.filtered(), 1);
        assert_eq!(j.queries(), 2);
    }

    #[test]
    fn aliasing_gives_false_positives_not_negatives() {
        let mut j = JettyFilter::new(1); // everything aliases
        j.insert(LineAddr(1));
        assert!(j.maybe_present(LineAddr(2)), "false positive is allowed");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_is_a_bug() {
        let mut j = JettyFilter::new(8);
        j.remove(LineAddr(3));
    }

    #[test]
    fn stats_reset() {
        let mut j = JettyFilter::new(8);
        let _ = j.maybe_present(LineAddr(1));
        j.reset_stats();
        assert_eq!(j.queries(), 0);
        assert_eq!(j.filtered(), 0);
    }
}
