//! The seven stable region states of Table 1.
//!
//! A region state summarizes, for one large aligned region of memory:
//!
//! * the **local part** — whether this processor's cached lines of the
//!   region are all unmodified (`Clean`) or may include modified/modifiable
//!   copies (`Dirty`);
//! * the **external part** — whether *other* processors cache no lines
//!   (`Invalid`), only unmodified lines (`Clean`), or possibly modified
//!   lines (`Dirty`).
//!
//! | State | Processor | Other processors | Broadcast needed? |
//! |---|---|---|---|
//! | I  | no cached copies | unknown | yes |
//! | CI | unmodified only | none | no |
//! | CC | unmodified only | unmodified only | for modifiable copy |
//! | CD | unmodified only | may have modified | yes |
//! | DI | may have modified | none | no |
//! | DC | may have modified | unmodified only | for modifiable copy |
//! | DD | may have modified | may have modified | yes |

use cgct_cache::ReqKind;
use std::fmt;

/// Local half of a region state: the status of *this* processor's cached
/// lines within the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocalPart {
    /// All cached lines of the region are unmodified shared (S) copies.
    Clean,
    /// Some cached line may be modified or silently modifiable (M/O/E).
    Dirty,
}

/// External half of a region state: the status of the region in *other*
/// processors' caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExternalPart {
    /// No other processor caches lines of the region.
    Invalid,
    /// Other processors hold only unmodified (S) copies.
    Clean,
    /// Other processors may hold modified or modifiable (M/O/E) copies.
    Dirty,
}

/// What the region state allows for a given request (Table 1's
/// "Broadcast Needed?" column, refined by request kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionPermission {
    /// The request must be broadcast to all coherence agents.
    Broadcast,
    /// The request can be sent directly to the owning memory controller.
    DirectToMemory,
    /// The request completes with no external request at all
    /// (upgrades and `dcbz` in an exclusive region, §1.2).
    CompleteLocally,
}

/// A stable region coherence state (Table 1).
///
/// # Examples
///
/// ```
/// use cgct::{ExternalPart, LocalPart, RegionState};
///
/// let s = RegionState::compose(LocalPart::Clean, ExternalPart::Dirty);
/// assert_eq!(s, RegionState::CleanDirty);
/// assert_eq!(s.local(), Some(LocalPart::Clean));
/// assert!(!s.is_exclusive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum RegionState {
    /// No lines cached by this processor; other processors unknown.
    #[default]
    Invalid,
    /// Clean-Invalid: local unmodified copies only; no external copies.
    CleanInvalid,
    /// Clean-Clean: local and external unmodified copies only.
    CleanClean,
    /// Clean-Dirty: local unmodified; external may have modified copies.
    CleanDirty,
    /// Dirty-Invalid: local may have modified copies; no external copies.
    DirtyInvalid,
    /// Dirty-Clean: local may have modified; external unmodified only.
    DirtyClean,
    /// Dirty-Dirty: both sides may have modified copies.
    DirtyDirty,
}

impl RegionState {
    /// All seven stable states, Invalid first.
    pub const ALL: [RegionState; 7] = [
        RegionState::Invalid,
        RegionState::CleanInvalid,
        RegionState::CleanClean,
        RegionState::CleanDirty,
        RegionState::DirtyInvalid,
        RegionState::DirtyClean,
        RegionState::DirtyDirty,
    ];

    /// Builds a valid state from its two halves.
    pub fn compose(local: LocalPart, external: ExternalPart) -> RegionState {
        use ExternalPart as E;
        use LocalPart as L;
        match (local, external) {
            (L::Clean, E::Invalid) => RegionState::CleanInvalid,
            (L::Clean, E::Clean) => RegionState::CleanClean,
            (L::Clean, E::Dirty) => RegionState::CleanDirty,
            (L::Dirty, E::Invalid) => RegionState::DirtyInvalid,
            (L::Dirty, E::Clean) => RegionState::DirtyClean,
            (L::Dirty, E::Dirty) => RegionState::DirtyDirty,
        }
    }

    /// The local half, or `None` for [`RegionState::Invalid`].
    pub fn local(self) -> Option<LocalPart> {
        match self {
            RegionState::Invalid => None,
            RegionState::CleanInvalid | RegionState::CleanClean | RegionState::CleanDirty => {
                Some(LocalPart::Clean)
            }
            RegionState::DirtyInvalid | RegionState::DirtyClean | RegionState::DirtyDirty => {
                Some(LocalPart::Dirty)
            }
        }
    }

    /// The external half, or `None` for [`RegionState::Invalid`].
    pub fn external(self) -> Option<ExternalPart> {
        match self {
            RegionState::Invalid => None,
            RegionState::CleanInvalid | RegionState::DirtyInvalid => Some(ExternalPart::Invalid),
            RegionState::CleanClean | RegionState::DirtyClean => Some(ExternalPart::Clean),
            RegionState::CleanDirty | RegionState::DirtyDirty => Some(ExternalPart::Dirty),
        }
    }

    /// Whether the region is present (any state but Invalid).
    pub fn is_valid(self) -> bool {
        self != RegionState::Invalid
    }

    /// *Exclusive* states (CI, DI): no other processor caches lines of the
    /// region, so no request for it needs a broadcast.
    pub fn is_exclusive(self) -> bool {
        self.external() == Some(ExternalPart::Invalid)
    }

    /// *Externally clean* states (CC, DC): reads of shared copies (such as
    /// instruction fetches) may skip the broadcast.
    pub fn is_externally_clean(self) -> bool {
        self.external() == Some(ExternalPart::Clean)
    }

    /// *Externally dirty* states (CD, DD): every request except write-backs
    /// must broadcast.
    pub fn is_externally_dirty(self) -> bool {
        self.external() == Some(ExternalPart::Dirty)
    }

    /// What this state allows for request `req` (Table 1).
    ///
    /// * Exclusive states allow everything without broadcast; upgrades and
    ///   `dcbz` complete locally (no external request), data fetches go
    ///   directly to memory.
    /// * Externally clean states additionally allow shared reads
    ///   (instruction fetches) to go directly to memory.
    /// * Any valid state allows write-backs to go directly to the memory
    ///   controller recorded in the region entry (§5.1).
    pub fn permission(self, req: ReqKind) -> RegionPermission {
        use RegionPermission::*;
        match req {
            ReqKind::Writeback => {
                if self.is_valid() {
                    DirectToMemory
                } else {
                    Broadcast
                }
            }
            ReqKind::ReadShared => {
                if self.is_exclusive() || self.is_externally_clean() {
                    DirectToMemory
                } else {
                    Broadcast
                }
            }
            ReqKind::Read | ReqKind::ReadExclusive => {
                if self.is_exclusive() {
                    DirectToMemory
                } else {
                    Broadcast
                }
            }
            ReqKind::Upgrade | ReqKind::Dcbz => {
                if self.is_exclusive() {
                    CompleteLocally
                } else {
                    Broadcast
                }
            }
        }
    }

    /// Two-letter mnemonic from the paper (`I`, `CI`, `CC`, `CD`, `DI`,
    /// `DC`, `DD`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            RegionState::Invalid => "I",
            RegionState::CleanInvalid => "CI",
            RegionState::CleanClean => "CC",
            RegionState::CleanDirty => "CD",
            RegionState::DirtyInvalid => "DI",
            RegionState::DirtyClean => "DC",
            RegionState::DirtyDirty => "DD",
        }
    }
}

impl fmt::Display for RegionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl cgct_sim::Snap for RegionState {
    fn snap(&self) -> cgct_sim::Json {
        cgct_sim::Json::str(self.mnemonic())
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        let name = v.as_str().ok_or("expected region-state mnemonic")?;
        RegionState::ALL
            .into_iter()
            .find(|s| s.mnemonic() == name)
            .ok_or_else(|| format!("unknown region state {name:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use RegionState::*;

    #[test]
    fn compose_and_decompose_roundtrip() {
        for s in RegionState::ALL {
            if let (Some(l), Some(e)) = (s.local(), s.external()) {
                assert_eq!(RegionState::compose(l, e), s);
            } else {
                assert_eq!(s, Invalid);
            }
        }
    }

    #[test]
    fn classification_matches_paper() {
        // §3.1: "The states CI and DI are the exclusive states ... CC and
        // DC are externally clean ... CD and DD are the externally dirty".
        assert!(CleanInvalid.is_exclusive() && DirtyInvalid.is_exclusive());
        assert!(CleanClean.is_externally_clean() && DirtyClean.is_externally_clean());
        assert!(CleanDirty.is_externally_dirty() && DirtyDirty.is_externally_dirty());
        assert!(!Invalid.is_exclusive() && !Invalid.is_externally_clean());
    }

    #[test]
    fn table1_broadcast_rules() {
        use cgct_cache::ReqKind::*;
        use RegionPermission::*;
        // Invalid: broadcast needed — yes (for everything).
        for req in [Read, ReadShared, ReadExclusive, Upgrade, Writeback, Dcbz] {
            assert_eq!(Invalid.permission(req), Broadcast);
        }
        // CI/DI: broadcast needed — no.
        for s in [CleanInvalid, DirtyInvalid] {
            assert_eq!(s.permission(Read), DirectToMemory);
            assert_eq!(s.permission(ReadShared), DirectToMemory);
            assert_eq!(s.permission(ReadExclusive), DirectToMemory);
            assert_eq!(s.permission(Upgrade), CompleteLocally);
            assert_eq!(s.permission(Dcbz), CompleteLocally);
            assert_eq!(s.permission(Writeback), DirectToMemory);
        }
        // CC/DC: broadcast needed — only for a modifiable copy.
        for s in [CleanClean, DirtyClean] {
            assert_eq!(s.permission(ReadShared), DirectToMemory);
            assert_eq!(s.permission(Read), Broadcast);
            assert_eq!(s.permission(ReadExclusive), Broadcast);
            assert_eq!(s.permission(Upgrade), Broadcast);
            assert_eq!(s.permission(Writeback), DirectToMemory);
        }
        // CD/DD: broadcast needed — yes (except write-backs, which only
        // need the memory-controller index kept in the region entry).
        for s in [CleanDirty, DirtyDirty] {
            for req in [Read, ReadShared, ReadExclusive, Upgrade, Dcbz] {
                assert_eq!(s.permission(req), Broadcast, "{s} {req:?}");
            }
            assert_eq!(s.permission(Writeback), DirectToMemory);
        }
    }

    #[test]
    fn loads_are_not_treated_as_shared_reads() {
        // §3.1: "memory read-requests originating from loads are broadcast
        // unless the region state is CI or DI" — loads may obtain exclusive
        // copies, so CC/DC are not sufficient.
        assert_eq!(
            CleanClean.permission(cgct_cache::ReqKind::Read),
            RegionPermission::Broadcast
        );
    }

    #[test]
    fn mnemonics() {
        let names: Vec<&str> = RegionState::ALL.iter().map(|s| s.mnemonic()).collect();
        assert_eq!(names, ["I", "CI", "CC", "CD", "DI", "DC", "DD"]);
        assert_eq!(DirtyClean.to_string(), "DC");
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(RegionState::default(), Invalid);
    }
}
