//! Coarse-Grain Coherence Tracking (CGCT) — the contribution of
//! *"Improving Multiprocessor Performance with Coarse-Grain Coherence
//! Tracking"* (Cantin, Lipasti, Smith — ISCA 2005).
//!
//! A conventional snooping multiprocessor broadcasts every memory request
//! so other caches can be checked, yet on average 67% of those broadcasts
//! find no cached copies anywhere. CGCT adds a **Region Coherence Array
//! (RCA)** beside each processor's L2 tags that tracks coherence status for
//! large aligned *regions* (4–16 cache lines). When the region state proves
//! no other processor caches lines of a region, requests are sent directly
//! to the memory controller — or, for upgrades and `dcbz`, completed with
//! no external request at all — without violating coherence.
//!
//! This crate contains the protocol itself, independent of simulation
//! timing:
//!
//! * [`RegionState`] — the seven stable states of Table 1 and their
//!   broadcast rules;
//! * [`protocol`] — the transition functions of Figures 3–5;
//! * [`RegionSnoopResponse`] — the two extra snoop-response bits (§3.4);
//! * [`RegionCoherenceArray`] — the RCA with line counts, inclusion,
//!   empty-region-favoring replacement, and self-invalidation (§3.2);
//! * [`overhead`] — the storage-overhead model of Table 2;
//! * [`scaled`] — the scaled-back one-bit/three-state variant (§3.4);
//! * [`regionscout`] — a RegionScout-style imprecise filter (related work,
//!   §2) for comparison.
//!
//! # Examples
//!
//! ```
//! use cgct::{RegionState, RegionPermission};
//! use cgct_cache::ReqKind;
//!
//! // A region held Dirty-Invalid: this processor may have modified lines,
//! // nobody else caches the region — stores need no broadcast.
//! let s = RegionState::DirtyInvalid;
//! assert_eq!(s.permission(ReqKind::ReadExclusive), RegionPermission::DirectToMemory);
//! assert_eq!(s.permission(ReqKind::Upgrade), RegionPermission::CompleteLocally);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod jetty;
pub mod overhead;
pub mod protocol;
pub mod rca;
pub mod regionscout;
pub mod response;
pub mod scaled;
pub mod state;

pub use jetty::JettyFilter;
pub use overhead::{OverheadRow, StorageModel};
pub use protocol::{external_next_state, local_fill_next_state, FillKind};
pub use rca::{RcaConfig, RcaStats, RegionCoherenceArray, RegionEntry, RegionEviction};
pub use regionscout::RegionScout;
pub use response::RegionSnoopResponse;
pub use scaled::{ScaledRca, ScaledRegionState};
pub use state::{ExternalPart, LocalPart, RegionPermission, RegionState};
