//! The region snoop response (§3.4).
//!
//! Two additional bits ride on the conventional snoop response: **Region
//! Clean** (some other processor holds unmodified lines of the region) and
//! **Region Dirty** (some other processor may hold modified lines). They
//! are the logical OR of the region status of every processor except the
//! requester.

use crate::state::{ExternalPart, LocalPart, RegionState};

/// Aggregated region snoop response: the two bits of §3.4.
///
/// # Examples
///
/// ```
/// use cgct::{RegionSnoopResponse, RegionState};
/// use cgct::state::ExternalPart;
///
/// let mut agg = RegionSnoopResponse::NONE;
/// agg.merge(RegionSnoopResponse::from_local_state(RegionState::CleanClean));
/// agg.merge(RegionSnoopResponse::from_local_state(RegionState::DirtyInvalid));
/// assert!(agg.clean && agg.dirty);
/// assert_eq!(agg.external_part(), ExternalPart::Dirty);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RegionSnoopResponse {
    /// Some other processor holds the region with clean lines only.
    pub clean: bool,
    /// Some other processor may hold modified lines of the region.
    pub dirty: bool,
}

impl RegionSnoopResponse {
    /// No other processor caches lines of the region.
    pub const NONE: RegionSnoopResponse = RegionSnoopResponse {
        clean: false,
        dirty: false,
    };

    /// One snooped processor's contribution, derived from the *local* half
    /// of its region state: a processor whose cached lines of the region
    /// are all unmodified asserts Region Clean; one that may hold modified
    /// or silently-modifiable lines asserts Region Dirty.
    ///
    /// A processor with no valid entry (or one that just self-invalidated)
    /// contributes nothing.
    pub fn from_local_state(state: RegionState) -> RegionSnoopResponse {
        match state.local() {
            None => RegionSnoopResponse::NONE,
            Some(LocalPart::Clean) => RegionSnoopResponse {
                clean: true,
                dirty: false,
            },
            Some(LocalPart::Dirty) => RegionSnoopResponse {
                clean: false,
                dirty: true,
            },
        }
    }

    /// Wired-OR aggregation across snoopers.
    pub fn merge(&mut self, other: RegionSnoopResponse) {
        self.clean |= other.clean;
        self.dirty |= other.dirty;
    }

    /// The external part the *requester* should record for the region.
    pub fn external_part(self) -> ExternalPart {
        if self.dirty {
            ExternalPart::Dirty
        } else if self.clean {
            ExternalPart::Clean
        } else {
            ExternalPart::Invalid
        }
    }

    /// Whether any other processor caches lines of the region.
    pub fn any(self) -> bool {
        self.clean || self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use RegionState::*;

    #[test]
    fn contribution_uses_local_half() {
        // A snooper in CD holds clean local lines — it answers Region
        // Clean even though *its* view of others is dirty.
        let r = RegionSnoopResponse::from_local_state(CleanDirty);
        assert!(r.clean && !r.dirty);
        let r = RegionSnoopResponse::from_local_state(DirtyClean);
        assert!(!r.clean && r.dirty);
        assert_eq!(
            RegionSnoopResponse::from_local_state(Invalid),
            RegionSnoopResponse::NONE
        );
    }

    #[test]
    fn external_part_priority_is_dirty_over_clean() {
        let r = RegionSnoopResponse {
            clean: true,
            dirty: true,
        };
        assert_eq!(r.external_part(), ExternalPart::Dirty);
        let r = RegionSnoopResponse {
            clean: true,
            dirty: false,
        };
        assert_eq!(r.external_part(), ExternalPart::Clean);
        assert_eq!(
            RegionSnoopResponse::NONE.external_part(),
            ExternalPart::Invalid
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut agg = RegionSnoopResponse::NONE;
        assert!(!agg.any());
        agg.merge(RegionSnoopResponse::from_local_state(CleanInvalid));
        assert!(agg.clean && !agg.dirty && agg.any());
        agg.merge(RegionSnoopResponse::from_local_state(DirtyDirty));
        assert!(agg.clean && agg.dirty);
    }

    #[test]
    fn all_seven_states_contribute_correctly() {
        for s in RegionState::ALL {
            let r = RegionSnoopResponse::from_local_state(s);
            match s {
                Invalid => assert!(!r.any()),
                CleanInvalid | CleanClean | CleanDirty => assert!(r.clean && !r.dirty),
                DirtyInvalid | DirtyClean | DirtyDirty => assert!(r.dirty && !r.clean),
            }
        }
    }
}
