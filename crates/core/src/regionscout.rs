//! A RegionScout-style imprecise region filter (related work, §2).
//!
//! Moshovos's concurrent RegionScout proposal (ISCA 2005) achieves part of
//! CGCT's benefit with far less storage: each node keeps
//!
//! * a **Cached Region Hash (CRH)** — a small, *untagged* table of counters
//!   indexed by a hash of the region number, incremented when a line of a
//!   region is cached. An external snoop answers "region may be cached"
//!   whenever the hashed counter is non-zero, so aliasing yields false
//!   positives (lost opportunity, never incorrectness);
//! * a **Not-Shared Region Table (NSRT)** — a small tagged cache of regions
//!   that a previous miss proved globally uncached, enabling subsequent
//!   requests to skip the broadcast.
//!
//! The paper cites this design as cheaper but less effective than the RCA;
//! this module exists so the benchmark harness can quantify that gap.

use cgct_cache::{RegionAddr, ReqKind, SetAssocArray};
use cgct_sim::Counter;

/// One node's RegionScout structures.
///
/// # Examples
///
/// ```
/// use cgct::RegionScout;
/// use cgct_cache::RegionAddr;
///
/// let mut rs = RegionScout::new(256, 16, 4);
/// let r = RegionAddr(42);
/// assert!(!rs.knows_not_shared(r));
/// rs.record_global_response(r, false); // broadcast found nobody caching it
/// assert!(rs.knows_not_shared(r));
/// ```
#[derive(Debug, Clone)]
pub struct RegionScout {
    crh: Vec<u32>,
    nsrt: SetAssocArray<()>,
    false_positive_candidates: Counter,
    nsrt_hits: Counter,
}

impl RegionScout {
    /// Creates a filter with a `crh_entries`-counter CRH (power of two)
    /// and an NSRT of `nsrt_sets` × `nsrt_ways` regions.
    ///
    /// # Panics
    ///
    /// Panics if `crh_entries` is not a power of two.
    pub fn new(crh_entries: usize, nsrt_sets: usize, nsrt_ways: usize) -> Self {
        assert!(
            crh_entries.is_power_of_two(),
            "CRH size must be a power of two"
        );
        RegionScout {
            crh: vec![0; crh_entries],
            nsrt: SetAssocArray::new(nsrt_sets, nsrt_ways),
            false_positive_candidates: Counter::new(),
            nsrt_hits: Counter::new(),
        }
    }

    /// A RegionScout sized as in Moshovos's evaluation: 2K-counter CRH and
    /// a 64-entry NSRT.
    pub fn paper_default() -> Self {
        RegionScout::new(2048, 16, 4)
    }

    fn crh_index(&self, region: RegionAddr) -> usize {
        // Fibonacci multiplicative hash, folded to the table size.
        let h = region.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & (self.crh.len() - 1)
    }

    /// Records that a line of `region` entered this node's cache.
    pub fn line_cached(&mut self, region: RegionAddr) {
        let i = self.crh_index(region);
        self.crh[i] += 1;
    }

    /// Records that a line of `region` left this node's cache.
    ///
    /// # Panics
    ///
    /// Panics if the hashed counter is already zero (bookkeeping bug).
    pub fn line_uncached(&mut self, region: RegionAddr) {
        let i = self.crh_index(region);
        assert!(self.crh[i] > 0, "CRH underflow for {region}");
        self.crh[i] -= 1;
    }

    /// Whether a previous global response proved `region` unshared, so the
    /// next request may skip the broadcast. Write-backs are not covered:
    /// RegionScout keeps no memory-controller routing state.
    pub fn permits_direct(&mut self, region: RegionAddr, req: ReqKind) -> bool {
        req != ReqKind::Writeback && self.knows_not_shared(region)
    }

    /// NSRT lookup.
    pub fn knows_not_shared(&mut self, region: RegionAddr) -> bool {
        let hit = self.nsrt.contains(region.0);
        if hit {
            self.nsrt.touch(region.0);
            self.nsrt_hits.inc();
        }
        hit
    }

    /// Feeds back a broadcast's global response: when no node reported the
    /// region cached, it is entered into the NSRT.
    pub fn record_global_response(&mut self, region: RegionAddr, externally_cached: bool) {
        if externally_cached {
            self.nsrt.remove(region.0);
        } else {
            self.nsrt.insert_lru(region.0, ());
        }
    }

    /// Answers an external snoop: `true` when the region *may* be cached
    /// here (CRH counter non-zero — possibly a false positive). Also
    /// invalidates any NSRT entry for the region, since the requester is
    /// about to cache lines in it.
    pub fn external_request(&mut self, region: RegionAddr, my_region_line_count: u32) -> bool {
        self.nsrt.remove(region.0);
        let may_be_cached = self.crh[self.crh_index(region)] > 0;
        if may_be_cached && my_region_line_count == 0 {
            // The counter is non-zero only because of aliasing.
            self.false_positive_candidates.inc();
        }
        may_be_cached
    }

    /// Number of external snoops answered "cached" purely due to hash
    /// aliasing (requires the caller to pass the true per-region count).
    pub fn false_positives(&self) -> u64 {
        self.false_positive_candidates.value()
    }

    /// Number of NSRT hits (broadcasts avoided).
    pub fn nsrt_hits(&self) -> u64 {
        self.nsrt_hits.value()
    }

    /// Clears collected statistics (filter contents are untouched).
    pub fn reset_stats(&mut self) {
        self.false_positive_candidates = Counter::new();
        self.nsrt_hits = Counter::new();
    }
}

impl RegionScout {
    /// Snapshots the CRH counters, NSRT contents, and statistics.
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([
            ("crh", self.crh.snap()),
            ("nsrt", self.nsrt.snap()),
            ("false_positives", self.false_positive_candidates.snap()),
            ("nsrt_hits", self.nsrt_hits.snap()),
        ])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into a
    /// filter of the same shape.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or a CRH/NSRT size mismatch.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{field, unsnap_field, Snap};
        let crh: Vec<u32> = unsnap_field(v, "crh")?;
        if crh.len() != self.crh.len() {
            return Err("CRH size mismatch".to_string());
        }
        let nsrt = SetAssocArray::unsnap(field(v, "nsrt")?)?;
        if nsrt.sets() != self.nsrt.sets() || nsrt.ways() != self.nsrt.ways() {
            return Err("NSRT geometry mismatch".to_string());
        }
        self.crh = crh;
        self.nsrt = nsrt;
        self.false_positive_candidates = unsnap_field(v, "false_positives")?;
        self.nsrt_hits = unsnap_field(v, "nsrt_hits")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nsrt_learns_from_global_responses() {
        let mut rs = RegionScout::new(64, 2, 2);
        let r = RegionAddr(5);
        assert!(!rs.permits_direct(r, ReqKind::Read));
        rs.record_global_response(r, false);
        assert!(rs.permits_direct(r, ReqKind::Read));
        assert_eq!(rs.nsrt_hits(), 1);
        // A positive response clears the entry.
        rs.record_global_response(r, true);
        assert!(!rs.permits_direct(r, ReqKind::Read));
    }

    #[test]
    fn writebacks_never_go_direct() {
        let mut rs = RegionScout::new(64, 2, 2);
        let r = RegionAddr(5);
        rs.record_global_response(r, false);
        assert!(!rs.permits_direct(r, ReqKind::Writeback));
    }

    #[test]
    fn crh_counts_cached_lines() {
        let mut rs = RegionScout::new(64, 2, 2);
        let r = RegionAddr(7);
        assert!(!rs.external_request(r, 0));
        rs.line_cached(r);
        assert!(rs.external_request(r, 1));
        rs.line_uncached(r);
        assert!(!rs.external_request(r, 0));
    }

    #[test]
    fn external_request_invalidates_nsrt() {
        let mut rs = RegionScout::new(64, 2, 2);
        let r = RegionAddr(9);
        rs.record_global_response(r, false);
        let _ = rs.external_request(r, 0);
        assert!(!rs.knows_not_shared(r));
    }

    #[test]
    fn aliasing_counts_as_false_positive() {
        // With a single-counter CRH every region aliases together.
        let mut rs = RegionScout::new(1, 2, 2);
        rs.line_cached(RegionAddr(1));
        assert!(rs.external_request(RegionAddr(2), 0));
        assert_eq!(rs.false_positives(), 1);
    }

    #[test]
    #[should_panic(expected = "CRH underflow")]
    fn crh_underflow_panics() {
        let mut rs = RegionScout::new(64, 2, 2);
        rs.line_uncached(RegionAddr(3));
    }
}
