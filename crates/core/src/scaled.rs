//! The scaled-back implementation of §3.4.
//!
//! Instead of the two Region-Clean/Region-Dirty response bits and seven
//! states, this variant uses **one** additional snoop-response bit ("region
//! cached externally") and three region states: exclusive, not-exclusive,
//! and invalid. It is cheaper but cannot let instruction fetches bypass
//! the broadcast in externally-clean regions.

use crate::state::RegionPermission;
use cgct_cache::{Geometry, RegionAddr, ReqKind, SetAssocArray};
use cgct_sim::Counter;

/// Region state of the scaled-back protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScaledRegionState {
    /// No region entry.
    #[default]
    Invalid,
    /// No other processor caches lines of the region.
    Exclusive,
    /// Some other processor may cache lines of the region.
    NotExclusive,
}

impl ScaledRegionState {
    /// Broadcast rule for the three-state protocol: exclusive regions can
    /// skip every broadcast; valid regions route write-backs directly; all
    /// else broadcasts.
    pub fn permission(self, req: ReqKind) -> RegionPermission {
        use RegionPermission::*;
        match (self, req) {
            (ScaledRegionState::Exclusive, ReqKind::Upgrade | ReqKind::Dcbz) => CompleteLocally,
            (ScaledRegionState::Exclusive, _) => DirectToMemory,
            (ScaledRegionState::NotExclusive, ReqKind::Writeback) => DirectToMemory,
            _ => Broadcast,
        }
    }
}

/// One entry of the scaled-back array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScaledEntry {
    state: ScaledRegionState,
    line_count: u32,
    mc: u8,
}

/// A Region Coherence Array for the scaled-back protocol.
///
/// # Examples
///
/// ```
/// use cgct::{ScaledRca, RegionPermission};
/// use cgct_cache::{Geometry, RegionAddr, ReqKind};
///
/// let mut rca = ScaledRca::new(8192, 2, Geometry::new(64, 512));
/// let r = RegionAddr(9);
/// assert_eq!(rca.permission(r, ReqKind::Read), RegionPermission::Broadcast);
/// rca.local_fill(r, Some(false), 0); // broadcast response: not cached anywhere
/// assert_eq!(rca.permission(r, ReqKind::Read), RegionPermission::DirectToMemory);
/// ```
#[derive(Debug, Clone)]
pub struct ScaledRca {
    array: SetAssocArray<ScaledEntry>,
    geometry: Geometry,
    self_invalidations: Counter,
}

impl ScaledRca {
    /// Creates an empty array with `sets` × `ways` entries.
    pub fn new(sets: usize, ways: usize, geometry: Geometry) -> Self {
        ScaledRca {
            array: SetAssocArray::new(sets, ways),
            geometry,
            self_invalidations: Counter::new(),
        }
    }

    /// The region/line geometry in use.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Current state of `region`.
    pub fn state(&self, region: RegionAddr) -> ScaledRegionState {
        self.array
            .get(region.0)
            .map_or(ScaledRegionState::Invalid, |e| e.state)
    }

    /// Broadcast decision for `req` on `region`.
    pub fn permission(&self, region: RegionAddr, req: ReqKind) -> RegionPermission {
        self.state(region).permission(req)
    }

    /// Applies a local completion. `externally_cached` is the single
    /// response bit when the request was broadcast, or `None` for direct
    /// requests (state preserved).
    ///
    /// Returns a displaced `(region, line_count)` pair whose lines must be
    /// flushed for inclusion.
    pub fn local_fill(
        &mut self,
        region: RegionAddr,
        externally_cached: Option<bool>,
        mc: u8,
    ) -> Option<(RegionAddr, u32)> {
        if let Some(e) = self.array.access(region.0) {
            if let Some(cached) = externally_cached {
                e.state = if cached {
                    ScaledRegionState::NotExclusive
                } else {
                    ScaledRegionState::Exclusive
                };
            }
            return None;
        }
        let cached =
            // cgct-lint: allow(D006) direct requests are only issued for valid region entries (checked upstream); fail-stop on a broken protocol invariant
            externally_cached.expect("direct request issued with no valid scaled region entry");
        let entry = ScaledEntry {
            state: if cached {
                ScaledRegionState::NotExclusive
            } else {
                ScaledRegionState::Exclusive
            },
            line_count: 0,
            mc,
        };
        self.array
            .insert_with_victim(region.0, entry, |cands| {
                // Same empty-region preference as the full RCA.
                cands
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.entry.line_count == 0)
                    .min_by_key(|(_, c)| c.last_use)
                    .or_else(|| cands.iter().enumerate().min_by_key(|(_, c)| c.last_use))
                    .map(|(i, _)| i)
                    // cgct-lint: allow(D006) a full set always offers replacement candidates; fail-stop on a broken replacement invariant
                    .expect("full set has candidates")
            })
            .map(|(k, e)| (RegionAddr(k), e.line_count))
    }

    /// Handles an external request: returns this processor's contribution
    /// to the single "region cached externally" response bit, applying
    /// self-invalidation when no lines are cached.
    pub fn external_request(&mut self, region: RegionAddr, req: ReqKind) -> bool {
        let Some(e) = self.array.get_mut(region.0) else {
            return false;
        };
        if req == ReqKind::Writeback {
            return false;
        }
        if e.line_count == 0 {
            self.array.remove(region.0);
            self.self_invalidations.inc();
            return false;
        }
        e.state = ScaledRegionState::NotExclusive;
        true
    }

    /// Inclusion bookkeeping: a line of `region` entered the cache.
    ///
    /// # Panics
    ///
    /// Panics if the region has no entry or the count would overflow the
    /// region's line capacity.
    pub fn line_cached(&mut self, region: RegionAddr) {
        let cap = self.geometry.lines_per_region() as u32;
        let e = self
            .array
            .get_mut(region.0)
            // cgct-lint: allow(D006) scaled-RCA inclusion invariant: every cached line has a region entry; fail-stop on violation
            .expect("inclusion violated: cached line with no scaled region entry");
        e.line_count += 1;
        assert!(e.line_count <= cap, "scaled line count exceeds capacity");
    }

    /// Inclusion bookkeeping: a line of `region` left the cache.
    ///
    /// # Panics
    ///
    /// Panics if the region has no entry or its count is already zero.
    pub fn line_uncached(&mut self, region: RegionAddr) {
        let e = self
            .array
            .get_mut(region.0)
            // cgct-lint: allow(D006) scaled-RCA inclusion invariant: every cached line has a region entry; fail-stop on violation
            .expect("inclusion violated: evicted line with no scaled region entry");
        assert!(e.line_count > 0, "scaled line count underflow");
        e.line_count -= 1;
    }

    /// The memory controller recorded for `region`, if present.
    pub fn mc(&self, region: RegionAddr) -> Option<u8> {
        self.array.get(region.0).map(|e| e.mc)
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Self-invalidation count.
    pub fn self_invalidations(&self) -> u64 {
        self.self_invalidations.value()
    }

    /// Clears collected statistics (array contents are untouched).
    pub fn reset_stats(&mut self) {
        self.self_invalidations = Counter::new();
    }
}

impl cgct_sim::Snap for ScaledRegionState {
    fn snap(&self) -> cgct_sim::Json {
        cgct_sim::Json::str(match self {
            ScaledRegionState::Invalid => "I",
            ScaledRegionState::Exclusive => "E",
            ScaledRegionState::NotExclusive => "NE",
        })
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        match v.as_str() {
            Some("I") => Ok(ScaledRegionState::Invalid),
            Some("E") => Ok(ScaledRegionState::Exclusive),
            Some("NE") => Ok(ScaledRegionState::NotExclusive),
            other => Err(format!("unknown scaled region state {other:?}")),
        }
    }
}

impl cgct_sim::Snap for ScaledEntry {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("s", self.state.snap()),
            ("n", Json::u64(self.line_count as u64)),
            ("mc", Json::u64(self.mc as u64)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(ScaledEntry {
            state: unsnap_field(v, "s")?,
            line_count: unsnap_field(v, "n")?,
            mc: unsnap_field(v, "mc")?,
        })
    }
}

impl ScaledRca {
    /// Snapshots the array contents and statistics.
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([
            ("array", self.array.snap()),
            ("self_invalidations", self.self_invalidations.snap()),
        ])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into an
    /// array of the same geometry.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or an array-geometry mismatch.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{field, unsnap_field, Snap};
        let array = SetAssocArray::unsnap(field(v, "array")?)?;
        if array.sets() != self.array.sets() || array.ways() != self.array.ways() {
            return Err("scaled RCA geometry mismatch".to_string());
        }
        self.array = array;
        self.self_invalidations = unsnap_field(v, "self_invalidations")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rca() -> ScaledRca {
        ScaledRca::new(2, 2, Geometry::new(64, 512))
    }

    #[test]
    fn three_state_permissions() {
        use RegionPermission::*;
        use ScaledRegionState::*;
        for req in [ReqKind::Read, ReqKind::ReadShared, ReqKind::ReadExclusive] {
            assert_eq!(Invalid.permission(req), Broadcast);
            assert_eq!(Exclusive.permission(req), DirectToMemory);
            assert_eq!(NotExclusive.permission(req), Broadcast);
        }
        assert_eq!(Exclusive.permission(ReqKind::Upgrade), CompleteLocally);
        assert_eq!(Exclusive.permission(ReqKind::Dcbz), CompleteLocally);
        assert_eq!(NotExclusive.permission(ReqKind::Writeback), DirectToMemory);
        assert_eq!(Invalid.permission(ReqKind::Writeback), Broadcast);
    }

    #[test]
    fn ifetch_cannot_bypass_in_not_exclusive() {
        // The one-bit response cannot distinguish externally-clean from
        // externally-dirty, so shared reads lose their bypass (unlike the
        // seven-state protocol's CC/DC states).
        assert_eq!(
            ScaledRegionState::NotExclusive.permission(ReqKind::ReadShared),
            RegionPermission::Broadcast
        );
    }

    #[test]
    fn fill_and_external_downgrade() {
        let mut r = rca();
        let region = RegionAddr(4);
        r.local_fill(region, Some(false), 1);
        assert_eq!(r.state(region), ScaledRegionState::Exclusive);
        assert_eq!(r.mc(region), Some(1));
        r.line_cached(region);
        assert!(r.external_request(region, ReqKind::Read));
        assert_eq!(r.state(region), ScaledRegionState::NotExclusive);
    }

    #[test]
    fn self_invalidation_on_empty() {
        let mut r = rca();
        let region = RegionAddr(4);
        r.local_fill(region, Some(false), 0);
        assert!(!r.external_request(region, ReqKind::ReadExclusive));
        assert_eq!(r.state(region), ScaledRegionState::Invalid);
        assert_eq!(r.self_invalidations(), 1);
    }

    #[test]
    fn eviction_reports_line_count() {
        let mut r = rca();
        let a = RegionAddr(0);
        let b = RegionAddr(2);
        r.local_fill(a, Some(false), 0);
        r.line_cached(a);
        r.local_fill(b, Some(false), 0);
        r.line_cached(b);
        let ev = r.local_fill(RegionAddr(4), Some(true), 0).expect("evicts");
        assert_eq!(ev, (a, 1));
    }

    #[test]
    fn broadcast_response_refreshes_state() {
        let mut r = rca();
        let region = RegionAddr(4);
        r.local_fill(region, Some(true), 0);
        assert_eq!(r.state(region), ScaledRegionState::NotExclusive);
        // A later broadcast finds the region free again.
        r.local_fill(region, Some(false), 0);
        assert_eq!(r.state(region), ScaledRegionState::Exclusive);
    }
}
