//! The Region Coherence Array (§3.2).
//!
//! One RCA sits beside each processor's L2 tags. It is organized like the
//! L2 (8K sets × 2 ways in the paper), stores a [`RegionEntry`] per region,
//! and maintains **inclusion** with the cache: every cached line has a
//! valid covering region entry, tracked with a per-region line count. The
//! count also enables two of the paper's optimizations:
//!
//! * **replacement that favors empty regions** — evicting a region with
//!   cached lines forces those lines out of the cache, so regions with a
//!   zero line count are preferred victims;
//! * **region self-invalidation** — when an external request hits a region
//!   whose line count is zero, the entry is invalidated so the requester
//!   can obtain the region exclusively (critical for migratory data).

use crate::protocol::{external_next_state, local_fill_next_state, FillKind};
use crate::response::RegionSnoopResponse;
use crate::state::{RegionPermission, RegionState};
use cgct_cache::{Geometry, RegionAddr, ReqKind, SetAssocArray};
use cgct_sim::{Counter, Histogram};

/// Configuration of one Region Coherence Array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcaConfig {
    /// Number of sets (paper: 8192, same as the L2 tags; Figure 9 halves
    /// this to 4096).
    pub sets: usize,
    /// Associativity (paper: 2, same as the L2).
    pub ways: usize,
    /// Line/region geometry.
    pub geometry: Geometry,
    /// Region self-invalidation on zero-line-count external hits (§3.1).
    /// Disabled only for ablation studies.
    pub self_invalidation: bool,
    /// Replacement preference for regions with no cached lines (§3.2).
    /// Disabled only for ablation studies.
    pub favor_empty_replacement: bool,
}

impl RcaConfig {
    /// The paper's main configuration: 8K sets × 2 ways (16K entries) with
    /// the given region size in bytes.
    pub fn paper_default(region_bytes: u64) -> Self {
        RcaConfig {
            sets: 8192,
            ways: 2,
            geometry: Geometry::new(64, region_bytes),
            self_invalidation: true,
            favor_empty_replacement: true,
        }
    }

    /// Figure 9's half-size array: 4K sets × 2 ways (8K entries).
    pub fn half_size(region_bytes: u64) -> Self {
        RcaConfig {
            sets: 4096,
            ..Self::paper_default(region_bytes)
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

impl Default for RcaConfig {
    fn default() -> Self {
        Self::paper_default(512)
    }
}

/// One region's tracked state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionEntry {
    /// Coarse-grain coherence state.
    pub state: RegionState,
    /// Number of lines of this region currently cached by the processor.
    pub line_count: u32,
    /// Index of the memory controller owning the region, recorded so
    /// write-backs and direct requests can be routed without a broadcast.
    pub mc: u8,
    /// §6 extension: the processor that last supplied a line of this
    /// region via a cache-to-cache transfer — a prediction of where
    /// modified copies live ("the region state can also indicate where
    /// cached copies of data may exist").
    pub owner_hint: Option<u8>,
}

/// A region displaced from the RCA. The owner must flush the region's
/// remaining `line_count` cached lines to preserve inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionEviction {
    /// The displaced region.
    pub region: RegionAddr,
    /// Its entry at eviction time.
    pub entry: RegionEntry,
}

/// Counters the paper reports about RCA behaviour (§3.2, §5.2).
#[derive(Debug, Clone)]
pub struct RcaStats {
    /// Replacements (not counting self-invalidations).
    pub evictions: Counter,
    /// Line count of each evicted region (bucket 0 = empty, §3.2's 65.1%).
    pub evicted_line_counts: Histogram,
    /// Regions invalidated by the self-invalidation rule.
    pub self_invalidations: Counter,
    /// Local requests that found a valid region entry.
    pub region_hits: Counter,
    /// Local requests that found no region entry.
    pub region_misses: Counter,
}

impl RcaStats {
    fn new(geometry: Geometry) -> Self {
        RcaStats {
            evictions: Counter::new(),
            // Buckets 0..=lines_per_region, plus headroom for the overflow
            // bucket convention.
            evicted_line_counts: Histogram::new(geometry.lines_per_region() as usize + 1),
            self_invalidations: Counter::new(),
            region_hits: Counter::new(),
            region_misses: Counter::new(),
        }
    }

    /// Fraction of evicted regions that had exactly `n` cached lines.
    pub fn evicted_fraction_with_lines(&self, n: usize) -> f64 {
        self.evicted_line_counts.fraction(n)
    }
}

/// A processor's Region Coherence Array.
///
/// # Examples
///
/// ```
/// use cgct::{RcaConfig, RegionCoherenceArray, RegionSnoopResponse, FillKind, RegionState};
/// use cgct_cache::{RegionAddr, ReqKind};
/// use cgct::RegionPermission;
///
/// let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
/// let r = RegionAddr(7);
/// // First touch must broadcast...
/// assert_eq!(rca.permission(r, ReqKind::Read), RegionPermission::Broadcast);
/// // ...and the response (nobody caches the region) makes it exclusive.
/// rca.local_fill(r, FillKind::Exclusive, Some(RegionSnoopResponse::NONE), 0);
/// rca.line_cached(r);
/// assert_eq!(rca.state(r), RegionState::DirtyInvalid);
/// assert_eq!(rca.permission(r, ReqKind::Read), RegionPermission::DirectToMemory);
/// ```
#[derive(Debug, Clone)]
pub struct RegionCoherenceArray {
    cfg: RcaConfig,
    array: SetAssocArray<RegionEntry>,
    stats: RcaStats,
}

impl RegionCoherenceArray {
    /// Creates an empty RCA.
    pub fn new(cfg: RcaConfig) -> Self {
        RegionCoherenceArray {
            array: SetAssocArray::new(cfg.sets, cfg.ways),
            stats: RcaStats::new(cfg.geometry),
            cfg,
        }
    }

    /// This array's configuration.
    pub fn config(&self) -> &RcaConfig {
        &self.cfg
    }

    /// Collected statistics.
    pub fn stats(&self) -> &RcaStats {
        &self.stats
    }

    /// The tracked state of `region` ([`RegionState::Invalid`] if absent).
    pub fn state(&self, region: RegionAddr) -> RegionState {
        self.array
            .get(region.0)
            .map_or(RegionState::Invalid, |e| e.state)
    }

    /// The full entry for `region`, if present.
    pub fn entry(&self, region: RegionAddr) -> Option<&RegionEntry> {
        self.array.get(region.0)
    }

    /// Number of valid region entries.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Iterates over all `(region, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RegionAddr, &RegionEntry)> + '_ {
        self.array.iter().map(|(k, e)| (RegionAddr(k), e))
    }

    /// Mean number of cached lines per valid region (the paper measured
    /// 2.8–5, motivating the half-size array of Figure 9).
    pub fn mean_lines_per_region(&self) -> f64 {
        if self.array.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.array.iter().map(|(_, e)| e.line_count as u64).sum();
        sum as f64 / self.array.len() as f64
    }

    /// [`Self::mean_lines_per_region`] in exact milli-lines, rounded to
    /// nearest, for integer metrics accumulation.
    pub fn mean_lines_per_region_milli(&self) -> i64 {
        if self.array.is_empty() {
            return 0;
        }
        let sum: u64 = self.array.iter().map(|(_, e)| e.line_count as u64).sum();
        let len = self.array.len() as u64;
        ((sum * 1000 + len / 2) / len) as i64
    }

    /// What the region state allows for request `req`, recording the
    /// hit/miss statistic.
    pub fn permission(&mut self, region: RegionAddr, req: ReqKind) -> RegionPermission {
        let state = self.state(region);
        if state.is_valid() {
            self.stats.region_hits.inc();
        } else {
            self.stats.region_misses.inc();
        }
        state.permission(req)
    }

    /// Applies the local request's completion to the region state,
    /// allocating an entry if needed (which may displace a victim region —
    /// the caller must then flush the victim's cached lines).
    ///
    /// `response` must be `Some` when the request was broadcast and `None`
    /// when it went direct / completed locally. `mc` is the owning memory
    /// controller, recorded on allocation.
    ///
    /// # Panics
    ///
    /// Panics if a direct request (`response == None`) targets a region
    /// with no valid entry.
    pub fn local_fill(
        &mut self,
        region: RegionAddr,
        fill: FillKind,
        response: Option<RegionSnoopResponse>,
        mc: u8,
    ) -> Option<RegionEviction> {
        if let Some(entry) = self.array.access(region.0) {
            entry.state = local_fill_next_state(entry.state, fill, response);
            return None;
        }
        let state = local_fill_next_state(RegionState::Invalid, fill, response);
        let entry = RegionEntry {
            state,
            line_count: 0,
            mc,
            owner_hint: None,
        };
        let favor_empty = self.cfg.favor_empty_replacement;
        let displaced = self.array.insert_with_victim(region.0, entry, |cands| {
            // Prefer the LRU entry among those with no cached lines; fall
            // back to plain LRU when every candidate still holds lines.
            let pick = |filter: &dyn Fn(&RegionEntry) -> bool| {
                cands
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| filter(c.entry))
                    .min_by_key(|(_, c)| c.last_use)
                    .map(|(i, _)| i)
            };
            if favor_empty {
                if let Some(i) = pick(&|e| e.line_count == 0) {
                    return i;
                }
            }
            // cgct-lint: allow(D006) a full set always offers replacement candidates; fail-stop on a broken replacement invariant
            pick(&|_| true).expect("full set has candidates")
        });
        displaced.map(|(key, entry)| {
            self.stats.evictions.inc();
            self.stats
                .evicted_line_counts
                .record(entry.line_count as u64);
            RegionEviction {
                region: RegionAddr(key),
                entry,
            }
        })
    }

    /// Handles an external (another processor's) request to `region`:
    /// returns this processor's region snoop response contribution and
    /// applies the Figure 5 downgrade — or the self-invalidation rule when
    /// the region holds no cached lines.
    pub fn external_request(
        &mut self,
        region: RegionAddr,
        req: ReqKind,
        requester_fill_exclusive: bool,
    ) -> RegionSnoopResponse {
        let Some(entry) = self.array.get_mut(region.0) else {
            return RegionSnoopResponse::NONE;
        };
        if req == ReqKind::Writeback {
            // Another processor shedding a line tells us nothing new and
            // must not count as a use of the region.
            return RegionSnoopResponse::NONE;
        }
        if entry.line_count == 0 && self.cfg.self_invalidation {
            self.array.remove(region.0);
            self.stats.self_invalidations.inc();
            return RegionSnoopResponse::NONE;
        }
        let contribution = RegionSnoopResponse::from_local_state(entry.state);
        entry.state = external_next_state(entry.state, req, requester_fill_exclusive);
        contribution
    }

    /// Records that a line of `region` entered the cache (inclusion
    /// bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if the region has no valid entry or the count would exceed
    /// the region's line capacity — both indicate an inclusion bug.
    pub fn line_cached(&mut self, region: RegionAddr) {
        let cap = self.cfg.geometry.lines_per_region() as u32;
        let entry = self
            .array
            .get_mut(region.0)
            // cgct-lint: allow(D006) RCA inclusion invariant: every cached line has a region entry; fail-stop on violation
            .expect("inclusion violated: cached line with no region entry");
        entry.line_count += 1;
        assert!(
            entry.line_count <= cap,
            "line count {} exceeds region capacity {cap}",
            entry.line_count
        );
    }

    /// Records that a line of `region` left the cache.
    ///
    /// # Panics
    ///
    /// Panics if the region has no valid entry or its count is zero.
    pub fn line_uncached(&mut self, region: RegionAddr) {
        let entry = self
            .array
            .get_mut(region.0)
            // cgct-lint: allow(D006) RCA inclusion invariant: every cached line has a region entry; fail-stop on violation
            .expect("inclusion violated: evicted line with no region entry");
        assert!(entry.line_count > 0, "line count underflow for {region}");
        entry.line_count -= 1;
    }

    /// Removes `region` outright (used by tests and teardown paths).
    pub fn invalidate(&mut self, region: RegionAddr) -> Option<RegionEntry> {
        self.array.remove(region.0)
    }

    /// Records which processor supplied the last cache-to-cache transfer
    /// for a line of `region` (owner prediction, §6). No-op if the region
    /// is not tracked.
    pub fn record_supplier(&mut self, region: RegionAddr, supplier: u8) {
        if let Some(e) = self.array.get_mut(region.0) {
            e.owner_hint = Some(supplier);
        }
    }

    /// The predicted owner for `region`, if any.
    pub fn owner_hint(&self, region: RegionAddr) -> Option<u8> {
        self.array.get(region.0).and_then(|e| e.owner_hint)
    }

    /// Clears collected statistics (array contents are untouched). Used
    /// when measurement starts after a cache-warming phase.
    pub fn reset_stats(&mut self) {
        self.stats = RcaStats::new(self.cfg.geometry);
    }
}

impl cgct_sim::Snap for RegionEntry {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("s", self.state.snap()),
            ("n", Json::u64(self.line_count as u64)),
            ("mc", Json::u64(self.mc as u64)),
            ("o", self.owner_hint.snap()),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(RegionEntry {
            state: unsnap_field(v, "s")?,
            line_count: unsnap_field(v, "n")?,
            mc: unsnap_field(v, "mc")?,
            owner_hint: unsnap_field(v, "o")?,
        })
    }
}

impl cgct_sim::Snap for RcaStats {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("evictions", self.evictions.snap()),
            ("evicted_line_counts", self.evicted_line_counts.snap()),
            ("self_invalidations", self.self_invalidations.snap()),
            ("region_hits", self.region_hits.snap()),
            ("region_misses", self.region_misses.snap()),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(RcaStats {
            evictions: unsnap_field(v, "evictions")?,
            evicted_line_counts: unsnap_field(v, "evicted_line_counts")?,
            self_invalidations: unsnap_field(v, "self_invalidations")?,
            region_hits: unsnap_field(v, "region_hits")?,
            region_misses: unsnap_field(v, "region_misses")?,
        })
    }
}

impl RegionCoherenceArray {
    /// Snapshots the array contents and statistics (the configuration is
    /// the caller's to rebuild — see [`restore_state`](Self::restore_state)).
    pub fn snap_state(&self) -> cgct_sim::Json {
        use cgct_sim::{Json, Snap};
        Json::obj([("array", self.array.snap()), ("stats", self.stats.snap())])
    }

    /// Restores state captured by [`snap_state`](Self::snap_state) into an
    /// array built with the same [`RcaConfig`].
    ///
    /// # Errors
    ///
    /// Fails on malformed input or a geometry mismatch with this array's
    /// configuration.
    pub fn restore_state(&mut self, v: &cgct_sim::Json) -> Result<(), String> {
        use cgct_sim::snap::{field, Snap};
        let array = SetAssocArray::unsnap(field(v, "array")?)?;
        if array.sets() != self.cfg.sets || array.ways() != self.cfg.ways {
            return Err(format!(
                "RCA geometry mismatch: snapshot {}x{}, config {}x{}",
                array.sets(),
                array.ways(),
                self.cfg.sets,
                self.cfg.ways
            ));
        }
        self.array = array;
        self.stats = RcaStats::unsnap(field(v, "stats")?)?;
        Ok(())
    }
}

#[cfg(test)]
impl RegionCoherenceArray {
    /// Test helper: refresh a region's LRU recency.
    fn touch_for_test(&mut self, region: RegionAddr) {
        let _ = self.array.access(region.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RcaConfig {
        RcaConfig {
            sets: 2,
            ways: 2,
            geometry: Geometry::new(64, 512),
            self_invalidation: true,
            favor_empty_replacement: true,
        }
    }

    fn fill_exclusive(rca: &mut RegionCoherenceArray, r: RegionAddr) {
        rca.local_fill(r, FillKind::Exclusive, Some(RegionSnoopResponse::NONE), 0);
    }

    #[test]
    fn allocation_and_state_tracking() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(5);
        assert_eq!(rca.state(r), RegionState::Invalid);
        fill_exclusive(&mut rca, r);
        assert_eq!(rca.state(r), RegionState::DirtyInvalid);
        assert_eq!(rca.entry(r).unwrap().line_count, 0);
        rca.line_cached(r);
        assert_eq!(rca.entry(r).unwrap().line_count, 1);
        rca.line_uncached(r);
        assert_eq!(rca.entry(r).unwrap().line_count, 0);
    }

    #[test]
    fn permission_counts_hits_and_misses() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(1);
        assert_eq!(
            rca.permission(r, ReqKind::Read),
            RegionPermission::Broadcast
        );
        fill_exclusive(&mut rca, r);
        assert_eq!(
            rca.permission(r, ReqKind::Read),
            RegionPermission::DirectToMemory
        );
        assert_eq!(rca.stats().region_misses.value(), 1);
        assert_eq!(rca.stats().region_hits.value(), 1);
    }

    #[test]
    fn self_invalidation_on_empty_region() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(3);
        fill_exclusive(&mut rca, r);
        // No lines cached: an external request invalidates the region and
        // reports nothing, letting the requester take it exclusively.
        let resp = rca.external_request(r, ReqKind::ReadExclusive, true);
        assert_eq!(resp, RegionSnoopResponse::NONE);
        assert_eq!(rca.state(r), RegionState::Invalid);
        assert_eq!(rca.stats().self_invalidations.value(), 1);
    }

    #[test]
    fn no_self_invalidation_when_lines_cached() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(3);
        fill_exclusive(&mut rca, r);
        rca.line_cached(r);
        let resp = rca.external_request(r, ReqKind::ReadExclusive, true);
        assert!(resp.dirty);
        assert_eq!(rca.state(r), RegionState::DirtyDirty);
    }

    #[test]
    fn self_invalidation_can_be_disabled() {
        let mut rca = RegionCoherenceArray::new(RcaConfig {
            self_invalidation: false,
            ..small_cfg()
        });
        let r = RegionAddr(3);
        fill_exclusive(&mut rca, r);
        let resp = rca.external_request(r, ReqKind::Read, false);
        assert!(resp.dirty); // conservative: still answers from its state
        assert_eq!(rca.state(r), RegionState::DirtyClean);
    }

    #[test]
    fn external_writeback_is_ignored() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(3);
        fill_exclusive(&mut rca, r);
        let resp = rca.external_request(r, ReqKind::Writeback, false);
        assert_eq!(resp, RegionSnoopResponse::NONE);
        assert_eq!(rca.state(r), RegionState::DirtyInvalid);
        assert_eq!(rca.stats().self_invalidations.value(), 0);
    }

    #[test]
    fn replacement_favors_empty_regions() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        // Regions 0, 2 map to set 0 (2 sets). Fill both ways.
        let full = RegionAddr(0);
        let empty = RegionAddr(2);
        fill_exclusive(&mut rca, full);
        rca.line_cached(full);
        fill_exclusive(&mut rca, empty);
        rca.touch_for_test(full); // make the full region MRU-adjacent anyway
                                  // New region in the same set: the empty one must be the victim
                                  // even though the full one is older by LRU.
        let ev = rca
            .local_fill(
                RegionAddr(4),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            )
            .expect("eviction");
        assert_eq!(ev.region, empty);
        assert_eq!(ev.entry.line_count, 0);
        assert_eq!(rca.stats().evicted_line_counts.count(0), 1);
    }

    #[test]
    fn replacement_falls_back_to_lru_when_all_hold_lines() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let a = RegionAddr(0);
        let b = RegionAddr(2);
        fill_exclusive(&mut rca, a);
        rca.line_cached(a);
        fill_exclusive(&mut rca, b);
        rca.line_cached(b);
        let ev = rca
            .local_fill(
                RegionAddr(4),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            )
            .expect("eviction");
        assert_eq!(ev.region, a); // LRU of the two
        assert_eq!(ev.entry.line_count, 1);
        assert_eq!(rca.stats().evicted_line_counts.count(1), 1);
    }

    #[test]
    fn pure_lru_ablation() {
        let mut rca = RegionCoherenceArray::new(RcaConfig {
            favor_empty_replacement: false,
            ..small_cfg()
        });
        let a = RegionAddr(0); // will be LRU, holds a line
        let b = RegionAddr(2); // MRU, empty
        fill_exclusive(&mut rca, a);
        rca.line_cached(a);
        fill_exclusive(&mut rca, b);
        let ev = rca
            .local_fill(
                RegionAddr(4),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            )
            .expect("eviction");
        assert_eq!(ev.region, a); // strict LRU ignores the line count
    }

    #[test]
    #[should_panic(expected = "inclusion violated")]
    fn line_cached_without_region_panics() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        rca.line_cached(RegionAddr(9));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn line_uncached_below_zero_panics() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        fill_exclusive(&mut rca, RegionAddr(1));
        rca.line_uncached(RegionAddr(1));
    }

    #[test]
    fn mean_lines_per_region() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        fill_exclusive(&mut rca, RegionAddr(0));
        fill_exclusive(&mut rca, RegionAddr(1));
        rca.line_cached(RegionAddr(0));
        rca.line_cached(RegionAddr(0));
        assert!((rca.mean_lines_per_region() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upgrade_path_via_broadcast_response() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(1);
        // Fill shared with an external clean sharer: CC.
        rca.local_fill(
            r,
            FillKind::Shared,
            Some(RegionSnoopResponse {
                clean: true,
                dirty: false,
            }),
            0,
        );
        assert_eq!(rca.state(r), RegionState::CleanClean);
        // Later RFO broadcast whose response shows the sharer is gone: DI.
        rca.local_fill(r, FillKind::Exclusive, Some(RegionSnoopResponse::NONE), 0);
        assert_eq!(rca.state(r), RegionState::DirtyInvalid);
    }

    #[test]
    fn owner_hint_records_and_survives_downgrades() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        let r = RegionAddr(1);
        fill_exclusive(&mut rca, r);
        assert_eq!(rca.owner_hint(r), None);
        rca.record_supplier(r, 2);
        assert_eq!(rca.owner_hint(r), Some(2));
        rca.line_cached(r);
        let _ = rca.external_request(r, ReqKind::Read, false);
        assert_eq!(rca.owner_hint(r), Some(2), "hint survives downgrades");
        // Recording on an untracked region is a no-op.
        rca.record_supplier(RegionAddr(99), 1);
        assert_eq!(rca.owner_hint(RegionAddr(99)), None);
    }

    #[test]
    fn memory_controller_id_is_recorded() {
        let mut rca = RegionCoherenceArray::new(small_cfg());
        rca.local_fill(
            RegionAddr(6),
            FillKind::Shared,
            Some(RegionSnoopResponse::NONE),
            3,
        );
        assert_eq!(rca.entry(RegionAddr(6)).unwrap().mc, 3);
    }
}
