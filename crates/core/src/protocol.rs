//! Region protocol transition functions (Figures 3–5).
//!
//! These are pure functions over [`RegionState`]; the [`crate::rca`] module
//! applies them to stored entries, and the system simulator sequences them
//! with the line-grain protocol.

use crate::response::RegionSnoopResponse;
use crate::state::{ExternalPart, LocalPart, RegionState};
use cgct_cache::ReqKind;

/// How a line fills into the local cache, from the region protocol's point
/// of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillKind {
    /// The line fills as an unmodified shared (S) copy — instruction
    /// fetches and loads that found other sharers.
    Shared,
    /// The line fills in an exclusive or modified state (E/M) — RFOs,
    /// upgrades, `dcbz`, and loads that found no other sharers. Such lines
    /// may be modified (or silently become modified), so the region's
    /// local part becomes Dirty.
    Exclusive,
}

impl FillKind {
    /// Classifies a MOESI fill state.
    pub fn from_moesi(state: cgct_cache::MoesiState) -> FillKind {
        if state.can_silently_modify() {
            FillKind::Exclusive
        } else {
            FillKind::Shared
        }
    }
}

/// Next region state after the *local* processor's request completes
/// (Figures 3 and 4).
///
/// `response` is `Some` when the request was broadcast — the piggybacked
/// region snoop response then refreshes the external part, implementing
/// the upgrades of Figure 4 (e.g. `CC + RFO` whose response shows no
/// remaining sharers upgrades to `DI`). It is `None` for requests that
/// went directly to memory or completed locally; those are only legal in
/// states whose external part is already known, which is then preserved
/// (including the silent `CI → DI` edge of Figure 3).
///
/// # Panics
///
/// Panics if called with `response == None` while the region is Invalid:
/// a processor with no region entry must broadcast (§3.2).
///
/// # Examples
///
/// ```
/// use cgct::{local_fill_next_state, FillKind, RegionSnoopResponse, RegionState};
///
/// // First touch: broadcast found nobody caching the region.
/// let s = local_fill_next_state(
///     RegionState::Invalid,
///     FillKind::Exclusive,
///     Some(RegionSnoopResponse::NONE),
/// );
/// assert_eq!(s, RegionState::DirtyInvalid);
///
/// // Silent CI -> DI on a modifiable fill without any external request.
/// let s = local_fill_next_state(RegionState::CleanInvalid, FillKind::Exclusive, None);
/// assert_eq!(s, RegionState::DirtyInvalid);
/// ```
pub fn local_fill_next_state(
    current: RegionState,
    fill: FillKind,
    response: Option<RegionSnoopResponse>,
) -> RegionState {
    let local = match (current.local(), fill) {
        (Some(LocalPart::Dirty), _) | (_, FillKind::Exclusive) => LocalPart::Dirty,
        _ => LocalPart::Clean,
    };
    let external = match response {
        Some(r) => r.external_part(),
        None => current
            .external()
            // cgct-lint: allow(D006) direct requests are only issued for valid region entries (checked upstream); fail-stop on a broken protocol invariant
            .expect("direct request issued with no valid region entry"),
    };
    RegionState::compose(local, external)
}

/// Next region state for a *snooper* observing an external request to a
/// region it holds (Figure 5, top), assuming its line count is non-zero
/// (the zero-count case self-invalidates instead — see
/// [`crate::rca::RegionCoherenceArray::external_request`]).
///
/// `requester_fill_exclusive` says whether the requester will obtain a
/// modifiable (E/M) copy; the paper notes this is known whenever the line
/// snoop response is visible to the region protocol or the line is cached
/// locally (§3.1). External reads that fill shared only downgrade the
/// external part to Clean; modifiable fills downgrade it to Dirty.
///
/// # Examples
///
/// ```
/// use cgct::{external_next_state, RegionState};
/// use cgct_cache::ReqKind;
///
/// // Another processor RFOs a line in our exclusive region.
/// let s = external_next_state(RegionState::DirtyInvalid, ReqKind::ReadExclusive, true);
/// assert_eq!(s, RegionState::DirtyDirty);
///
/// // Another processor ifetches (fills shared): externally clean.
/// let s = external_next_state(RegionState::DirtyInvalid, ReqKind::ReadShared, false);
/// assert_eq!(s, RegionState::DirtyClean);
/// ```
pub fn external_next_state(
    current: RegionState,
    req: ReqKind,
    requester_fill_exclusive: bool,
) -> RegionState {
    let Some(local) = current.local() else {
        return RegionState::Invalid;
    };
    // Write-backs carry no sharing information: the requester is shedding
    // a line, not acquiring one.
    if req == ReqKind::Writeback {
        return current;
    }
    let old_ext = current.external().unwrap_or(ExternalPart::Invalid);
    let implied = if requester_fill_exclusive || req.wants_modifiable() {
        ExternalPart::Dirty
    } else {
        ExternalPart::Clean
    };
    // The external part can only get worse from observed requests; a
    // Dirty region does not become Clean because one more reader arrived.
    let external = old_ext.max(implied);
    RegionState::compose(local, external)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgct_cache::MoesiState;
    use RegionState::*;

    fn resp(clean: bool, dirty: bool) -> Option<RegionSnoopResponse> {
        Some(RegionSnoopResponse { clean, dirty })
    }

    #[test]
    fn figure3_fills_from_invalid() {
        // Ifetches and reads of shared lines: I -> CI / CC / CD.
        assert_eq!(
            local_fill_next_state(Invalid, FillKind::Shared, resp(false, false)),
            CleanInvalid
        );
        assert_eq!(
            local_fill_next_state(Invalid, FillKind::Shared, resp(true, false)),
            CleanClean
        );
        assert_eq!(
            local_fill_next_state(Invalid, FillKind::Shared, resp(false, true)),
            CleanDirty
        );
        // RFOs and exclusive-filling reads: I -> DI / DC / DD.
        assert_eq!(
            local_fill_next_state(Invalid, FillKind::Exclusive, resp(false, false)),
            DirtyInvalid
        );
        assert_eq!(
            local_fill_next_state(Invalid, FillKind::Exclusive, resp(true, false)),
            DirtyClean
        );
        assert_eq!(
            local_fill_next_state(Invalid, FillKind::Exclusive, resp(true, true)),
            DirtyDirty
        );
    }

    #[test]
    fn figure3_silent_ci_to_di() {
        assert_eq!(
            local_fill_next_state(CleanInvalid, FillKind::Exclusive, None),
            DirtyInvalid
        );
        // Shared fills keep CI clean.
        assert_eq!(
            local_fill_next_state(CleanInvalid, FillKind::Shared, None),
            CleanInvalid
        );
        assert_eq!(
            local_fill_next_state(DirtyInvalid, FillKind::Shared, None),
            DirtyInvalid
        );
    }

    #[test]
    fn figure4_upgrades_from_broadcast_response() {
        // CC + RFO broadcast, response shows nobody left: upgrade to DI.
        assert_eq!(
            local_fill_next_state(CleanClean, FillKind::Exclusive, resp(false, false)),
            DirtyInvalid
        );
        // CD + read broadcast, response now clean: upgrade to CC.
        assert_eq!(
            local_fill_next_state(CleanDirty, FillKind::Shared, resp(true, false)),
            CleanClean
        );
        // DD + broadcast, nobody left: DI (migratory-data recovery).
        assert_eq!(
            local_fill_next_state(DirtyDirty, FillKind::Exclusive, resp(false, false)),
            DirtyInvalid
        );
    }

    #[test]
    fn local_dirty_is_sticky() {
        // Once the local part is Dirty it stays Dirty across shared fills.
        for ext in [resp(false, false), resp(true, false), resp(false, true)] {
            let s = local_fill_next_state(DirtyClean, FillKind::Shared, ext);
            assert_eq!(s.local(), Some(LocalPart::Dirty));
        }
    }

    #[test]
    #[should_panic(expected = "no valid region entry")]
    fn direct_request_from_invalid_region_is_a_bug() {
        let _ = local_fill_next_state(Invalid, FillKind::Shared, None);
    }

    #[test]
    fn figure5_external_downgrades() {
        // External shared read: exclusive region becomes externally clean.
        assert_eq!(
            external_next_state(CleanInvalid, ReqKind::Read, false),
            CleanClean
        );
        assert_eq!(
            external_next_state(DirtyInvalid, ReqKind::Read, false),
            DirtyClean
        );
        // External exclusive-filling read / RFO: externally dirty.
        assert_eq!(
            external_next_state(CleanInvalid, ReqKind::Read, true),
            CleanDirty
        );
        assert_eq!(
            external_next_state(DirtyClean, ReqKind::ReadExclusive, true),
            DirtyDirty
        );
        assert_eq!(
            external_next_state(CleanClean, ReqKind::Upgrade, true),
            CleanDirty
        );
        assert_eq!(
            external_next_state(DirtyInvalid, ReqKind::Dcbz, true),
            DirtyDirty
        );
    }

    #[test]
    fn external_part_never_improves_from_snoops() {
        // A region already externally dirty stays dirty even if a new
        // requester only fills shared.
        assert_eq!(
            external_next_state(CleanDirty, ReqKind::ReadShared, false),
            CleanDirty
        );
        assert_eq!(
            external_next_state(DirtyDirty, ReqKind::Read, false),
            DirtyDirty
        );
    }

    #[test]
    fn external_writeback_changes_nothing() {
        for s in RegionState::ALL {
            assert_eq!(external_next_state(s, ReqKind::Writeback, false), s);
        }
    }

    #[test]
    fn external_on_invalid_region_stays_invalid() {
        assert_eq!(
            external_next_state(Invalid, ReqKind::ReadExclusive, true),
            Invalid
        );
    }

    #[test]
    fn fill_kind_from_moesi() {
        assert_eq!(
            FillKind::from_moesi(MoesiState::Modified),
            FillKind::Exclusive
        );
        assert_eq!(
            FillKind::from_moesi(MoesiState::Exclusive),
            FillKind::Exclusive
        );
        assert_eq!(FillKind::from_moesi(MoesiState::Shared), FillKind::Shared);
        assert_eq!(FillKind::from_moesi(MoesiState::Owned), FillKind::Shared);
    }

    #[test]
    fn exclusivity_safety_under_external_requests() {
        // After ANY non-writeback external request, a region is no longer
        // exclusive: the requester now caches (or owns) lines in it.
        for s in RegionState::ALL {
            if !s.is_valid() {
                continue;
            }
            for req in [
                ReqKind::Read,
                ReqKind::ReadShared,
                ReqKind::ReadExclusive,
                ReqKind::Upgrade,
                ReqKind::Dcbz,
            ] {
                for fill_ex in [false, true] {
                    let next = external_next_state(s, req, fill_ex);
                    assert!(
                        !next.is_exclusive(),
                        "{s} + external {req:?} (fill_ex={fill_ex}) left exclusive {next}"
                    );
                }
            }
        }
    }
}
