//! Typed completion events for the memory path.
//!
//! The memory system is discrete-event: the arbiter, the memory
//! controllers, the snoop-response combiner, the data ports, and the
//! MSHR fill paths all schedule a [`MemEvent`] on the machine's central
//! [`cgct_sim::EventQueue`] at the cycle their work completes. The
//! machine's run loop advances `now` to the earliest of the core
//! wakeups and the queue head (see `Machine::run_until` in
//! `cgct-system`), so wall-clock tracks the number of events, not the
//! number of simulated cycles. The cycle-stepped reference
//! (`CGCT_NO_SKIP`) drains the same queue once per cycle instead.
//!
//! Events are pure *completion notifications*: every architectural
//! state transition is applied synchronously inside the atomic-bus
//! coherence engine when the request is processed, so delivering an
//! event mutates nothing — it only marks a point in time the clock must
//! not skip past, and feeds the `memory_events_per_sec` throughput
//! diagnostic in `BENCH_cgct.json`.

/// One memory-path completion, scheduled at the cycle it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemEvent {
    /// The broadcast address network granted a request its bus slot.
    BusGranted,
    /// All snoop responses for a broadcast have been combined.
    SnoopComplete,
    /// A DRAM bank finished its access and is free again.
    DramComplete,
    /// A point-to-point data-port transfer finished.
    DataPortFree,
    /// A demand miss response arrived and fills the requesting MSHR
    /// (load, store, or dcbz path).
    MshrFill,
    /// An instruction-fetch miss response arrived (fetch resumes).
    FetchFill,
}

impl MemEvent {
    /// Stable short label (diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            MemEvent::BusGranted => "bus-grant",
            MemEvent::SnoopComplete => "snoop-complete",
            MemEvent::DramComplete => "dram-complete",
            MemEvent::DataPortFree => "data-port-free",
            MemEvent::MshrFill => "mshr-fill",
            MemEvent::FetchFill => "fetch-fill",
        }
    }
}

impl cgct_sim::Snap for MemEvent {
    fn snap(&self) -> cgct_sim::Json {
        cgct_sim::Json::str(self.label())
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        let name = v.as_str().ok_or("expected memory-event label")?;
        [
            MemEvent::BusGranted,
            MemEvent::SnoopComplete,
            MemEvent::DramComplete,
            MemEvent::DataPortFree,
            MemEvent::MshrFill,
            MemEvent::FetchFill,
        ]
        .into_iter()
        .find(|e| e.label() == name)
        .ok_or_else(|| format!("unknown memory event {name:?}"))
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // D002 mirror: test code is exempt by policy
mod tests {
    use super::*;
    use cgct_sim::{Cycle, EventQueue};

    #[test]
    fn events_queue_in_time_order() {
        let mut q: EventQueue<MemEvent> = EventQueue::new();
        q.schedule(Cycle(30), MemEvent::DramComplete);
        q.schedule(Cycle(10), MemEvent::BusGranted);
        q.schedule(Cycle(20), MemEvent::SnoopComplete);
        let order: Vec<MemEvent> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                MemEvent::BusGranted,
                MemEvent::SnoopComplete,
                MemEvent::DramComplete
            ]
        );
    }

    #[test]
    fn labels_are_distinct() {
        let all = [
            MemEvent::BusGranted,
            MemEvent::SnoopComplete,
            MemEvent::DramComplete,
            MemEvent::DataPortFree,
            MemEvent::MshrFill,
            MemEvent::FetchFill,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
