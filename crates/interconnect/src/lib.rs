//! Fireplane-like interconnect model for the CGCT reproduction.
//!
//! The baseline machine (Table 3, Figure 6) couples a broadcast *address*
//! network — every coherent request is snooped by all processors, 16 system
//! cycles — with point-to-point *data* switches whose critical-word latency
//! depends on physical distance (same chip / same data switch / same board /
//! remote). CGCT adds a *direct request* path from a processor to a memory
//! controller that skips the broadcast.
//!
//! # Examples
//!
//! ```
//! use cgct_interconnect::{LatencyModel, DistanceClass};
//!
//! let lat = LatencyModel::paper_default();
//! // Figure 6: snooping your own memory costs 25 system cycles...
//! assert_eq!(lat.snoop_memory_access(DistanceClass::SameChip), 250);
//! // ...but a direct request costs about 18.
//! assert_eq!(lat.direct_memory_access(DistanceClass::SameChip), 181);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bus;
pub mod event;
pub mod latency;
pub mod memctrl;
pub mod topology;

pub use bus::AddressNetwork;
pub use event::MemEvent;
pub use latency::{DistanceClass, LatencyModel};
pub use memctrl::MemoryController;
pub use topology::{CoreId, McId, Topology};
