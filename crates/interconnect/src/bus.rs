//! The broadcast address network.
//!
//! Modeled as a single pipelined arbiter: one broadcast may be granted per
//! 150 MHz system cycle; excess requests queue, which is where the
//! "queuing delays" of Figure 6 come from. Snoop responses return a fixed
//! snoop latency after the grant.

use cgct_sim::{Cycle, RunningStats, CPU_CYCLES_PER_SYSTEM_CYCLE};
use cgct_trace::{EventKind, TraceEvent, TraceSink};

/// The broadcast address network arbiter.
///
/// # Examples
///
/// ```
/// use cgct_interconnect::AddressNetwork;
/// use cgct_sim::Cycle;
///
/// let mut bus = AddressNetwork::new();
/// let g1 = bus.grant(Cycle(0));
/// let g2 = bus.grant(Cycle(0)); // same instant: must wait a system cycle
/// assert_eq!(g1, Cycle(0));
/// assert_eq!(g2, Cycle(10));
/// ```
#[derive(Debug, Clone)]
pub struct AddressNetwork {
    next_free: Cycle,
    granted: u64,
    queue_delay: RunningStats,
}

impl AddressNetwork {
    /// Creates an idle network.
    pub fn new() -> Self {
        AddressNetwork {
            next_free: Cycle::ZERO,
            granted: 0,
            queue_delay: RunningStats::new(),
        }
    }

    /// Requests a broadcast slot at time `now`; returns the grant time
    /// (aligned to the system clock, after any queued broadcasts).
    pub fn grant(&mut self, now: Cycle) -> Cycle {
        let earliest = now.align_to_system_clock();
        let granted_at = earliest.max(self.next_free);
        self.next_free = granted_at + CPU_CYCLES_PER_SYSTEM_CYCLE;
        self.granted += 1;
        self.queue_delay.push((granted_at - now) as f64);
        granted_at
    }

    /// [`AddressNetwork::grant`] that also records an
    /// [`EventKind::BusGrant`] (with the queuing delay) for request
    /// `(node, seq)` in `sink`. Same arbitration either way: tracing
    /// never changes what is granted when.
    pub fn grant_traced(
        &mut self,
        now: Cycle,
        trace: Option<(&mut dyn TraceSink, u8, u64)>,
    ) -> Cycle {
        let granted_at = self.grant(now);
        if let Some((sink, node, seq)) = trace {
            sink.record(TraceEvent {
                node,
                seq,
                cycle: granted_at.0,
                kind: EventKind::BusGrant {
                    queued: granted_at - now,
                },
            });
        }
        granted_at
    }

    /// Total broadcasts granted.
    pub fn broadcasts(&self) -> u64 {
        self.granted
    }

    /// Mean queuing + alignment delay per broadcast, in CPU cycles.
    pub fn mean_queue_delay(&self) -> f64 {
        self.queue_delay.mean()
    }

    /// Resets counters and the arbiter clock (between runs).
    pub fn reset(&mut self) {
        *self = AddressNetwork::new();
    }
}

impl Default for AddressNetwork {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_back_to_back_broadcasts() {
        let mut bus = AddressNetwork::new();
        let grants: Vec<Cycle> = (0..4).map(|_| bus.grant(Cycle(0))).collect();
        assert_eq!(grants, vec![Cycle(0), Cycle(10), Cycle(20), Cycle(30)]);
        assert_eq!(bus.broadcasts(), 4);
    }

    #[test]
    fn aligns_to_system_clock() {
        let mut bus = AddressNetwork::new();
        assert_eq!(bus.grant(Cycle(3)), Cycle(10));
        assert_eq!(bus.grant(Cycle(11)), Cycle(20));
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = AddressNetwork::new();
        bus.grant(Cycle(0));
        // Long idle gap: no residual queuing.
        assert_eq!(bus.grant(Cycle(1000)), Cycle(1000));
    }

    #[test]
    fn queue_delay_tracked() {
        let mut bus = AddressNetwork::new();
        bus.grant(Cycle(0)); // delay 0
        bus.grant(Cycle(0)); // delay 10
        assert!((bus.mean_queue_delay() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn traced_grant_matches_and_records() {
        let mut bus = AddressNetwork::new();
        let mut shadow = AddressNetwork::new();
        let mut sink = cgct_trace::TraceBuffer::new(8);
        let g0 = bus.grant_traced(Cycle(3), None);
        let g1 = bus.grant_traced(Cycle(3), Some((&mut sink, 2, 7)));
        assert_eq!(g0, shadow.grant(Cycle(3)));
        assert_eq!(g1, shadow.grant(Cycle(3)));
        let ev: Vec<_> = sink.events().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].node, ev[0].seq, ev[0].cycle), (2, 7, g1.0));
        assert_eq!(
            ev[0].kind,
            EventKind::BusGrant {
                queued: g1 - Cycle(3)
            }
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = AddressNetwork::new();
        bus.grant(Cycle(0));
        bus.reset();
        assert_eq!(bus.broadcasts(), 0);
        assert_eq!(bus.grant(Cycle(0)), Cycle(0));
    }
}

#[cfg(test)]
mod arbitration_props {
    use super::*;
    use cgct_sim::check::{check, gen_vec};

    /// Grants are strictly increasing by at least one system cycle,
    /// never precede their requests, and every request is granted.
    #[test]
    fn grants_serialize_on_the_system_clock() {
        check("bus::grants_serialize_on_the_system_clock", 64, |g| {
            let mut requests = gen_vec(g, 1..200, |g| g.gen_range(0u64..50_000));
            requests.sort_unstable();
            let mut bus = AddressNetwork::new();
            let mut last: Option<Cycle> = None;
            for &r in &requests {
                let granted = bus.grant(Cycle(r));
                assert!(granted >= Cycle(r));
                assert_eq!(granted.0 % CPU_CYCLES_PER_SYSTEM_CYCLE, 0);
                if let Some(prev) = last {
                    assert!(granted.0 >= prev.0 + CPU_CYCLES_PER_SYSTEM_CYCLE);
                }
                last = Some(granted);
            }
            assert_eq!(bus.broadcasts(), requests.len() as u64);
        });
    }
}
