//! The broadcast address network.
//!
//! Modeled as a single pipelined arbiter: one broadcast may be granted per
//! 150 MHz system cycle; excess requests queue, which is where the
//! "queuing delays" of Figure 6 come from. Snoop responses return a fixed
//! snoop latency after the grant.

use crate::event::MemEvent;
use cgct_sim::{Cycle, EventQueue, CPU_CYCLES_PER_SYSTEM_CYCLE};
use cgct_trace::{EventKind, TraceEvent, TraceSink};

/// The broadcast address network arbiter.
///
/// # Examples
///
/// ```
/// use cgct_interconnect::AddressNetwork;
/// use cgct_sim::Cycle;
///
/// let mut bus = AddressNetwork::new();
/// let g1 = bus.grant(Cycle(0));
/// let g2 = bus.grant(Cycle(0)); // same instant: must wait a system cycle
/// assert_eq!(g1, Cycle(0));
/// assert_eq!(g2, Cycle(10));
/// ```
#[derive(Debug, Clone)]
pub struct AddressNetwork {
    next_free: Cycle,
    granted: u64,
    /// Total queuing + alignment delay over all grants, in whole CPU
    /// cycles. An integer sum is exact and independent of push order,
    /// unlike a floating-point running mean — a determinism hazard once
    /// memory events interleave differently between runs.
    queue_delay_cycles: u64,
}

impl AddressNetwork {
    /// Creates an idle network.
    pub fn new() -> Self {
        AddressNetwork {
            next_free: Cycle::ZERO,
            granted: 0,
            queue_delay_cycles: 0,
        }
    }

    /// Requests a broadcast slot at time `now`; returns the grant time
    /// (aligned to the system clock, after any queued broadcasts).
    pub fn grant(&mut self, now: Cycle) -> Cycle {
        let earliest = now.align_to_system_clock();
        let granted_at = earliest.max(self.next_free);
        self.next_free = granted_at + CPU_CYCLES_PER_SYSTEM_CYCLE;
        self.granted += 1;
        self.queue_delay_cycles += granted_at - now;
        granted_at
    }

    /// [`AddressNetwork::grant_traced`] that also schedules a
    /// [`MemEvent::BusGranted`] completion event at the grant time, so
    /// the machine's event-driven clock can jump straight to it instead
    /// of discovering the grant by re-ticking cores.
    pub fn grant_event(
        &mut self,
        now: Cycle,
        events: &mut EventQueue<MemEvent>,
        trace: Option<(&mut dyn TraceSink, u8, u64)>,
    ) -> Cycle {
        let granted_at = self.grant_traced(now, trace);
        events.schedule(granted_at, MemEvent::BusGranted);
        granted_at
    }

    /// [`AddressNetwork::grant`] that also records an
    /// [`EventKind::BusGrant`] (with the queuing delay) for request
    /// `(node, seq)` in `sink`. Same arbitration either way: tracing
    /// never changes what is granted when.
    pub fn grant_traced(
        &mut self,
        now: Cycle,
        trace: Option<(&mut dyn TraceSink, u8, u64)>,
    ) -> Cycle {
        let granted_at = self.grant(now);
        if let Some((sink, node, seq)) = trace {
            sink.record(TraceEvent {
                node,
                seq,
                cycle: granted_at.0,
                kind: EventKind::BusGrant {
                    queued: granted_at - now,
                },
            });
        }
        granted_at
    }

    /// Total broadcasts granted.
    pub fn broadcasts(&self) -> u64 {
        self.granted
    }

    /// Mean queuing + alignment delay per broadcast, in milli-cycles
    /// (fixed point: `total * 1000 / grants`) — integer-exact, so the
    /// value cannot depend on the order delays were accumulated.
    pub fn mean_queue_delay_milli(&self) -> u64 {
        self.queue_delay_cycles
            .saturating_mul(1000)
            .checked_div(self.granted)
            .unwrap_or(0)
    }

    /// Mean queuing + alignment delay per broadcast, in CPU cycles
    /// (derived from [`AddressNetwork::mean_queue_delay_milli`]).
    pub fn mean_queue_delay(&self) -> f64 {
        self.mean_queue_delay_milli() as f64 / 1000.0
    }

    /// Resets counters and the arbiter clock (between runs).
    pub fn reset(&mut self) {
        *self = AddressNetwork::new();
    }
}

impl Default for AddressNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl cgct_sim::Snap for AddressNetwork {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("next_free", self.next_free.snap()),
            ("granted", Json::u64(self.granted)),
            ("queue_delay_cycles", Json::u64(self.queue_delay_cycles)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        Ok(AddressNetwork {
            next_free: unsnap_field(v, "next_free")?,
            granted: unsnap_field(v, "granted")?,
            queue_delay_cycles: unsnap_field(v, "queue_delay_cycles")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_back_to_back_broadcasts() {
        let mut bus = AddressNetwork::new();
        let grants: Vec<Cycle> = (0..4).map(|_| bus.grant(Cycle(0))).collect();
        assert_eq!(grants, vec![Cycle(0), Cycle(10), Cycle(20), Cycle(30)]);
        assert_eq!(bus.broadcasts(), 4);
    }

    #[test]
    fn aligns_to_system_clock() {
        let mut bus = AddressNetwork::new();
        assert_eq!(bus.grant(Cycle(3)), Cycle(10));
        assert_eq!(bus.grant(Cycle(11)), Cycle(20));
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = AddressNetwork::new();
        bus.grant(Cycle(0));
        // Long idle gap: no residual queuing.
        assert_eq!(bus.grant(Cycle(1000)), Cycle(1000));
    }

    #[test]
    fn queue_delay_tracked() {
        let mut bus = AddressNetwork::new();
        bus.grant(Cycle(0)); // delay 0
        bus.grant(Cycle(0)); // delay 10
        assert_eq!(bus.mean_queue_delay_milli(), 5_000);
        assert!((bus.mean_queue_delay() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn queue_delay_mean_is_push_order_independent() {
        // Integer accumulation: any permutation of the same delays
        // yields the identical milli-cycle mean.
        // Arrivals are spaced 1000 cycles apart (no arbitration
        // coupling); each contributes an alignment delay of `d`.
        let delays = [0u64, 3, 7, 1, 9, 2, 8];
        let arrive = |k: u64, d: u64| Cycle(1000 * (k + 1) + (10 - d) % 10);
        let mut fwd = AddressNetwork::new();
        let mut rev = AddressNetwork::new();
        for (k, &d) in delays.iter().enumerate() {
            fwd.grant(arrive(k as u64, d));
        }
        for (k, &d) in delays.iter().rev().enumerate() {
            rev.grant(arrive(k as u64, d));
        }
        assert_eq!(fwd.mean_queue_delay_milli(), rev.mean_queue_delay_milli());
    }

    #[test]
    fn event_grant_matches_and_schedules() {
        let mut bus = AddressNetwork::new();
        let mut shadow = AddressNetwork::new();
        let mut q = EventQueue::new();
        let g0 = bus.grant_event(Cycle(3), &mut q, None);
        let g1 = bus.grant_event(Cycle(3), &mut q, None);
        assert_eq!(g0, shadow.grant(Cycle(3)));
        assert_eq!(g1, shadow.grant(Cycle(3)));
        assert_eq!(q.pop(), Some((g0, MemEvent::BusGranted)));
        assert_eq!(q.pop(), Some((g1, MemEvent::BusGranted)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn traced_grant_matches_and_records() {
        let mut bus = AddressNetwork::new();
        let mut shadow = AddressNetwork::new();
        let mut sink = cgct_trace::TraceBuffer::new(8);
        let g0 = bus.grant_traced(Cycle(3), None);
        let g1 = bus.grant_traced(Cycle(3), Some((&mut sink, 2, 7)));
        assert_eq!(g0, shadow.grant(Cycle(3)));
        assert_eq!(g1, shadow.grant(Cycle(3)));
        let ev: Vec<_> = sink.events().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].node, ev[0].seq, ev[0].cycle), (2, 7, g1.0));
        assert_eq!(
            ev[0].kind,
            EventKind::BusGrant {
                queued: g1 - Cycle(3)
            }
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = AddressNetwork::new();
        bus.grant(Cycle(0));
        bus.reset();
        assert_eq!(bus.broadcasts(), 0);
        assert_eq!(bus.grant(Cycle(0)), Cycle(0));
    }
}

#[cfg(test)]
mod arbitration_props {
    use super::*;
    use cgct_sim::check::{check, gen_vec};

    /// Grants are strictly increasing by at least one system cycle,
    /// never precede their requests, and every request is granted.
    #[test]
    fn grants_serialize_on_the_system_clock() {
        check("bus::grants_serialize_on_the_system_clock", 64, |g| {
            let mut requests = gen_vec(g, 1..200, |g| g.gen_range(0u64..50_000));
            requests.sort_unstable();
            let mut bus = AddressNetwork::new();
            let mut last: Option<Cycle> = None;
            for &r in &requests {
                let granted = bus.grant(Cycle(r));
                assert!(granted >= Cycle(r));
                assert_eq!(granted.0 % CPU_CYCLES_PER_SYSTEM_CYCLE, 0);
                if let Some(prev) = last {
                    assert!(granted.0 >= prev.0 + CPU_CYCLES_PER_SYSTEM_CYCLE);
                }
                last = Some(granted);
            }
            assert_eq!(bus.broadcasts(), requests.len() as u64);
        });
    }
}
