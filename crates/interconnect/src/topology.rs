//! Physical topology: cores, chips, data switches, boards, and the
//! address-to-memory-controller map.
//!
//! The paper's system (Table 3) has 2 cores per processor chip and 2 chips
//! per data switch; the evaluated machine is four processors on one board.
//! Each chip integrates one memory controller (like the UltraSPARC-IV and
//! Power5 systems cited), and physical memory is interleaved across the
//! controllers at region granularity — which is what lets a region entry
//! carry a single memory-controller index (§5.1).

use crate::latency::DistanceClass;
use cgct_cache::{Geometry, RegionAddr};
use std::fmt;

/// A processor core index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A memory controller index (one per chip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct McId(pub usize);

impl fmt::Display for McId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc{}", self.0)
    }
}

/// System topology: how cores group into chips, data switches, and boards.
///
/// # Examples
///
/// ```
/// use cgct_interconnect::{DistanceClass, Topology, CoreId, McId};
///
/// let t = Topology::paper_default();
/// assert_eq!(t.total_cores(), 4);
/// assert_eq!(t.distance(CoreId(0), McId(0)), DistanceClass::SameChip);
/// assert_eq!(t.distance(CoreId(0), McId(1)), DistanceClass::SameSwitch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Cores per processor chip (paper: 2).
    pub cores_per_chip: usize,
    /// Chips per data switch (paper: 2).
    pub chips_per_switch: usize,
    /// Data switches per board.
    pub switches_per_board: usize,
    /// Boards in the system.
    pub boards: usize,
}

impl Topology {
    /// The paper's four-processor machine: 2 cores/chip × 2 chips on one
    /// data switch, one board.
    pub fn paper_default() -> Self {
        Topology {
            cores_per_chip: 2,
            chips_per_switch: 2,
            switches_per_board: 1,
            boards: 1,
        }
    }

    /// A larger machine for scalability studies: two boards of two
    /// switches each (16 cores).
    pub fn two_boards() -> Self {
        Topology {
            cores_per_chip: 2,
            chips_per_switch: 2,
            switches_per_board: 2,
            boards: 2,
        }
    }

    /// The machine shape used by the 4→64-node scalability sweep:
    /// chips and switches keep the paper's 2×2 arrangement and extra
    /// cores become extra boards (= clusters in the hierarchical
    /// machine). Supported shapes:
    ///
    /// | cores | chips/switch | switches/board | boards |
    /// |-------|--------------|----------------|--------|
    /// | 4     | 2            | 1              | 1      |
    /// | 8     | 2            | 2              | 1      |
    /// | 16+   | 2            | 2              | n/8    |
    ///
    /// # Panics
    ///
    /// Panics when `cores` is not 4, 8, or a multiple of 16 — the sweep
    /// only asks for powers of two and the mapping would otherwise be
    /// ambiguous.
    pub fn for_cores(cores: usize) -> Self {
        match cores {
            4 => Topology::paper_default(),
            8 => Topology {
                cores_per_chip: 2,
                chips_per_switch: 2,
                switches_per_board: 2,
                boards: 1,
            },
            n if n >= 16 && n % 16 == 0 => Topology {
                cores_per_chip: 2,
                chips_per_switch: 2,
                switches_per_board: 2,
                boards: n / 8,
            },
            n => panic!("Topology::for_cores supports 4, 8, or multiples of 16 cores, not {n}"),
        }
    }

    /// Number of clusters in the hierarchical machine. A cluster is a
    /// board: boards are the outermost grouping, so cluster-crossing
    /// traffic is exactly the [`DistanceClass::Remote`] traffic.
    pub fn clusters(&self) -> usize {
        self.boards
    }

    /// The cluster (board) containing `core`.
    pub fn cluster_of(&self, core: CoreId) -> usize {
        self.board_of_switch(self.switch_of_chip(self.chip_of(core)))
    }

    /// The cluster (board) containing memory controller `mc`.
    pub fn cluster_of_mc(&self, mc: McId) -> usize {
        self.board_of_switch(self.switch_of_chip(mc.0))
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> usize {
        self.cores_per_chip * self.total_chips()
    }

    /// Total number of chips (= memory controllers).
    pub fn total_chips(&self) -> usize {
        self.chips_per_switch * self.switches_per_board * self.boards
    }

    /// The chip containing `core`.
    pub fn chip_of(&self, core: CoreId) -> usize {
        core.0 / self.cores_per_chip
    }

    /// The data switch containing `chip`.
    pub fn switch_of_chip(&self, chip: usize) -> usize {
        chip / self.chips_per_switch
    }

    /// The board containing `switch`.
    pub fn board_of_switch(&self, switch: usize) -> usize {
        switch / self.switches_per_board
    }

    /// The memory controller on `core`'s own chip.
    pub fn home_mc(&self, core: CoreId) -> McId {
        McId(self.chip_of(core))
    }

    /// Physical distance class between a core and a memory controller.
    pub fn distance(&self, core: CoreId, mc: McId) -> DistanceClass {
        let chip = self.chip_of(core);
        if chip == mc.0 {
            return DistanceClass::SameChip;
        }
        let (s1, s2) = (self.switch_of_chip(chip), self.switch_of_chip(mc.0));
        if s1 == s2 {
            return DistanceClass::SameSwitch;
        }
        if self.board_of_switch(s1) == self.board_of_switch(s2) {
            return DistanceClass::SameBoard;
        }
        DistanceClass::Remote
    }

    /// Distance class between two cores (for cache-to-cache transfers).
    pub fn core_distance(&self, a: CoreId, b: CoreId) -> DistanceClass {
        self.distance(a, McId(self.chip_of(b)))
    }

    /// The memory controller owning `region`: physical memory is
    /// interleaved across chips at region granularity.
    pub fn mc_of_region(&self, region: RegionAddr) -> McId {
        McId((region.0 as usize) % self.total_chips())
    }

    /// The memory controller owning the region that contains `line`,
    /// under geometry `geom`.
    pub fn mc_of_line(&self, line: cgct_cache::LineAddr, geom: Geometry) -> McId {
        self.mc_of_region(geom.region_of_line(line))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_shape() {
        let t = Topology::paper_default();
        assert_eq!(t.total_cores(), 4);
        assert_eq!(t.total_chips(), 2);
        assert_eq!(t.chip_of(CoreId(0)), 0);
        assert_eq!(t.chip_of(CoreId(1)), 0);
        assert_eq!(t.chip_of(CoreId(2)), 1);
        assert_eq!(t.chip_of(CoreId(3)), 1);
    }

    #[test]
    fn distances_in_paper_machine() {
        let t = Topology::paper_default();
        assert_eq!(t.distance(CoreId(0), McId(0)), DistanceClass::SameChip);
        assert_eq!(t.distance(CoreId(1), McId(0)), DistanceClass::SameChip);
        assert_eq!(t.distance(CoreId(2), McId(0)), DistanceClass::SameSwitch);
        assert_eq!(t.distance(CoreId(0), McId(1)), DistanceClass::SameSwitch);
    }

    #[test]
    fn distances_in_two_board_machine() {
        let t = Topology::two_boards();
        assert_eq!(t.total_cores(), 16);
        assert_eq!(t.total_chips(), 8);
        // Core 0 (chip 0, switch 0, board 0) vs MCs across the machine.
        assert_eq!(t.distance(CoreId(0), McId(0)), DistanceClass::SameChip);
        assert_eq!(t.distance(CoreId(0), McId(1)), DistanceClass::SameSwitch);
        assert_eq!(t.distance(CoreId(0), McId(2)), DistanceClass::SameBoard);
        assert_eq!(t.distance(CoreId(0), McId(4)), DistanceClass::Remote);
    }

    #[test]
    fn core_distance_symmetry() {
        let t = Topology::two_boards();
        for a in 0..t.total_cores() {
            for b in 0..t.total_cores() {
                assert_eq!(
                    t.core_distance(CoreId(a), CoreId(b)),
                    t.core_distance(CoreId(b), CoreId(a))
                );
            }
        }
    }

    #[test]
    fn region_interleaving_covers_all_mcs() {
        let t = Topology::paper_default();
        let geom = Geometry::new(64, 512);
        let mut seen = [false; 2];
        for r in 0..8 {
            seen[t.mc_of_region(RegionAddr(r)).0] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Every line of a region maps to the same controller.
        let region = RegionAddr(5);
        let mc = t.mc_of_region(region);
        for line in geom.lines_in_region(region) {
            assert_eq!(t.mc_of_line(line, geom), mc);
        }
    }

    #[test]
    fn for_cores_shapes() {
        for (cores, boards) in [(4, 1), (8, 1), (16, 2), (32, 4), (64, 8)] {
            let t = Topology::for_cores(cores);
            assert_eq!(t.total_cores(), cores, "for_cores({cores})");
            assert_eq!(t.boards, boards, "for_cores({cores}) boards");
            // Region interleaving still covers every controller.
            let mut seen = vec![false; t.total_chips()];
            for r in 0..t.total_chips() as u64 {
                seen[t.mc_of_region(RegionAddr(r)).0] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
        assert_eq!(Topology::for_cores(4), Topology::paper_default());
    }

    #[test]
    #[should_panic(expected = "for_cores supports")]
    fn for_cores_rejects_odd_counts() {
        let _ = Topology::for_cores(12);
    }

    #[test]
    fn clusters_are_boards() {
        let t = Topology::two_boards();
        assert_eq!(t.clusters(), 2);
        // Cores 0..7 live on board 0, cores 8..15 on board 1.
        for c in 0..8 {
            assert_eq!(t.cluster_of(CoreId(c)), 0);
            assert_eq!(t.cluster_of(CoreId(c + 8)), 1);
        }
        assert_eq!(t.cluster_of_mc(McId(0)), 0);
        assert_eq!(t.cluster_of_mc(McId(4)), 1);
        // Cross-cluster pairs are exactly the Remote pairs.
        for a in 0..t.total_cores() {
            for b in 0..t.total_cores() {
                let cross = t.cluster_of(CoreId(a)) != t.cluster_of(CoreId(b));
                let remote = t.core_distance(CoreId(a), CoreId(b)) == DistanceClass::Remote;
                assert_eq!(cross, remote, "cores {a},{b}");
            }
        }
    }

    #[test]
    fn home_mc_is_own_chip() {
        let t = Topology::paper_default();
        assert_eq!(t.home_mc(CoreId(3)), McId(1));
    }

    #[test]
    fn display_impls() {
        assert_eq!(CoreId(2).to_string(), "cpu2");
        assert_eq!(McId(1).to_string(), "mc1");
    }
}
