//! Memory controllers with DRAM bank occupancy.
//!
//! Each chip integrates one controller. A controller services one access
//! per bank-occupancy interval; contention shows up as queuing delay on
//! top of the DRAM access latency from [`crate::latency::LatencyModel`].

use crate::event::MemEvent;
use cgct_sim::{Cycle, EventQueue, SystemCycle};
use cgct_trace::{EventKind, TraceEvent, TraceSink};

/// One memory controller.
///
/// # Examples
///
/// ```
/// use cgct_interconnect::MemoryController;
/// use cgct_sim::{Cycle, SystemCycle};
///
/// let mut mc = MemoryController::new(SystemCycle(4), 2);
/// // Two accesses proceed in parallel (2 banks)...
/// assert_eq!(mc.start_access(Cycle(0)), Cycle(0));
/// assert_eq!(mc.start_access(Cycle(0)), Cycle(0));
/// // ...the third waits for a bank.
/// assert_eq!(mc.start_access(Cycle(0)), Cycle(40));
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    /// Time each access occupies a bank.
    occupancy: SystemCycle,
    /// Next-free time per bank.
    banks: Vec<Cycle>,
    accesses: u64,
    /// Total bank queuing delay over all accesses, in whole CPU cycles.
    /// An integer sum is exact and independent of push order, unlike a
    /// floating-point running mean — a determinism hazard once memory
    /// events interleave differently between runs.
    queue_delay_cycles: u64,
}

impl MemoryController {
    /// Creates a controller whose accesses occupy a bank for `occupancy`
    /// and which has `banks` independent banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(occupancy: SystemCycle, banks: usize) -> Self {
        assert!(banks > 0, "memory controller needs at least one bank");
        MemoryController {
            occupancy,
            banks: vec![Cycle::ZERO; banks],
            accesses: 0,
            queue_delay_cycles: 0,
        }
    }

    /// The paper-scale default: 8 banks, 4-system-cycle bank occupancy
    /// (sustains well above the observed peak broadcast rates).
    pub fn paper_default() -> Self {
        MemoryController::new(SystemCycle(4), 8)
    }

    /// Claims a bank at `now`; returns the time the DRAM access actually
    /// starts (equal to `now` when a bank is free).
    pub fn start_access(&mut self, now: Cycle) -> Cycle {
        let (idx, &free_at) = self
            .banks
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            // cgct-lint: allow(D006) controllers are built with at least one bank (asserted in new); fail-stop on a broken config invariant
            .expect("at least one bank");
        let start = now.max(free_at);
        self.banks[idx] = start + self.occupancy.as_cpu_cycles();
        self.accesses += 1;
        self.queue_delay_cycles += start - now;
        start
    }

    /// [`MemoryController::start_access_traced`] that also schedules a
    /// [`MemEvent::DramComplete`] at the cycle the bank finishes, so
    /// the machine's event-driven clock can jump straight to the
    /// completion instead of discovering it by re-ticking cores.
    pub fn start_access_event(
        &mut self,
        now: Cycle,
        events: &mut EventQueue<MemEvent>,
        trace: Option<(&mut dyn TraceSink, u8, u64)>,
    ) -> Cycle {
        let start = self.start_access_traced(now, trace);
        events.schedule(
            start + self.occupancy.as_cpu_cycles(),
            MemEvent::DramComplete,
        );
        start
    }

    /// [`MemoryController::start_access`] that also records an
    /// [`EventKind::DramStart`] (with the bank queuing delay) for
    /// request `(node, seq)` in `sink`. Same bank schedule either way:
    /// tracing never changes when accesses start.
    pub fn start_access_traced(
        &mut self,
        now: Cycle,
        trace: Option<(&mut dyn TraceSink, u8, u64)>,
    ) -> Cycle {
        let start = self.start_access(now);
        if let Some((sink, node, seq)) = trace {
            sink.record(TraceEvent {
                node,
                seq,
                cycle: start.0,
                kind: EventKind::DramStart {
                    queued: start - now,
                },
            });
        }
        start
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Mean bank queuing delay per access, in milli-cycles (fixed
    /// point: `total * 1000 / accesses`) — integer-exact, so the value
    /// cannot depend on the order delays were accumulated.
    pub fn mean_queue_delay_milli(&self) -> u64 {
        self.queue_delay_cycles
            .saturating_mul(1000)
            .checked_div(self.accesses)
            .unwrap_or(0)
    }

    /// Mean bank queuing delay in CPU cycles (derived from
    /// [`MemoryController::mean_queue_delay_milli`]).
    pub fn mean_queue_delay(&self) -> f64 {
        self.mean_queue_delay_milli() as f64 / 1000.0
    }
}

impl cgct_sim::Snap for MemoryController {
    fn snap(&self) -> cgct_sim::Json {
        use cgct_sim::Json;
        Json::obj([
            ("occupancy", Json::u64(self.occupancy.0)),
            ("banks", self.banks.snap()),
            ("accesses", Json::u64(self.accesses)),
            ("queue_delay_cycles", Json::u64(self.queue_delay_cycles)),
        ])
    }
    fn unsnap(v: &cgct_sim::Json) -> Result<Self, String> {
        use cgct_sim::snap::unsnap_field;
        let banks: Vec<Cycle> = unsnap_field(v, "banks")?;
        if banks.is_empty() {
            return Err("memory controller needs at least one bank".to_string());
        }
        Ok(MemoryController {
            occupancy: SystemCycle(unsnap_field(v, "occupancy")?),
            banks,
            accesses: unsnap_field(v, "accesses")?,
            queue_delay_cycles: unsnap_field(v, "queue_delay_cycles")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_run_in_parallel() {
        let mut mc = MemoryController::new(SystemCycle(4), 4);
        for _ in 0..4 {
            assert_eq!(mc.start_access(Cycle(0)), Cycle(0));
        }
        assert_eq!(mc.start_access(Cycle(0)), Cycle(40));
        assert_eq!(mc.accesses(), 5);
    }

    #[test]
    fn bank_frees_after_occupancy() {
        let mut mc = MemoryController::new(SystemCycle(2), 1);
        assert_eq!(mc.start_access(Cycle(0)), Cycle(0));
        assert_eq!(mc.start_access(Cycle(5)), Cycle(20));
        assert_eq!(mc.start_access(Cycle(100)), Cycle(100));
    }

    #[test]
    fn queue_delay_statistics() {
        let mut mc = MemoryController::new(SystemCycle(1), 1);
        mc.start_access(Cycle(0)); // 0 delay
        mc.start_access(Cycle(0)); // 10 delay
        assert_eq!(mc.mean_queue_delay_milli(), 5_000);
        assert!((mc.mean_queue_delay() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn event_start_matches_and_schedules_completion() {
        let mut mc = MemoryController::new(SystemCycle(2), 1);
        let mut shadow = MemoryController::new(SystemCycle(2), 1);
        let mut q = EventQueue::new();
        let s0 = mc.start_access_event(Cycle(0), &mut q, None);
        let s1 = mc.start_access_event(Cycle(5), &mut q, None);
        assert_eq!(s0, shadow.start_access(Cycle(0)));
        assert_eq!(s1, shadow.start_access(Cycle(5)));
        // Completions land one bank-occupancy after each start.
        assert_eq!(q.pop(), Some((s0 + 20, MemEvent::DramComplete)));
        assert_eq!(q.pop(), Some((s1 + 20, MemEvent::DramComplete)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn traced_start_matches_and_records() {
        let mut mc = MemoryController::new(SystemCycle(2), 1);
        let mut shadow = MemoryController::new(SystemCycle(2), 1);
        let mut sink = cgct_trace::TraceBuffer::new(8);
        let s0 = mc.start_access_traced(Cycle(0), None);
        let s1 = mc.start_access_traced(Cycle(5), Some((&mut sink, 1, 4)));
        assert_eq!(s0, shadow.start_access(Cycle(0)));
        assert_eq!(s1, shadow.start_access(Cycle(5)));
        let ev: Vec<_> = sink.events().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].node, ev[0].seq, ev[0].cycle), (1, 4, s1.0));
        assert_eq!(
            ev[0].kind,
            EventKind::DramStart {
                queued: s1 - Cycle(5)
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = MemoryController::new(SystemCycle(1), 0);
    }
}

#[cfg(test)]
mod queueing_props {
    use super::*;
    use cgct_sim::check::{check, gen_vec};

    /// Bank starts never go backwards, never start before the
    /// request, and respect per-bank occupancy.
    #[test]
    fn bank_scheduling_is_causal() {
        check("memctrl::bank_scheduling_is_causal", 64, |g| {
            let banks = g.gen_range(1usize..8);
            let occupancy = g.gen_range(1u64..32);
            let mut arrivals = gen_vec(g, 1..100, |g| g.gen_range(0u64..10_000));
            arrivals.sort_unstable();
            let mut mc = MemoryController::new(SystemCycle(occupancy), banks);
            let mut starts = Vec::new();
            for &a in &arrivals {
                let s = mc.start_access(Cycle(a));
                assert!(s >= Cycle(a), "start before arrival");
                starts.push(s);
            }
            // Throughput bound: in any window, at most
            // banks * window/occupancy accesses can start.
            let occ_cpu = occupancy * 10;
            for (i, &s) in starts.iter().enumerate() {
                let concurrent = starts[..i].iter().filter(|&&t| t + occ_cpu > s).count();
                assert!(
                    concurrent < banks,
                    "{concurrent} overlapping starts with {banks} banks"
                );
            }
            assert_eq!(mc.accesses(), arrivals.len() as u64);
        });
    }
}
