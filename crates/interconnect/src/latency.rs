//! The latency model of Table 3 and Figure 6.
//!
//! All scenario latencies are returned in **CPU cycles** (1.5 GHz); the
//! underlying parameters are in 150 MHz system cycles as the paper quotes
//! them. Figure 6's scenario totals (in system cycles):
//!
//! | scenario | snoop | direct |
//! |---|---|---|
//! | own memory        | 25 | ~18 |
//! | same data switch  | 25 | 20 |
//! | same board        | 30 | 27 |
//! | remote            | 35 | 34 |
//!
//! A snooped access overlaps DRAM with the snoop, paying only the
//! 7-system-cycle DRAM remainder after the 16-cycle snoop; a direct access
//! pays the full 16-cycle DRAM latency after a short request delivery.

use cgct_sim::SystemCycle;

/// Physical distance between a requester and a responder (memory
/// controller or cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DistanceClass {
    /// On the requester's own chip.
    SameChip,
    /// On another chip attached to the same data switch.
    SameSwitch,
    /// On another data switch of the same board.
    SameBoard,
    /// On another board.
    Remote,
}

impl DistanceClass {
    /// All four classes, nearest first.
    pub const ALL: [DistanceClass; 4] = [
        DistanceClass::SameChip,
        DistanceClass::SameSwitch,
        DistanceClass::SameBoard,
        DistanceClass::Remote,
    ];
}

/// The interconnect latency parameters (Table 3), with scenario
/// compositions (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Snoop latency: request broadcast until snoop response (16 sc).
    pub snoop: SystemCycle,
    /// Full DRAM access latency (16 sc).
    pub dram: SystemCycle,
    /// DRAM remainder after a snoop when the access was overlapped with
    /// the broadcast (7 sc).
    pub dram_after_snoop: SystemCycle,
    /// Critical-word data transfer per distance class, in system cycles.
    /// Figure 6 charges 2 cycles on-chip/same-switch, 7 same-board, 12
    /// remote.
    pub transfer: [SystemCycle; 4],
    /// Direct request delivery per distance class, in **CPU** cycles:
    /// 1 cycle on-chip (0.7 ns), then 2/4/6 system cycles (Table 3).
    pub direct_request_cpu: [u64; 4],
}

impl LatencyModel {
    /// Table 3 / Figure 6 parameters.
    pub fn paper_default() -> Self {
        LatencyModel {
            snoop: SystemCycle(16),
            dram: SystemCycle(16),
            dram_after_snoop: SystemCycle(7),
            transfer: [
                SystemCycle(2),
                SystemCycle(2),
                SystemCycle(7),
                SystemCycle(12),
            ],
            direct_request_cpu: [
                1,
                SystemCycle(2).as_cpu_cycles(),
                SystemCycle(4).as_cpu_cycles(),
                SystemCycle(6).as_cpu_cycles(),
            ],
        }
    }

    /// Critical-word transfer latency in CPU cycles.
    pub fn transfer_cpu(&self, dist: DistanceClass) -> u64 {
        self.transfer[dist as usize].as_cpu_cycles()
    }

    /// Direct request delivery latency in CPU cycles.
    pub fn direct_request(&self, dist: DistanceClass) -> u64 {
        self.direct_request_cpu[dist as usize]
    }

    /// Snoop latency in CPU cycles.
    pub fn snoop_cpu(&self) -> u64 {
        self.snoop.as_cpu_cycles()
    }

    /// Figure 6 top rows: a broadcast request serviced from memory at
    /// `dist`, with the DRAM access overlapped with the snoop.
    /// Total CPU cycles from broadcast grant to critical word.
    pub fn snoop_memory_access(&self, dist: DistanceClass) -> u64 {
        self.snoop.as_cpu_cycles() + self.dram_after_snoop.as_cpu_cycles() + self.transfer_cpu(dist)
    }

    /// Figure 6 bottom rows: a direct request to the memory controller at
    /// `dist` — request delivery, full DRAM access, then the transfer.
    pub fn direct_memory_access(&self, dist: DistanceClass) -> u64 {
        self.direct_request(dist) + self.dram.as_cpu_cycles() + self.transfer_cpu(dist)
    }

    /// A broadcast request serviced by another cache (M/O owner) at
    /// `dist`: snoop plus cache-to-cache critical-word transfer.
    pub fn cache_to_cache(&self, dist: DistanceClass) -> u64 {
        self.snoop.as_cpu_cycles() + self.transfer_cpu(dist)
    }

    /// Snoop latency of the two-level hierarchical machine, in CPU
    /// cycles. A cluster-local request arbitrates and snoops only its
    /// own cluster bus (the flat snoop latency). A cluster-crossing
    /// request additionally pays a remote request delivery to the other
    /// clusters' buses and a remote response back — two
    /// [`DistanceClass::Remote`] direct-request legs around the remote
    /// snoop.
    pub fn cluster_snoop(&self, crosses_clusters: bool) -> u64 {
        let local = self.snoop.as_cpu_cycles();
        if crosses_clusters {
            local + 2 * self.direct_request(DistanceClass::Remote)
        } else {
            local
        }
    }

    /// Latency advantage of the direct path for memory at `dist`
    /// (positive = direct is faster).
    pub fn direct_advantage(&self, dist: DistanceClass) -> i64 {
        self.snoop_memory_access(dist) as i64 - self.direct_memory_access(dist) as i64
    }

    /// The conservative-parallel lookahead for `topo`, in CPU cycles:
    /// the minimum latency at which one node's activity can become
    /// visible to another node's architectural state.
    ///
    /// Two mechanisms bound it from below (DESIGN.md, "Concurrency &
    /// determinism model"):
    ///
    /// * every cross-node state change (snoop application, ownership
    ///   transfer) happens at a **bus grant**, and the address network
    ///   arbitrates on the 150 MHz system clock — one broadcast per
    ///   [`CPU_CYCLES_PER_SYSTEM_CYCLE`](cgct_sim::CPU_CYCLES_PER_SYSTEM_CYCLE)
    ///   CPU cycles, aligned to it;
    /// * the fastest point-to-point delivery between two distinct nodes
    ///   is the direct-request latency at their distance class (1 CPU
    ///   cycle for same-chip neighbours).
    ///
    /// The lookahead is the larger of the two — for the paper machine,
    /// one system cycle (10 CPU cycles): a node that has processed all
    /// inputs up to time `T` can safely advance to `T + lookahead`
    /// before synchronizing, because no other node's request issued at
    /// or after `T` can be granted, delivered, or snooped sooner.
    pub fn epoch_lookahead(&self, topo: &crate::topology::Topology) -> u64 {
        use crate::topology::CoreId;
        let n = topo.total_cores();
        let mut min_delivery = u64::MAX;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let d = topo.core_distance(CoreId(a), CoreId(b));
                    min_delivery = min_delivery.min(self.direct_request(d));
                }
            }
        }
        // A single-node machine has no cross-node traffic at all; any
        // positive lookahead is safe, so fall through to the bus clock.
        min_delivery.max(cgct_sim::CPU_CYCLES_PER_SYSTEM_CYCLE)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DistanceClass::*;

    #[test]
    fn figure6_snoop_scenarios() {
        let m = LatencyModel::paper_default();
        // In system cycles: 25, 25, 30, 35.
        assert_eq!(m.snoop_memory_access(SameChip), 250);
        assert_eq!(m.snoop_memory_access(SameSwitch), 250);
        assert_eq!(m.snoop_memory_access(SameBoard), 300);
        assert_eq!(m.snoop_memory_access(Remote), 350);
    }

    #[test]
    fn figure6_direct_scenarios() {
        let m = LatencyModel::paper_default();
        // "~18 cycles" own memory: 1 CPU cycle + 16 sc DRAM + 2 sc xfer.
        assert_eq!(m.direct_memory_access(SameChip), 181);
        assert_eq!(m.direct_memory_access(SameSwitch), 200);
        assert_eq!(m.direct_memory_access(SameBoard), 270);
        assert_eq!(m.direct_memory_access(Remote), 340);
    }

    #[test]
    fn direct_is_always_at_least_as_fast() {
        let m = LatencyModel::paper_default();
        for d in DistanceClass::ALL {
            assert!(m.direct_advantage(d) >= 0, "{d:?}");
        }
        // The advantage shrinks with distance (§4: "the reduction in
        // overhead versus snooping is offset somewhat by the latency of
        // sending requests to the memory controller").
        assert!(m.direct_advantage(SameChip) > m.direct_advantage(Remote));
    }

    #[test]
    fn cache_to_cache_latencies() {
        let m = LatencyModel::paper_default();
        assert_eq!(m.cache_to_cache(SameSwitch), 180);
        assert_eq!(m.cache_to_cache(Remote), 280);
    }

    #[test]
    fn cluster_snoop_latencies() {
        let m = LatencyModel::paper_default();
        // Local = the flat 16-sc snoop; crossing adds two Remote
        // request legs (6 sc each): 16 + 12 = 28 sc.
        assert_eq!(m.cluster_snoop(false), 160);
        assert_eq!(m.cluster_snoop(true), 160 + 2 * m.direct_request(Remote));
        assert!(m.cluster_snoop(true) > m.cluster_snoop(false));
    }

    #[test]
    fn distance_ordering() {
        assert!(SameChip < SameSwitch && SameSwitch < SameBoard && SameBoard < Remote);
    }

    #[test]
    fn epoch_lookahead_is_one_system_cycle_for_the_paper_machine() {
        use crate::topology::Topology;
        let m = LatencyModel::paper_default();
        // Same-chip neighbours can deliver a direct request in 1 CPU
        // cycle, but nothing coherent happens off-grant and grants are
        // one per system clock: the bus clock is the binding floor.
        assert_eq!(
            m.epoch_lookahead(&Topology::paper_default()),
            cgct_sim::CPU_CYCLES_PER_SYSTEM_CYCLE
        );
        assert_eq!(
            m.epoch_lookahead(&Topology::two_boards()),
            cgct_sim::CPU_CYCLES_PER_SYSTEM_CYCLE
        );
    }

    #[test]
    fn epoch_lookahead_never_exceeds_any_cross_node_path() {
        use crate::topology::{CoreId, Topology};
        let m = LatencyModel::paper_default();
        for topo in [Topology::paper_default(), Topology::two_boards()] {
            let la = m.epoch_lookahead(&topo);
            let n = topo.total_cores();
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        let d = topo.core_distance(CoreId(a), CoreId(b));
                        // Delivery may be faster than the lookahead
                        // (same-chip: 1 cycle), but only because the
                        // grant that precedes it is bus-clock aligned.
                        assert!(
                            la <= m
                                .direct_request(d)
                                .max(cgct_sim::CPU_CYCLES_PER_SYSTEM_CYCLE)
                        );
                    }
                }
            }
        }
    }
}
