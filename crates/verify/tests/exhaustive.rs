//! Acceptance tests for the exhaustive checker: clean fixpoints on the
//! faithful protocol, guaranteed counterexamples on mutated wirings,
//! and cross-validation of the model against the real `MemorySystem`.

use cgct::RegionState;
use cgct_cache::{Addr, LineAddr, RegionAddr};
use cgct_interconnect::CoreId;
use cgct_sim::rng::Xoshiro256pp;
use cgct_sim::Cycle;
use cgct_system::{CoherenceMode, MemorySystem, SystemConfig};
use cgct_verify::checker::explore;
use cgct_verify::model::{apply, GlobalState, ModelConfig, Mutation, NodeState};

/// Golden state/transition counts for the acceptance configuration
/// (3 nodes x 1 region x 2 lines). A change here means the protocol's
/// reachable state space changed — deliberate protocol edits must update
/// these, anything else is a regression.
const GOLDEN_3X2_STATES: u64 = 4947;
const GOLDEN_3X2_TRANSITIONS: u64 = 116_040;

#[test]
fn acceptance_config_explores_to_fixpoint_with_zero_violations() {
    let cfg = ModelConfig::default_3x2();
    let r = explore(&cfg);
    assert!(
        r.clean(),
        "{}",
        r.violation.unwrap().render(&GlobalState::initial(&cfg))
    );
    assert_eq!(r.states, GOLDEN_3X2_STATES);
    assert_eq!(r.transitions, GOLDEN_3X2_TRANSITIONS);
    assert_eq!(r.reachable.len() as u64, r.states);
}

#[test]
fn state_count_is_stable_across_runs() {
    let cfg = ModelConfig::default_3x2();
    let a = explore(&cfg);
    let b = explore(&cfg);
    assert_eq!(a.states, b.states);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.reachable, b.reachable);
}

#[test]
fn other_shapes_are_clean() {
    for (nodes, lines) in [(2, 1), (2, 2), (4, 1)] {
        let cfg = ModelConfig {
            nodes,
            lines,
            self_invalidation: true,
            mutation: Mutation::None,
        };
        let r = explore(&cfg);
        assert!(
            r.clean(),
            "{nodes}x{lines}: {}",
            r.violation.unwrap().render(&GlobalState::initial(&cfg))
        );
    }
}

#[test]
fn disabling_self_invalidation_is_still_safe() {
    let cfg = ModelConfig {
        self_invalidation: false,
        ..ModelConfig::default_3x2()
    };
    let r = explore(&cfg);
    assert!(
        r.clean(),
        "{}",
        r.violation.unwrap().render(&GlobalState::initial(&cfg))
    );
    // Keeping stale entries alive changes the space, not its safety.
    assert_ne!(r.states, GOLDEN_3X2_STATES);
}

#[test]
fn every_fault_injection_yields_a_counterexample() {
    for mutation in Mutation::ALL_FAULTS {
        let cfg = ModelConfig {
            mutation,
            ..ModelConfig::default_3x2()
        };
        let r = explore(&cfg);
        let v = r
            .violation
            .unwrap_or_else(|| panic!("{} must be caught", mutation.name()));
        assert!(!v.trace.is_empty(), "{}: empty trace", mutation.name());
        // The trace must replay: applying its events from the initial
        // state reproduces exactly the recorded intermediate states.
        let mut state = GlobalState::initial(&cfg);
        for (i, step) in v.trace.iter().enumerate() {
            state = apply(&cfg, &state, step.event);
            assert_eq!(
                state,
                step.state,
                "{}: trace step {i} does not replay",
                mutation.name()
            );
        }
        // And the replayed final state violates an invariant.
        assert!(
            cgct_verify::invariants::check(&state).is_err(),
            "{}: final trace state passes the invariants",
            mutation.name()
        );
    }
}

// ------------------------------------------------------------------
// Cross-validation: every global state a real MemorySystem reaches
// under random traffic must be in the model's reachable set.
// ------------------------------------------------------------------

/// Projects the live system's state for region 0 onto the model's
/// abstract state: per node, the L2 MOESI state of each line of the
/// region plus the RCA entry (state, line count).
fn observed_state(m: &MemorySystem, nodes: usize, lines: usize) -> GlobalState {
    GlobalState {
        nodes: (0..nodes)
            .map(|c| {
                let core = CoreId(c);
                let entry = m.rca(core).expect("cgct mode").entry(RegionAddr(0));
                NodeState {
                    lines: (0..lines)
                        .map(|l| m.l2_state(core, LineAddr(l as u64)))
                        .collect(),
                    region: entry.map_or(RegionState::Invalid, |e| e.state),
                    line_count: entry.map_or(0, |e| e.line_count),
                }
            })
            .collect(),
    }
}

/// Drives `ops` random load/ifetch/store/dcbz operations from `nodes`
/// cores over `lines` lines of region 0 and asserts after every single
/// operation that the observed global state is model-reachable.
fn cross_validate(nodes: usize, lines: usize, ops: usize, seed: u64) {
    let model = ModelConfig {
        nodes,
        lines,
        self_invalidation: true,
        mutation: Mutation::None,
    };
    let reachable = explore(&model);
    assert!(reachable.clean());

    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 64 * lines as u64,
        sets: 8192,
    });
    // The model covers the coherence protocol, not the predictors: turn
    // off everything that issues requests on its own or changes fill
    // policy, and make completion times deterministic.
    cfg.stream_prefetch = false;
    cfg.exclusive_prefetch = false;
    cfg.shared_read_bypass = false;
    cfg.owner_prediction = false;
    cfg.perturbation = 0;
    assert_eq!(cfg.geometry().lines_per_region(), lines as u64);
    let mut m = MemorySystem::new(cfg, seed);

    let mut g = Xoshiro256pp::seed_from_u64(seed);
    let mut now = Cycle(0);
    for i in 0..ops {
        let core = CoreId(g.gen_range(0..nodes));
        let addr = Addr(64 * g.gen_range(0..lines as u64));
        now = match g.gen_range(0u32..4) {
            0 => m.load(core, now, addr, false),
            1 => m.ifetch(core, now, addr),
            2 => m.store(core, now, addr),
            _ => m.dcbz(core, now, addr),
        };
        let state = observed_state(&m, nodes, lines);
        assert!(
            reachable.reachable.contains(&state.encode()),
            "op {i}: live state {state} is not model-reachable"
        );
        m.check_invariants()
            .unwrap_or_else(|e| panic!("op {i}: {e}"));
    }
}

#[test]
fn live_system_stays_within_the_model_reachable_set_4_nodes() {
    // All four cores of the paper topology, one-line regions.
    cross_validate(4, 1, 1500, 0xC6C7_2005);
}

#[test]
fn live_system_stays_within_the_model_reachable_set_2_nodes() {
    // Two active cores, two-line regions. The idle cores never cache
    // anything, so the active pair must behave exactly like the 2-node
    // model; the projection below checks the idle cores stay empty.
    let nodes = 2;
    let lines = 2;
    let model = ModelConfig {
        nodes,
        lines,
        self_invalidation: true,
        mutation: Mutation::None,
    };
    let reachable = explore(&model);
    assert!(reachable.clean());

    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 128,
        sets: 8192,
    });
    cfg.stream_prefetch = false;
    cfg.exclusive_prefetch = false;
    cfg.perturbation = 0;
    let mut m = MemorySystem::new(cfg, 7);

    let mut g = Xoshiro256pp::seed_from_u64(7);
    let mut now = Cycle(0);
    for i in 0..1500 {
        let core = CoreId(g.gen_range(0..nodes));
        let addr = Addr(64 * g.gen_range(0..lines as u64));
        now = match g.gen_range(0u32..4) {
            0 => m.load(core, now, addr, false),
            1 => m.ifetch(core, now, addr),
            2 => m.store(core, now, addr),
            _ => m.dcbz(core, now, addr),
        };
        for idle in nodes..4 {
            assert_eq!(observed_state(&m, 4, lines).nodes[idle].cached_lines(), 0);
        }
        let state = observed_state(&m, nodes, lines);
        assert!(
            reachable.reachable.contains(&state.encode()),
            "op {i}: live state {state} is not model-reachable"
        );
    }
}
