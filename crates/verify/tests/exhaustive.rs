//! Acceptance tests for the exhaustive checker: clean fixpoints on the
//! faithful protocol, guaranteed counterexamples on mutated wirings,
//! and cross-validation of the model against the real `MemorySystem`.

use cgct::RegionState;
use cgct_cache::{Addr, LineAddr, RegionAddr};
use cgct_interconnect::CoreId;
use cgct_sim::rng::Xoshiro256pp;
use cgct_sim::Cycle;
use cgct_system::{CoherenceMode, MemorySystem, SystemConfig};
use cgct_verify::checker::explore;
use cgct_verify::model::{
    apply, GlobalState, HomeState, LineDir, ModelConfig, Mutation, NodeState, Protocol,
};

/// Golden state/transition counts for the acceptance configuration
/// (3 nodes x 1 region x 2 lines). A change here means the protocol's
/// reachable state space changed — deliberate protocol edits must update
/// these, anything else is a regression.
const GOLDEN_3X2_STATES: u64 = 4947;
const GOLDEN_3X2_TRANSITIONS: u64 = 116_040;

/// Golden counts for the directory machine at the same shape. The space
/// is much larger: the home's per-line owner/sharer bits and the
/// region-grain directory cache mask are part of the global state, and
/// silent clean evictions leave reachable stale-bit patterns.
const GOLDEN_DIR_3X2_STATES: u64 = 184_879;
const GOLDEN_DIR_3X2_TRANSITIONS: u64 = 4_496_964;

#[test]
fn acceptance_config_explores_to_fixpoint_with_zero_violations() {
    let cfg = ModelConfig::default_3x2();
    let r = explore(&cfg);
    assert!(
        r.clean(),
        "{}",
        r.violation.unwrap().render(&GlobalState::initial(&cfg))
    );
    assert_eq!(r.states, GOLDEN_3X2_STATES);
    assert_eq!(r.transitions, GOLDEN_3X2_TRANSITIONS);
    assert_eq!(r.reachable.len() as u64, r.states);
}

#[test]
fn state_count_is_stable_across_runs() {
    let cfg = ModelConfig::default_3x2();
    let a = explore(&cfg);
    let b = explore(&cfg);
    assert_eq!(a.states, b.states);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.reachable, b.reachable);
}

#[test]
fn other_shapes_are_clean() {
    for (nodes, lines) in [(2, 1), (2, 2), (4, 1)] {
        let cfg = ModelConfig {
            nodes,
            lines,
            ..ModelConfig::default_3x2()
        };
        let r = explore(&cfg);
        assert!(
            r.clean(),
            "{nodes}x{lines}: {}",
            r.violation.unwrap().render(&GlobalState::initial(&cfg))
        );
    }
}

#[test]
fn directory_acceptance_config_explores_to_fixpoint_with_zero_violations() {
    let cfg = ModelConfig::directory_3x2();
    let r = explore(&cfg);
    assert!(
        r.clean(),
        "{}",
        r.violation.unwrap().render(&GlobalState::initial(&cfg))
    );
    assert_eq!(r.states, GOLDEN_DIR_3X2_STATES);
    assert_eq!(r.transitions, GOLDEN_DIR_3X2_TRANSITIONS);
}

#[test]
fn hierarchical_reachable_space_equals_the_flat_bus() {
    // The inter-cluster region filter only skips clusters that provably
    // cache nothing of the region, so partitioning the machine must not
    // change the reachable state space at all — for any cluster count.
    let snoop = explore(&ModelConfig::default_3x2());
    for clusters in [2, 3] {
        let cfg = ModelConfig {
            clusters,
            ..ModelConfig::hierarchical_3x2()
        };
        let r = explore(&cfg);
        assert!(
            r.clean(),
            "{clusters} clusters: {}",
            r.violation.unwrap().render(&GlobalState::initial(&cfg))
        );
        assert_eq!(r.states, GOLDEN_3X2_STATES, "{clusters} clusters");
        assert_eq!(r.transitions, GOLDEN_3X2_TRANSITIONS, "{clusters} clusters");
        assert_eq!(r.reachable, snoop.reachable, "{clusters} clusters");
    }
}

#[test]
fn disabling_self_invalidation_is_still_safe() {
    let cfg = ModelConfig {
        self_invalidation: false,
        ..ModelConfig::default_3x2()
    };
    let r = explore(&cfg);
    assert!(
        r.clean(),
        "{}",
        r.violation.unwrap().render(&GlobalState::initial(&cfg))
    );
    // Keeping stale entries alive changes the space, not its safety.
    assert_ne!(r.states, GOLDEN_3X2_STATES);
}

#[test]
fn every_fault_injection_yields_a_counterexample() {
    // Every fault applicable to a protocol must be caught under that
    // protocol: the four line/region wirings under all three machines,
    // plus the directory machine's stale-region-cache fault and the
    // hierarchical machine's skipped cluster invalidation.
    let bases = [
        ModelConfig::default_3x2(),
        ModelConfig::directory_3x2(),
        ModelConfig::hierarchical_3x2(),
    ];
    for base in bases {
        for mutation in base.applicable_faults() {
            let cfg = ModelConfig { mutation, ..base };
            let label = format!("{}/{}", cfg.protocol.name(), mutation.name());
            let r = explore(&cfg);
            let v = r
                .violation
                .unwrap_or_else(|| panic!("{label} must be caught"));
            assert!(!v.trace.is_empty(), "{label}: empty trace");
            // The trace must replay: applying its events from the initial
            // state reproduces exactly the recorded intermediate states.
            let mut state = GlobalState::initial(&cfg);
            for (i, step) in v.trace.iter().enumerate() {
                state = apply(&cfg, &state, step.event);
                assert_eq!(state, step.state, "{label}: trace step {i} does not replay");
            }
            // And the replayed final state violates an invariant.
            assert!(
                cgct_verify::invariants::check(&state).is_err(),
                "{label}: final trace state passes the invariants"
            );
        }
    }
}

#[test]
fn protocol_specific_faults_reject_other_protocols_cleanly() {
    // The new faults only have meaning on their machine; the base
    // protocols must not silently "pass" them.
    let snoop = ModelConfig::default_3x2();
    assert!(!snoop
        .applicable_faults()
        .contains(&Mutation::StaleRegionDirCache));
    assert!(!snoop
        .applicable_faults()
        .contains(&Mutation::SkipClusterInvalidation));
    assert!(ModelConfig::directory_3x2()
        .applicable_faults()
        .contains(&Mutation::StaleRegionDirCache));
    assert!(ModelConfig::hierarchical_3x2()
        .applicable_faults()
        .contains(&Mutation::SkipClusterInvalidation));
}

// ------------------------------------------------------------------
// Cross-validation: every global state a real MemorySystem reaches
// under random traffic must be in the model's reachable set.
// ------------------------------------------------------------------

/// Projects the live system's state for region 0 onto the model's
/// abstract state: per node, the L2 MOESI state of each line of the
/// region plus the RCA entry (state, line count).
fn observed_state(m: &MemorySystem, nodes: usize, lines: usize) -> GlobalState {
    observed_state_mapped(m, &(0..nodes).collect::<Vec<_>>(), lines)
}

/// Same projection with an explicit model-node -> live-core map, for
/// live machines larger than the model (hierarchical cross-validation
/// drives 4 active cores of a 16-core machine).
fn observed_state_mapped(m: &MemorySystem, cores: &[usize], lines: usize) -> GlobalState {
    GlobalState {
        nodes: cores
            .iter()
            .map(|&c| {
                let core = CoreId(c);
                let entry = m.rca(core).expect("cgct mode").entry(RegionAddr(0));
                NodeState {
                    lines: (0..lines)
                        .map(|l| m.l2_state(core, LineAddr(l as u64)))
                        .collect(),
                    region: entry.map_or(RegionState::Invalid, |e| e.state),
                    line_count: entry.map_or(0, |e| e.line_count),
                }
            })
            .collect(),
        home: None,
    }
}

/// Projects the live home controller (directory entries for region 0's
/// lines plus the region-grain directory cache mask) onto the model's
/// [`HomeState`].
fn observed_home(m: &MemorySystem, nodes: usize, lines: usize) -> HomeState {
    let dir = m.directory(0);
    HomeState {
        lines: (0..lines)
            .map(|l| {
                let e = dir.entry(LineAddr(l as u64));
                assert!(
                    e.sharers < 1 << nodes,
                    "live sharer bits outside the model's node range"
                );
                LineDir {
                    owner: e.owner,
                    sharers: e.sharers as u8,
                }
            })
            .collect(),
        cache_mask: m
            .region_dir_cache(0)
            .expect("dir-cgct mode")
            .peek(RegionAddr(0))
            .map(|mask| mask as u8),
    }
}

/// Drives `ops` random load/ifetch/store/dcbz operations from `nodes`
/// cores over `lines` lines of region 0 and asserts after every single
/// operation that the observed global state is model-reachable.
fn cross_validate(nodes: usize, lines: usize, ops: usize, seed: u64) {
    let model = ModelConfig {
        nodes,
        lines,
        ..ModelConfig::default_3x2()
    };
    let reachable = explore(&model);
    assert!(reachable.clean());

    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 64 * lines as u64,
        sets: 8192,
    });
    // The model covers the coherence protocol, not the predictors: turn
    // off everything that issues requests on its own or changes fill
    // policy, and make completion times deterministic.
    cfg.stream_prefetch = false;
    cfg.exclusive_prefetch = false;
    cfg.shared_read_bypass = false;
    cfg.owner_prediction = false;
    cfg.perturbation = 0;
    assert_eq!(cfg.geometry().lines_per_region(), lines as u64);
    let mut m = MemorySystem::new(cfg, seed);

    let mut g = Xoshiro256pp::seed_from_u64(seed);
    let mut now = Cycle(0);
    for i in 0..ops {
        let core = CoreId(g.gen_range(0..nodes));
        let addr = Addr(64 * g.gen_range(0..lines as u64));
        now = match g.gen_range(0u32..4) {
            0 => m.load(core, now, addr, false),
            1 => m.ifetch(core, now, addr),
            2 => m.store(core, now, addr),
            _ => m.dcbz(core, now, addr),
        };
        let state = observed_state(&m, nodes, lines);
        assert!(
            reachable.reachable.contains(&state.encode()),
            "op {i}: live state {state} is not model-reachable"
        );
        m.check_invariants()
            .unwrap_or_else(|e| panic!("op {i}: {e}"));
    }
}

#[test]
fn live_system_stays_within_the_model_reachable_set_4_nodes() {
    // All four cores of the paper topology, one-line regions.
    cross_validate(4, 1, 1500, 0xC6C7_2005);
}

#[test]
fn live_system_stays_within_the_model_reachable_set_2_nodes() {
    // Two active cores, two-line regions. The idle cores never cache
    // anything, so the active pair must behave exactly like the 2-node
    // model; the projection below checks the idle cores stay empty.
    let nodes = 2;
    let lines = 2;
    let model = ModelConfig {
        nodes,
        lines,
        ..ModelConfig::default_3x2()
    };
    let reachable = explore(&model);
    assert!(reachable.clean());

    let mut cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 128,
        sets: 8192,
    });
    cfg.stream_prefetch = false;
    cfg.exclusive_prefetch = false;
    cfg.perturbation = 0;
    let mut m = MemorySystem::new(cfg, 7);

    let mut g = Xoshiro256pp::seed_from_u64(7);
    let mut now = Cycle(0);
    for i in 0..1500 {
        let core = CoreId(g.gen_range(0..nodes));
        let addr = Addr(64 * g.gen_range(0..lines as u64));
        now = match g.gen_range(0u32..4) {
            0 => m.load(core, now, addr, false),
            1 => m.ifetch(core, now, addr),
            2 => m.store(core, now, addr),
            _ => m.dcbz(core, now, addr),
        };
        for idle in nodes..4 {
            assert_eq!(observed_state(&m, 4, lines).nodes[idle].cached_lines(), 0);
        }
        let state = observed_state(&m, nodes, lines);
        assert!(
            reachable.reachable.contains(&state.encode()),
            "op {i}: live state {state} is not model-reachable"
        );
    }
}

#[test]
fn live_directory_system_stays_within_the_model_reachable_set() {
    // The directory machine's cross-validation also projects the home:
    // per-line owner/sharer bits and the region directory cache mask
    // must match a model-reachable home state after every operation.
    let nodes = 4;
    let lines = 1;
    let model = ModelConfig {
        nodes,
        lines,
        protocol: Protocol::DirectoryCgct,
        ..ModelConfig::default_3x2()
    };
    let reachable = explore(&model);
    assert!(reachable.clean());

    let mut cfg = SystemConfig::paper_default(CoherenceMode::DirectoryCgct {
        region_bytes: 64 * lines as u64,
        sets: 8192,
    });
    cfg.stream_prefetch = false;
    cfg.exclusive_prefetch = false;
    cfg.shared_read_bypass = false;
    cfg.owner_prediction = false;
    cfg.perturbation = 0;
    let mut m = MemorySystem::new(cfg, 0xD1CE_2005);
    m.set_sanitize(true);

    let mut g = Xoshiro256pp::seed_from_u64(0xD1CE_2005);
    let mut now = Cycle(0);
    for i in 0..1500 {
        let core = CoreId(g.gen_range(0..nodes));
        let addr = Addr(64 * g.gen_range(0..lines as u64));
        now = match g.gen_range(0u32..4) {
            0 => m.load(core, now, addr, false),
            1 => m.ifetch(core, now, addr),
            2 => m.store(core, now, addr),
            _ => m.dcbz(core, now, addr),
        };
        let mut state = observed_state(&m, nodes, lines);
        state.home = Some(observed_home(&m, nodes, lines));
        assert!(
            reachable.reachable.contains(&state.encode()),
            "op {i}: live state {state} is not model-reachable"
        );
        m.check_invariants()
            .unwrap_or_else(|e| panic!("op {i}: {e}"));
    }
}

#[test]
fn live_hierarchical_system_stays_within_the_model_reachable_set() {
    // Four active cores of a 16-core, 2-board machine — two per board,
    // so cluster-filtered snoops are actually exercised. The model's
    // 4-node/2-cluster reachable space equals the flat bus's, and the
    // live machine must stay inside it; the other 12 cores stay empty.
    use cgct_interconnect::topology::Topology;
    let lines = 1;
    let active = [0usize, 1, 8, 9];
    let model = ModelConfig {
        nodes: active.len(),
        lines,
        protocol: Protocol::Hierarchical,
        clusters: 2,
        ..ModelConfig::default_3x2()
    };
    let reachable = explore(&model);
    assert!(reachable.clean());

    let mut cfg = SystemConfig::paper_default(CoherenceMode::Hierarchical {
        region_bytes: 64 * lines as u64,
        sets: 8192,
    });
    cfg.topology = Topology::for_cores(16);
    cfg.stream_prefetch = false;
    cfg.exclusive_prefetch = false;
    cfg.shared_read_bypass = false;
    cfg.owner_prediction = false;
    cfg.perturbation = 0;
    let mut m = MemorySystem::new(cfg, 0x41E2);
    m.set_sanitize(true);

    let mut g = Xoshiro256pp::seed_from_u64(0x41E2);
    let mut now = Cycle(0);
    for i in 0..1500 {
        let core = CoreId(active[g.gen_range(0..active.len() as u64) as usize]);
        let addr = Addr(64 * g.gen_range(0..lines as u64));
        now = match g.gen_range(0u32..4) {
            0 => m.load(core, now, addr, false),
            1 => m.ifetch(core, now, addr),
            2 => m.store(core, now, addr),
            _ => m.dcbz(core, now, addr),
        };
        for idle in 0..16 {
            if !active.contains(&idle) {
                assert_eq!(
                    observed_state_mapped(&m, &[idle], lines).nodes[0].cached_lines(),
                    0,
                    "idle core {idle} cached something"
                );
            }
        }
        let state = observed_state_mapped(&m, &active, lines);
        assert!(
            reachable.reachable.contains(&state.encode()),
            "op {i}: live state {state} is not model-reachable"
        );
        m.check_invariants()
            .unwrap_or_else(|e| panic!("op {i}: {e}"));
    }
}
