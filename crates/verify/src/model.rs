//! The abstract machine the checker explores: N nodes sharing one
//! region of L lines.
//!
//! A model state keeps, per node, the MOESI state of every line plus the
//! node's region entry (state and cached-line count). The *transition
//! function* is not re-implemented here: every step drives the real
//! protocol code —
//!
//! * [`cgct_cache::snoop_line`] / [`cgct_cache::requester_next_state`]
//!   for the line grain,
//! * a real [`RegionCoherenceArray`] (rebuilt from the abstract node
//!   state, then stepped through [`RegionCoherenceArray::permission`],
//!   [`RegionCoherenceArray::local_fill`],
//!   [`RegionCoherenceArray::external_request`],
//!   [`RegionCoherenceArray::line_cached`] /
//!   [`RegionCoherenceArray::line_uncached`]) for the region grain —
//!
//! sequenced exactly as `cgct_system::MemorySystem::coherent_request`
//! sequences them (snoop lines, classify, region snoop, requester fill).
//! A bug in the transition functions or in their sequencing therefore
//! shows up here as a reachable invariant violation.
//!
//! The [`Mutation`] hook deliberately mis-wires one step of that
//! sequencing so tests can prove the checker detects broken protocols.

use cgct::{
    ExternalPart, FillKind, LocalPart, RcaConfig, RegionCoherenceArray, RegionPermission,
    RegionSnoopResponse, RegionState,
};
use cgct_cache::{
    requester_next_state, snoop_line, Geometry, LineAddr, LineSnoopResponse, MoesiState,
    RegionAddr, ReqKind,
};
use cgct_system::directory::{DirAction, DirEntry, DirRequest, DirectoryController};
use std::fmt;

/// The single region every model run revolves around.
pub const REGION: RegionAddr = RegionAddr(0);

/// Which coherence machine the model drives (mirrors the
/// `cgct_system::CoherenceMode` families that are amenable to
/// exhaustive checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Flat snooping bus with per-node RCAs (`Cgct` mode — the
    /// original acceptance machine).
    #[default]
    Snoop,
    /// Full-map home directory with per-node RCAs and a region-grain
    /// directory cache at the home (`DirectoryCgct` mode). The global
    /// state grows a [`HomeState`].
    DirectoryCgct,
    /// Cluster-snooping machine with an inter-cluster region directory
    /// (`Hierarchical` mode). The cluster line counts are derived
    /// exactly from the line states (as the live system maintains them),
    /// so the state encoding is unchanged from [`Protocol::Snoop`] —
    /// and a clean exploration proves the cluster filter never changes
    /// the reachable space.
    Hierarchical,
}

impl Protocol {
    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Protocol> {
        Some(match name {
            "snoop" => Protocol::Snoop,
            "dir-cgct" => Protocol::DirectoryCgct,
            "hierarchical" => Protocol::Hierarchical,
            _ => return None,
        })
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Snoop => "snoop",
            Protocol::DirectoryCgct => "dir-cgct",
            Protocol::Hierarchical => "hierarchical",
        }
    }
}

/// Checker configuration: the explored machine shape plus the optional
/// fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of processor nodes (2–4).
    pub nodes: usize,
    /// Lines per region (power of two, 1–8).
    pub lines: usize,
    /// Region self-invalidation on zero-count external hits (§3.1);
    /// the paper's default is on, the ablation turns it off.
    pub self_invalidation: bool,
    /// Deliberate protocol fault, for checker self-tests.
    pub mutation: Mutation,
    /// The coherence machine under test.
    pub protocol: Protocol,
    /// Cluster count for [`Protocol::Hierarchical`] (nodes are split
    /// into contiguous groups); must be 1 for the other protocols.
    pub clusters: usize,
}

impl ModelConfig {
    /// The acceptance configuration: 3 nodes x 1 region x 2 lines, no
    /// mutation, flat snooping bus.
    pub fn default_3x2() -> Self {
        ModelConfig {
            nodes: 3,
            lines: 2,
            self_invalidation: true,
            mutation: Mutation::None,
            protocol: Protocol::Snoop,
            clusters: 1,
        }
    }

    /// The acceptance shape on the directory machine.
    pub fn directory_3x2() -> Self {
        ModelConfig {
            protocol: Protocol::DirectoryCgct,
            ..ModelConfig::default_3x2()
        }
    }

    /// The acceptance shape on the hierarchical machine, split into two
    /// clusters ({0, 1} and {2}).
    pub fn hierarchical_3x2() -> Self {
        ModelConfig {
            protocol: Protocol::Hierarchical,
            clusters: 2,
            ..ModelConfig::default_3x2()
        }
    }

    /// Validates the shape.
    ///
    /// # Panics
    ///
    /// Panics if the node, line, or cluster count is out of the
    /// supported range, or if the shape overflows the 128-bit state
    /// encoding.
    pub fn validate(&self) {
        assert!(
            (2..=4).contains(&self.nodes),
            "model supports 2-4 nodes, got {}",
            self.nodes
        );
        assert!(
            self.lines.is_power_of_two() && (1..=8).contains(&self.lines),
            "model supports 1/2/4/8 lines per region, got {}",
            self.lines
        );
        match self.protocol {
            Protocol::Hierarchical => assert!(
                (1..=self.nodes).contains(&self.clusters),
                "hierarchical model needs 1..=nodes clusters, got {}",
                self.clusters
            ),
            _ => assert_eq!(
                self.clusters, 1,
                "clusters only apply to the hierarchical protocol"
            ),
        }
        let mut bits = self.nodes * (3 * self.lines + 3 + 4);
        if self.protocol == Protocol::DirectoryCgct {
            bits += self.lines * 7 + 5;
        }
        assert!(
            bits <= 128,
            "state encoding needs {bits} bits (> 128); shrink nodes or lines"
        );
    }

    /// The cluster a node belongs to (contiguous split, mirroring the
    /// board-based clustering of `cgct_interconnect::Topology`).
    pub fn cluster_of(&self, node: usize) -> usize {
        node * self.clusters / self.nodes
    }

    /// The mutations that must each produce a counterexample under this
    /// configuration's protocol (faults wired into paths a protocol
    /// never takes cannot be caught there).
    pub fn applicable_faults(&self) -> Vec<Mutation> {
        let mut faults = Mutation::ALL_FAULTS.to_vec();
        match self.protocol {
            Protocol::Snoop => {}
            Protocol::DirectoryCgct => faults.push(Mutation::StaleRegionDirCache),
            Protocol::Hierarchical => {
                if self.clusters > 1 {
                    faults.push(Mutation::SkipClusterInvalidation);
                }
            }
        }
        faults
    }

    /// The line/region geometry of the modeled configuration.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(64, 64 * self.lines as u64)
    }

    fn rca_config(&self) -> RcaConfig {
        RcaConfig {
            sets: 1,
            ways: 1,
            geometry: self.geometry(),
            self_invalidation: self.self_invalidation,
            favor_empty_replacement: true,
        }
    }
}

/// A deliberately broken protocol wiring, used to prove the checker can
/// fail (a checker that never finds anything proves nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Faithful wiring.
    #[default]
    None,
    /// Snoopers do not apply the line-state transition for invalidating
    /// requests: a stale S copy survives an RFO.
    KeepStaleSharers,
    /// Snoopers' region arrays never observe external requests: a region
    /// stays exclusive while another node fills lines of it.
    SkipExternalDowngrade,
    /// Snoop invalidations skip the `line_uncached` bookkeeping: the
    /// region line counts drift from the cache contents.
    LeakLineCount,
    /// The permission check treats externally-*clean* regions as
    /// exclusive, letting data reads go direct while sharers exist.
    OverclaimExclusive,
    /// The home's region-grain directory cache is installed once and
    /// never refreshed after directory updates: a stale mask can
    /// wrongly prove the region unshared and authorize a lookup bypass
    /// that skips a needed invalidation ([`Protocol::DirectoryCgct`]).
    StaleRegionDirCache,
    /// The inter-cluster region directory reports every remote cluster
    /// empty: line-grain snoops never leave the requester's cluster, so
    /// remote copies survive invalidating requests
    /// ([`Protocol::Hierarchical`]).
    SkipClusterInvalidation,
}

impl Mutation {
    /// The protocol-independent mutations that must each produce a
    /// counterexample under every protocol (see
    /// [`ModelConfig::applicable_faults`] for the full per-protocol
    /// list).
    pub const ALL_FAULTS: [Mutation; 4] = [
        Mutation::KeepStaleSharers,
        Mutation::SkipExternalDowngrade,
        Mutation::LeakLineCount,
        Mutation::OverclaimExclusive,
    ];

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Mutation> {
        Some(match name {
            "none" => Mutation::None,
            "keep-stale-sharers" => Mutation::KeepStaleSharers,
            "skip-external-downgrade" => Mutation::SkipExternalDowngrade,
            "leak-line-count" => Mutation::LeakLineCount,
            "overclaim-exclusive" => Mutation::OverclaimExclusive,
            "stale-region-dir-cache" => Mutation::StaleRegionDirCache,
            "skip-cluster-invalidation" => Mutation::SkipClusterInvalidation,
            _ => return None,
        })
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::KeepStaleSharers => "keep-stale-sharers",
            Mutation::SkipExternalDowngrade => "skip-external-downgrade",
            Mutation::LeakLineCount => "leak-line-count",
            Mutation::OverclaimExclusive => "overclaim-exclusive",
            Mutation::StaleRegionDirCache => "stale-region-dir-cache",
            Mutation::SkipClusterInvalidation => "skip-cluster-invalidation",
        }
    }
}

/// One node's abstract state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeState {
    /// MOESI state of each line of the region in this node's L2.
    pub lines: Vec<MoesiState>,
    /// The node's region entry state (`Invalid` = no entry).
    pub region: RegionState,
    /// The entry's cached-line count (0 when no entry).
    pub line_count: u32,
}

impl NodeState {
    /// Number of lines this node actually holds valid.
    pub fn cached_lines(&self) -> u32 {
        self.lines.iter().filter(|s| s.is_valid()).count() as u32
    }
}

/// One line's full-map entry at the home controller, in abstract form
/// (the working machine reconstructs a real
/// [`DirectoryController`] from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct LineDir {
    /// Cache recorded as holding the line in an ownership state.
    pub owner: Option<u8>,
    /// Sharer bit-vector (may over-approximate after silent clean
    /// evictions — the standard full-map conservatism).
    pub sharers: u8,
}

/// The home memory controller's state under
/// [`Protocol::DirectoryCgct`]: the per-line full-map entries plus the
/// region-grain directory cache's node-presence mask.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HomeState {
    /// Per-line directory entries, indexed like the nodes' line vectors.
    pub lines: Vec<LineDir>,
    /// The region directory cache's mask (`None` = not cached yet).
    pub cache_mask: Option<u8>,
}

/// One global state of the modeled machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalState {
    /// Per-node states, indexed by node id.
    pub nodes: Vec<NodeState>,
    /// The home controller's directory state
    /// ([`Protocol::DirectoryCgct`] only).
    pub home: Option<HomeState>,
}

impl GlobalState {
    /// The initial state: nothing cached, no region entries, an empty
    /// home directory.
    pub fn initial(cfg: &ModelConfig) -> GlobalState {
        GlobalState {
            nodes: (0..cfg.nodes)
                .map(|_| NodeState {
                    lines: vec![MoesiState::Invalid; cfg.lines],
                    region: RegionState::Invalid,
                    line_count: 0,
                })
                .collect(),
            home: (cfg.protocol == Protocol::DirectoryCgct).then(|| HomeState {
                lines: vec![LineDir::default(); cfg.lines],
                cache_mask: None,
            }),
        }
    }

    /// Packs the state into an exact dedup key (3 bits per line state,
    /// 3 bits region state, 4 bits line count per node; directory
    /// protocols append 7 bits per home line entry plus 5 for the
    /// region cache mask — protocols without a home keep the original
    /// layout bit-for-bit).
    pub fn encode(&self) -> u128 {
        let mut key: u128 = 0;
        for node in &self.nodes {
            for &line in &node.lines {
                key = (key << 3) | moesi_index(line) as u128;
            }
            key = (key << 3) | region_index(node.region) as u128;
            key = (key << 4) | node.line_count as u128;
        }
        if let Some(home) = &self.home {
            for entry in &home.lines {
                key = (key << 3) | entry.owner.map_or(0, |o| o as u128 + 1);
                key = (key << 4) | entry.sharers as u128;
            }
            key = (key << 5)
                | home
                    .cache_mask
                    .map_or(0, |m| 0b1_0000 | (m as u128 & 0b1111));
        }
        key
    }
}

impl fmt::Display for GlobalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "n{i}:[")?;
            for &line in &node.lines {
                write!(f, "{}", line.letter())?;
            }
            write!(f, "] {}({})", node.region.mnemonic(), node.line_count)?;
        }
        if let Some(home) = &self.home {
            write!(f, "  dir:[")?;
            for (l, entry) in home.lines.iter().enumerate() {
                if l > 0 {
                    write!(f, " ")?;
                }
                match entry.owner {
                    Some(o) => write!(f, "o{o}")?,
                    None => write!(f, "o-")?,
                }
                write!(f, "s{:x}", entry.sharers)?;
            }
            match home.cache_mask {
                Some(m) => write!(f, "] cache:{m:x}")?,
                None => write!(f, "] cache:-")?,
            }
        }
        Ok(())
    }
}

fn moesi_index(s: MoesiState) -> u8 {
    match s {
        MoesiState::Modified => 0,
        MoesiState::Owned => 1,
        MoesiState::Exclusive => 2,
        MoesiState::Shared => 3,
        MoesiState::Invalid => 4,
    }
}

fn region_index(s: RegionState) -> u8 {
    RegionState::ALL
        .iter()
        .position(|&r| r == s)
        .expect("all region states enumerated") as u8
}

/// One atomic step of the modeled machine — the events a real node can
/// initiate at its coherence point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Data load that misses (issues `Read`; a silent hit is not a step).
    Load {
        /// Requesting node.
        node: usize,
        /// Line index within the region.
        line: usize,
    },
    /// Instruction fetch that misses (issues `ReadShared`).
    Ifetch {
        /// Requesting node.
        node: usize,
        /// Line index within the region.
        line: usize,
    },
    /// Store: silent E→M, `Upgrade` from S/O, or `ReadExclusive` miss.
    Store {
        /// Requesting node.
        node: usize,
        /// Line index within the region.
        line: usize,
    },
    /// `dcbz`: allocate the line modifiable without reading memory.
    Dcbz {
        /// Requesting node.
        node: usize,
        /// Line index within the region.
        line: usize,
    },
    /// L2 replacement of a cached line (write-back if dirty).
    EvictLine {
        /// Evicting node.
        node: usize,
        /// Line index within the region.
        line: usize,
    },
    /// RCA replacement of the region entry (flushes its cached lines).
    EvictRegion {
        /// Evicting node.
        node: usize,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Load { node, line } => write!(f, "n{node} load L{line}"),
            Event::Ifetch { node, line } => write!(f, "n{node} ifetch L{line}"),
            Event::Store { node, line } => write!(f, "n{node} store L{line}"),
            Event::Dcbz { node, line } => write!(f, "n{node} dcbz L{line}"),
            Event::EvictLine { node, line } => write!(f, "n{node} evict L{line}"),
            Event::EvictRegion { node } => write!(f, "n{node} evict region"),
        }
    }
}

/// Enumerates the events enabled in `state`, in a fixed deterministic
/// order. Events that would be architectural no-ops (e.g. a load hit)
/// are not steps: they cannot change the global state.
pub fn enabled_events(cfg: &ModelConfig, state: &GlobalState) -> Vec<Event> {
    let mut events = Vec::new();
    for node in 0..cfg.nodes {
        let n = &state.nodes[node];
        for line in 0..cfg.lines {
            let s = n.lines[line];
            if s == MoesiState::Invalid {
                events.push(Event::Load { node, line });
                events.push(Event::Ifetch { node, line });
                events.push(Event::Store { node, line });
            }
            // Stores to E (silent upgrade), S and O (upgrade request).
            if matches!(
                s,
                MoesiState::Exclusive | MoesiState::Shared | MoesiState::Owned
            ) {
                events.push(Event::Store { node, line });
            }
            // dcbz is a step from every state but M (M is a no-op write).
            if s != MoesiState::Modified {
                events.push(Event::Dcbz { node, line });
            }
            if s.is_valid() {
                events.push(Event::EvictLine { node, line });
            }
        }
        if n.region.is_valid() {
            events.push(Event::EvictRegion { node });
        }
    }
    events
}

/// Working form of one step: concrete line states plus a *real*
/// [`RegionCoherenceArray`] per node (and, on the directory machine, a
/// real [`DirectoryController`]), rebuilt from the abstract state so
/// the step runs the production transition code.
struct Working {
    lines: Vec<Vec<MoesiState>>,
    rcas: Vec<RegionCoherenceArray>,
    home: Option<HomeDir>,
}

/// The home controller's working state: the production directory plus
/// the region-grain directory cache's mask for [`REGION`].
struct HomeDir {
    dir: DirectoryController,
    cache_mask: Option<u64>,
}

/// Maps a processor request onto the directory request vocabulary, the
/// same classification `MemorySystem::directory_request` performs.
fn dir_request_of(req: ReqKind) -> DirRequest {
    match req {
        ReqKind::Read | ReqKind::ReadShared => DirRequest::Read,
        ReqKind::ReadExclusive | ReqKind::Dcbz => DirRequest::ReadExclusive,
        ReqKind::Upgrade => DirRequest::Upgrade,
        ReqKind::Writeback => DirRequest::Writeback,
    }
}

impl Working {
    fn from_state(cfg: &ModelConfig, state: &GlobalState) -> Working {
        let rcas = state
            .nodes
            .iter()
            .map(|n| {
                let mut rca = RegionCoherenceArray::new(cfg.rca_config());
                if let (Some(local), Some(external)) = (n.region.local(), n.region.external()) {
                    // Reconstruct the entry through the real fill path:
                    // the fill kind fixes the local half, the response
                    // the external half.
                    let fill = match local {
                        LocalPart::Dirty => FillKind::Exclusive,
                        LocalPart::Clean => FillKind::Shared,
                    };
                    let resp = match external {
                        ExternalPart::Invalid => RegionSnoopResponse::NONE,
                        ExternalPart::Clean => RegionSnoopResponse {
                            clean: true,
                            dirty: false,
                        },
                        ExternalPart::Dirty => RegionSnoopResponse {
                            clean: false,
                            dirty: true,
                        },
                    };
                    rca.local_fill(REGION, fill, Some(resp), 0);
                    debug_assert_eq!(rca.state(REGION), n.region, "entry reconstruction");
                    for _ in 0..n.line_count {
                        rca.line_cached(REGION);
                    }
                }
                rca
            })
            .collect();
        let home = state.home.as_ref().map(|h| {
            let mut dir = DirectoryController::new();
            for (l, entry) in h.lines.iter().enumerate() {
                dir.install_entry(
                    LineAddr(l as u64),
                    DirEntry {
                        owner: entry.owner,
                        sharers: entry.sharers as u64,
                    },
                );
            }
            HomeDir {
                dir,
                cache_mask: h.cache_mask.map(u64::from),
            }
        });
        Working {
            lines: state.nodes.iter().map(|n| n.lines.clone()).collect(),
            rcas,
            home,
        }
    }

    fn into_state(self) -> GlobalState {
        let lines_per_node = self.lines[0].len();
        let home = self.home.map(|h| HomeState {
            lines: (0..lines_per_node)
                .map(|l| {
                    let e = h.dir.entry(LineAddr(l as u64));
                    LineDir {
                        owner: e.owner,
                        sharers: e.sharers as u8,
                    }
                })
                .collect(),
            cache_mask: h.cache_mask.map(|m| m as u8),
        });
        GlobalState {
            nodes: self
                .lines
                .into_iter()
                .zip(self.rcas)
                .map(|(lines, rca)| {
                    let entry = rca.entry(REGION);
                    NodeState {
                        lines,
                        region: entry.map_or(RegionState::Invalid, |e| e.state),
                        line_count: entry.map_or(0, |e| e.line_count),
                    }
                })
                .collect(),
            home,
        }
    }

    /// Runs the home directory's real transition for `req` and
    /// refreshes the region-grain directory cache. The faithful system
    /// recomputes the mask after *every* directory update; the
    /// stale-region-dir-cache mutation installs it once and never
    /// refreshes.
    fn home_handle(
        &mut self,
        cfg: &ModelConfig,
        requester: usize,
        line: usize,
        req: ReqKind,
    ) -> (DirAction, bool) {
        let lines_per_node = self.lines[0].len();
        let home = self.home.as_mut().expect("directory protocol");
        let out = home
            .dir
            .handle(LineAddr(line as u64), requester as u8, dir_request_of(req));
        if cfg.mutation != Mutation::StaleRegionDirCache || home.cache_mask.is_none() {
            home.cache_mask = Some(
                home.dir
                    .region_mask((0..lines_per_node as u64).map(LineAddr)),
            );
        }
        out
    }

    /// Which nodes see a line-grain snoop from `requester`: everyone on
    /// the flat bus; on the hierarchical machine only the requester's
    /// cluster plus clusters caching at least one line of the region.
    /// The cluster counts are derived exactly from the line states —
    /// the same truth the live system maintains incrementally and its
    /// sanitizer checks.
    fn snoop_visibility(&self, cfg: &ModelConfig, requester: usize) -> Vec<bool> {
        if cfg.protocol != Protocol::Hierarchical || cfg.clusters <= 1 {
            return vec![true; self.lines.len()];
        }
        let my_cluster = cfg.cluster_of(requester);
        (0..self.lines.len())
            .map(|other| {
                let c = cfg.cluster_of(other);
                if c == my_cluster {
                    return true;
                }
                if cfg.mutation == Mutation::SkipClusterInvalidation {
                    // FAULT: the inter-cluster directory reports every
                    // remote cluster empty.
                    return false;
                }
                (0..self.lines.len())
                    .any(|n| cfg.cluster_of(n) == c && self.lines[n].iter().any(|s| s.is_valid()))
            })
            .collect()
    }

    /// Region snoop responses from every other node (step 3 of the bus
    /// sequence; in the directory and hierarchical machines the same
    /// notifications are relayed through the home's region directory
    /// and reach every node).
    fn region_external_all(
        &mut self,
        cfg: &ModelConfig,
        requester: usize,
        req: ReqKind,
        fill_exclusive: bool,
    ) -> RegionSnoopResponse {
        let mut region_resp = RegionSnoopResponse::NONE;
        for other in 0..self.lines.len() {
            if other == requester {
                continue;
            }
            if cfg.mutation == Mutation::SkipExternalDowngrade {
                continue; // FAULT: regions never see external traffic
            }
            region_resp.merge(self.rcas[other].external_request(REGION, req, fill_exclusive));
        }
        region_resp
    }

    /// Issues a coherence-point request, mirroring the permission arms
    /// of `MemorySystem::coherent_request` /
    /// `MemorySystem::directory_cgct_request` /
    /// `MemorySystem::hierarchical_request` (atomic-interconnect
    /// model).
    fn request(&mut self, cfg: &ModelConfig, requester: usize, line: usize, req: ReqKind) {
        if cfg.protocol == Protocol::DirectoryCgct && req == ReqKind::Writeback {
            // Write-backs travel point-to-point to the home in every
            // directory machine, before any permission check; the home
            // drops the write-back issuer's ownership.
            self.home_handle(cfg, requester, line, req);
            return;
        }
        let mut permission = self.rcas[requester].permission(REGION, req);
        if cfg.mutation == Mutation::OverclaimExclusive
            && permission == RegionPermission::Broadcast
            && self.rcas[requester].state(REGION).is_externally_clean()
        {
            // FAULT: pretend Table 1 lets every request in a CC/DC
            // region skip the broadcast (only shared reads may).
            permission = match req {
                ReqKind::Upgrade | ReqKind::Dcbz => RegionPermission::CompleteLocally,
                _ => RegionPermission::DirectToMemory,
            };
        }
        match permission {
            RegionPermission::CompleteLocally => {
                if cfg.protocol == Protocol::DirectoryCgct {
                    // The per-line directory still learns of the
                    // request (the off-critical-path update message of
                    // `directory_cgct_request`); the region claim
                    // guarantees the returned action names no live
                    // copy, so no coherence message is modeled — the
                    // invariants prove that guarantee at every state.
                    self.home_handle(cfg, requester, line, req);
                }
                self.rcas[requester].local_fill(REGION, FillKind::Exclusive, None, 0);
                if req == ReqKind::Dcbz {
                    self.fill(requester, line, MoesiState::Modified);
                }
                // Upgrades touch the line in the caller (as the store
                // path does after `coherent_request` returns).
            }
            RegionPermission::DirectToMemory => {
                if req == ReqKind::Writeback {
                    return; // fire-and-forget to the recorded controller
                }
                if cfg.protocol == Protocol::DirectoryCgct {
                    // The home still updates its entry, but the lookup
                    // (and any directory-driven message) is bypassed;
                    // the grant mirrors `directory_request`'s
                    // exclusive flag — except that a shared read riding
                    // an externally-clean claim must refuse an
                    // exclusive grant (other nodes hold CC entries the
                    // unannounced E copy would falsify; the checker
                    // found exactly this trace).
                    let (_, exclusive) = self.home_handle(cfg, requester, line, req);
                    let fill_state = match req {
                        ReqKind::ReadShared => MoesiState::Shared,
                        ReqKind::Read => {
                            if exclusive {
                                MoesiState::Exclusive
                            } else {
                                MoesiState::Shared
                            }
                        }
                        _ => MoesiState::Modified,
                    };
                    self.rcas[requester].local_fill(
                        REGION,
                        FillKind::from_moesi(fill_state),
                        None,
                        0,
                    );
                    self.fill(requester, line, fill_state);
                    return;
                }
                let fill_state = match req {
                    ReqKind::Read => MoesiState::Exclusive,
                    ReqKind::ReadShared => MoesiState::Shared,
                    _ => MoesiState::Modified,
                };
                let fill = FillKind::from_moesi(fill_state);
                self.rcas[requester].local_fill(REGION, fill, None, 0);
                self.fill(requester, line, fill_state);
            }
            RegionPermission::Broadcast if cfg.protocol == Protocol::DirectoryCgct => {
                self.directory_broadcast(cfg, requester, line, req);
            }
            RegionPermission::Broadcast => {
                // 1. Snoop every other visible node's line state (all of
                //    them on the flat bus; cluster-filtered on the
                //    hierarchical machine).
                let visible = self.snoop_visibility(cfg, requester);
                let mut line_resp = LineSnoopResponse::default();
                for (other, vis) in visible.iter().enumerate() {
                    if other == requester || !vis {
                        continue;
                    }
                    let state = self.lines[other][line];
                    let out = snoop_line(state, req);
                    line_resp.merge(out.response);
                    if out.next != state {
                        if cfg.mutation == Mutation::KeepStaleSharers && req.invalidates_others() {
                            // FAULT: the snooper ignores the invalidation.
                            continue;
                        }
                        self.lines[other][line] = out.next;
                        if out.next == MoesiState::Invalid
                            && cfg.mutation != Mutation::LeakLineCount
                        {
                            self.rcas[other].line_uncached(REGION);
                        }
                    }
                }
                // 2. Requester fill state and its region consequence.
                let fill_state = requester_next_state(req, line_resp);
                let fill_exclusive = fill_state.is_some_and(|s| s.can_silently_modify());
                // 3. Region snoop responses (after the line snoop, so a
                //    now-empty region can self-invalidate). These are
                //    machine-wide even on the hierarchical machine.
                let region_resp = self.region_external_all(cfg, requester, req, fill_exclusive);
                // 4. Requester's region entry (write-backs leave none).
                if req != ReqKind::Writeback {
                    let fill = fill_state.map_or(FillKind::Shared, FillKind::from_moesi);
                    self.rcas[requester].local_fill(REGION, fill, Some(region_resp), 0);
                }
                // 5. Fill the line.
                if let Some(state) = fill_state {
                    self.fill(requester, line, state);
                }
            }
        }
    }

    /// The directory machine's no-claim path, mirroring
    /// `directory_request` with `RegionUpkeep::FullExternal`: the home
    /// consults (or, on a region-cache hit proving the region unshared,
    /// skips) the per-line entry, drives the named caches, and relays
    /// the region-grain outcome to every node.
    fn directory_broadcast(
        &mut self,
        cfg: &ModelConfig,
        requester: usize,
        line: usize,
        req: ReqKind,
    ) {
        // The lookup-bypass decision reads the region cache *before*
        // this request's own update, exactly as the home does.
        let skip = self
            .home
            .as_ref()
            .expect("directory protocol")
            .cache_mask
            .is_some_and(|m| m & !(1u64 << requester) == 0);
        let (action, exclusive) = self.home_handle(cfg, requester, line, req);
        let (fwd_owner, invalidate) = match &action {
            DirAction::ForwardToOwner { owner, invalidate } => {
                (Some(*owner as usize), invalidate.clone())
            }
            DirAction::FromMemory { invalidate } | DirAction::InvalidateOnly { invalidate } => {
                (None, invalidate.clone())
            }
        };
        if !skip {
            // Apply the directory's invalidations at the named caches —
            // the directory machine's replacement for the bus snoop.
            // Stale targets (silent clean evictions) hold nothing and
            // are no-ops, as in the live system.
            for target in invalidate {
                let t = target as usize;
                if t == requester || t >= self.lines.len() {
                    continue;
                }
                if !self.lines[t][line].is_valid() {
                    continue;
                }
                if cfg.mutation == Mutation::KeepStaleSharers && req.invalidates_others() {
                    continue; // FAULT: the target ignores the invalidation
                }
                self.lines[t][line] = MoesiState::Invalid;
                if cfg.mutation != Mutation::LeakLineCount {
                    self.rcas[t].line_uncached(REGION);
                }
            }
        }
        // The requester's grant comes from the directory, not from
        // merged snoop responses.
        let fill_state = match req {
            ReqKind::Read | ReqKind::ReadShared => {
                if exclusive {
                    MoesiState::Exclusive
                } else {
                    MoesiState::Shared
                }
            }
            _ => MoesiState::Modified,
        };
        // Region upkeep runs at the home, *before* any three-hop
        // forward reaches the owner (`directory_request` orders it the
        // same way): an owner about to lose its only line still answers
        // the region snoop as a holder, so its entry survives — stale
        // but conservative — rather than self-invalidating.
        let fill_exclusive = fill_state.can_silently_modify();
        let region_resp = self.region_external_all(cfg, requester, req, fill_exclusive);
        self.rcas[requester].local_fill(
            REGION,
            FillKind::from_moesi(fill_state),
            Some(region_resp),
            0,
        );
        if !skip {
            if let Some(o) = fwd_owner {
                if o != requester && o < self.lines.len() {
                    let state = self.lines[o][line];
                    if state.is_valid() {
                        // Live owner: the forward applies the same
                        // transition a bus snoop would.
                        let out = snoop_line(state, req);
                        if out.next != state
                            && !(cfg.mutation == Mutation::KeepStaleSharers
                                && req.invalidates_others())
                        {
                            self.lines[o][line] = out.next;
                            if out.next == MoesiState::Invalid
                                && cfg.mutation != Mutation::LeakLineCount
                            {
                                self.rcas[o].line_uncached(REGION);
                            }
                        }
                    }
                    // Stale owner: the home retries from memory —
                    // no state change anywhere.
                }
            }
        }
        self.fill(requester, line, fill_state);
    }

    /// Fills `line` into `node`'s cache (inclusion bookkeeping on a new
    /// allocation only, as `MemorySystem::fill_l2` does).
    fn fill(&mut self, node: usize, line: usize, state: MoesiState) {
        let newly_cached = self.lines[node][line] == MoesiState::Invalid;
        self.lines[node][line] = state;
        if newly_cached {
            self.rcas[node].line_cached(REGION);
        }
    }
}

/// Applies `event` to `state`, returning the successor. The caller must
/// only pass events from [`enabled_events`].
pub fn apply(cfg: &ModelConfig, state: &GlobalState, event: Event) -> GlobalState {
    let mut w = Working::from_state(cfg, state);
    match event {
        Event::Load { node, line } => {
            debug_assert_eq!(w.lines[node][line], MoesiState::Invalid);
            w.request(cfg, node, line, ReqKind::Read);
        }
        Event::Ifetch { node, line } => {
            debug_assert_eq!(w.lines[node][line], MoesiState::Invalid);
            w.request(cfg, node, line, ReqKind::ReadShared);
        }
        Event::Store { node, line } => match w.lines[node][line] {
            MoesiState::Modified => unreachable!("store hit on M is not a step"),
            MoesiState::Exclusive => {
                // Silent E→M: the region's local half is already Dirty.
                w.lines[node][line] = MoesiState::Modified;
            }
            MoesiState::Shared | MoesiState::Owned => {
                w.request(cfg, node, line, ReqKind::Upgrade);
                w.lines[node][line] = MoesiState::Modified;
            }
            MoesiState::Invalid => {
                w.request(cfg, node, line, ReqKind::ReadExclusive);
            }
        },
        Event::Dcbz { node, line } => match w.lines[node][line] {
            MoesiState::Modified => unreachable!("dcbz on M is not a step"),
            MoesiState::Exclusive => {
                w.lines[node][line] = MoesiState::Modified;
            }
            _ => {
                w.request(cfg, node, line, ReqKind::Dcbz);
            }
        },
        Event::EvictLine { node, line } => {
            let state = w.lines[node][line];
            debug_assert!(state.is_valid());
            // Mirror `fill_l2`'s displacement path: remove first, then
            // write dirty data back through the coherence point.
            w.lines[node][line] = MoesiState::Invalid;
            w.rcas[node].line_uncached(REGION);
            if state.is_dirty() {
                w.request(cfg, node, line, ReqKind::Writeback);
            }
        }
        Event::EvictRegion { node } => {
            // Mirror an RCA displacement: the entry is gone, and
            // `flush_region` pushes every cached line out (dirty lines go
            // straight to the recorded controller — no snooping).
            w.rcas[node].invalidate(REGION);
            for line in 0..cfg.lines {
                w.lines[node][line] = MoesiState::Invalid;
            }
        }
    }
    w.into_state()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_empty() {
        let cfg = ModelConfig::default_3x2();
        let s = GlobalState::initial(&cfg);
        assert_eq!(s.nodes.len(), 3);
        assert!(s.nodes.iter().all(|n| n.cached_lines() == 0));
        assert_eq!(s.encode(), {
            // All lines Invalid (index 4), regions Invalid (index 0),
            // counts 0 — a fixed, reproducible key.
            let mut k: u128 = 0;
            for _ in 0..3 {
                k = (k << 3) | 4; // line 0: Invalid
                k = (k << 3) | 4; // line 1: Invalid
                k <<= 3; // region: Invalid (index 0)
                k <<= 4; // line count: 0
            }
            k
        });
    }

    #[test]
    fn first_load_broadcasts_and_takes_region_exclusive() {
        let cfg = ModelConfig::default_3x2();
        let s0 = GlobalState::initial(&cfg);
        let s1 = apply(&cfg, &s0, Event::Load { node: 0, line: 0 });
        assert_eq!(s1.nodes[0].lines[0], MoesiState::Exclusive);
        assert_eq!(s1.nodes[0].region, RegionState::DirtyInvalid);
        assert_eq!(s1.nodes[0].line_count, 1);
        assert_eq!(s1.nodes[1].region, RegionState::Invalid);
    }

    #[test]
    fn second_node_read_downgrades_both_grains() {
        let cfg = ModelConfig::default_3x2();
        let s0 = GlobalState::initial(&cfg);
        let s1 = apply(&cfg, &s0, Event::Store { node: 0, line: 0 });
        assert_eq!(s1.nodes[0].lines[0], MoesiState::Modified);
        let s2 = apply(&cfg, &s1, Event::Load { node: 1, line: 0 });
        // Owner keeps the dirty line in O, requester fills S. The owner's
        // external half becomes Clean (the requester holds only S), the
        // requester's external half Dirty (the owner answered Region Dirty).
        assert_eq!(s2.nodes[0].lines[0], MoesiState::Owned);
        assert_eq!(s2.nodes[1].lines[0], MoesiState::Shared);
        assert_eq!(s2.nodes[0].region, RegionState::DirtyClean);
        assert_eq!(s2.nodes[1].region, RegionState::CleanDirty);
    }

    #[test]
    fn self_invalidation_fires_on_empty_region() {
        let cfg = ModelConfig::default_3x2();
        let s0 = GlobalState::initial(&cfg);
        let s1 = apply(&cfg, &s0, Event::Load { node: 0, line: 0 });
        let s2 = apply(&cfg, &s1, Event::EvictLine { node: 0, line: 0 });
        assert_eq!(s2.nodes[0].line_count, 0);
        assert!(s2.nodes[0].region.is_valid(), "entry outlives its lines");
        // Another node's RFO hits the empty region: self-invalidation
        // lets the requester take it exclusively.
        let s3 = apply(&cfg, &s2, Event::Store { node: 1, line: 0 });
        assert_eq!(s3.nodes[0].region, RegionState::Invalid);
        assert_eq!(s3.nodes[1].region, RegionState::DirtyInvalid);
    }

    #[test]
    fn enabled_events_are_deterministic_and_plausible() {
        let cfg = ModelConfig::default_3x2();
        let s0 = GlobalState::initial(&cfg);
        let a = enabled_events(&cfg, &s0);
        let b = enabled_events(&cfg, &s0);
        assert_eq!(a, b);
        // From empty: per node and line, Load/Ifetch/Store/Dcbz.
        assert_eq!(a.len(), 3 * 2 * 4);
        assert!(a.contains(&Event::Dcbz { node: 2, line: 1 }));
    }

    #[test]
    fn encode_roundtrips_distinct_states() {
        let cfg = ModelConfig::default_3x2();
        let s0 = GlobalState::initial(&cfg);
        let s1 = apply(&cfg, &s0, Event::Load { node: 0, line: 0 });
        assert_ne!(s0.encode(), s1.encode());
        assert_eq!(s1.encode(), s1.clone().encode());
    }

    #[test]
    fn display_is_compact() {
        let cfg = ModelConfig::default_3x2();
        let s1 = apply(
            &cfg,
            &GlobalState::initial(&cfg),
            Event::Load { node: 0, line: 0 },
        );
        let text = format!("{s1}");
        assert!(text.starts_with("n0:[EI] DI(1)"), "got {text}");
    }
}
