//! Exhaustive model checker for the MOESI × RCA coherence protocol.
//!
//! Explores every reachable global state of a small configuration with
//! the real transition functions and checks the safety invariants at
//! each one. Exits 0 on a clean fixpoint, 1 with a counterexample trace
//! on a violation (or on bad arguments).
//!
//! ```text
//! cgct-verify [--nodes N] [--lines L] [--protocol P] [--clusters C]
//!             [--mutate FAULT] [--no-self-invalidation]
//! ```

use cgct_verify::checker::explore;
use cgct_verify::model::{GlobalState, ModelConfig, Mutation, Protocol};
use std::process::ExitCode;

const USAGE: &str = "usage: cgct-verify [options]

Exhaustively explores the reachable states of a small CGCT machine and
checks the coherence invariants at every state.

options:
  --nodes N                processor nodes, 2-4 (default 3)
  --lines L                lines per region, 1/2/4/8 (default 2)
  --protocol P             coherence machine: snoop (flat bus, default),
                           dir-cgct (full-map home directory + RCAs),
                           hierarchical (cluster buses + region filter)
  --clusters C             clusters for --protocol hierarchical (default 1)
  --mutate FAULT           inject a protocol fault; FAULT is one of
                           keep-stale-sharers, skip-external-downgrade,
                           leak-line-count, overclaim-exclusive,
                           stale-region-dir-cache (dir-cgct),
                           skip-cluster-invalidation (hierarchical), none
  --no-self-invalidation   disable region self-invalidation (ablation)
  -h, --help               print this help
";

fn parse(mut args: std::env::Args) -> Result<ModelConfig, String> {
    let mut cfg = ModelConfig::default_3x2();
    args.next(); // program name
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                cfg.nodes = v.parse().map_err(|_| format!("bad --nodes {v:?}"))?;
            }
            "--lines" => {
                let v = args.next().ok_or("--lines needs a value")?;
                cfg.lines = v.parse().map_err(|_| format!("bad --lines {v:?}"))?;
            }
            "--protocol" => {
                let v = args.next().ok_or("--protocol needs a value")?;
                cfg.protocol =
                    Protocol::from_name(&v).ok_or_else(|| format!("unknown protocol {v:?}"))?;
            }
            "--clusters" => {
                let v = args.next().ok_or("--clusters needs a value")?;
                cfg.clusters = v.parse().map_err(|_| format!("bad --clusters {v:?}"))?;
            }
            "--mutate" => {
                let v = args.next().ok_or("--mutate needs a value")?;
                cfg.mutation =
                    Mutation::from_name(&v).ok_or_else(|| format!("unknown mutation {v:?}"))?;
            }
            "--no-self-invalidation" => cfg.self_invalidation = false,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !(2..=4).contains(&cfg.nodes) {
        return Err(format!("--nodes must be 2-4, got {}", cfg.nodes));
    }
    if !(cfg.lines.is_power_of_two() && (1..=8).contains(&cfg.lines)) {
        return Err(format!("--lines must be 1/2/4/8, got {}", cfg.lines));
    }
    if cfg.protocol == Protocol::Hierarchical {
        // A cluster per node degenerates to pairwise point-to-point; more
        // clusters than nodes is meaningless.
        if !(1..=cfg.nodes).contains(&cfg.clusters) {
            return Err(format!(
                "--clusters must be 1-{} for {} nodes, got {}",
                cfg.nodes, cfg.nodes, cfg.clusters
            ));
        }
    } else if cfg.clusters != 1 {
        return Err(format!(
            "--clusters {} requires --protocol hierarchical",
            cfg.clusters
        ));
    }
    match cfg.mutation {
        Mutation::StaleRegionDirCache if cfg.protocol != Protocol::DirectoryCgct => {
            return Err("stale-region-dir-cache requires --protocol dir-cgct".into());
        }
        Mutation::SkipClusterInvalidation
            if cfg.protocol != Protocol::Hierarchical || cfg.clusters < 2 =>
        {
            return Err(
                "skip-cluster-invalidation requires --protocol hierarchical --clusters >= 2".into(),
            );
        }
        _ => {}
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse(std::env::args()) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let clusters = if cfg.protocol == Protocol::Hierarchical {
        format!(" x {} cluster(s)", cfg.clusters)
    } else {
        String::new()
    };
    println!(
        "cgct-verify: {} {} nodes{clusters} x 1 region x {} line(s), \
         self-invalidation {}, mutation {}",
        cfg.protocol.name(),
        cfg.nodes,
        cfg.lines,
        if cfg.self_invalidation { "on" } else { "off" },
        cfg.mutation.name(),
    );
    let result = explore(&cfg);
    println!(
        "explored {} states, {} transitions",
        result.states, result.transitions
    );
    match result.violation {
        None => {
            println!("all invariants hold at every reachable state");
            ExitCode::SUCCESS
        }
        Some(v) => {
            eprint!("{}", v.render(&GlobalState::initial(&cfg)));
            ExitCode::FAILURE
        }
    }
}
