//! Exhaustive model checker for the MOESI × RCA coherence protocol.
//!
//! Explores every reachable global state of a small configuration with
//! the real transition functions and checks the safety invariants at
//! each one. Exits 0 on a clean fixpoint, 1 with a counterexample trace
//! on a violation (or on bad arguments).
//!
//! ```text
//! cgct-verify [--nodes N] [--lines L] [--mutate FAULT] [--no-self-invalidation]
//! ```

use cgct_verify::checker::explore;
use cgct_verify::model::{GlobalState, ModelConfig, Mutation};
use std::process::ExitCode;

const USAGE: &str = "usage: cgct-verify [options]

Exhaustively explores the reachable states of a small CGCT machine and
checks the coherence invariants at every state.

options:
  --nodes N                processor nodes, 2-4 (default 3)
  --lines L                lines per region, 1/2/4/8 (default 2)
  --mutate FAULT           inject a protocol fault; FAULT is one of
                           keep-stale-sharers, skip-external-downgrade,
                           leak-line-count, overclaim-exclusive, none
  --no-self-invalidation   disable region self-invalidation (ablation)
  -h, --help               print this help
";

fn parse(mut args: std::env::Args) -> Result<ModelConfig, String> {
    let mut cfg = ModelConfig::default_3x2();
    args.next(); // program name
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                let v = args.next().ok_or("--nodes needs a value")?;
                cfg.nodes = v.parse().map_err(|_| format!("bad --nodes {v:?}"))?;
            }
            "--lines" => {
                let v = args.next().ok_or("--lines needs a value")?;
                cfg.lines = v.parse().map_err(|_| format!("bad --lines {v:?}"))?;
            }
            "--mutate" => {
                let v = args.next().ok_or("--mutate needs a value")?;
                cfg.mutation =
                    Mutation::from_name(&v).ok_or_else(|| format!("unknown mutation {v:?}"))?;
            }
            "--no-self-invalidation" => cfg.self_invalidation = false,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !(2..=4).contains(&cfg.nodes) {
        return Err(format!("--nodes must be 2-4, got {}", cfg.nodes));
    }
    if !(cfg.lines.is_power_of_two() && (1..=8).contains(&cfg.lines)) {
        return Err(format!("--lines must be 1/2/4/8, got {}", cfg.lines));
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse(std::env::args()) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "cgct-verify: {} nodes x 1 region x {} line(s), self-invalidation {}, mutation {}",
        cfg.nodes,
        cfg.lines,
        if cfg.self_invalidation { "on" } else { "off" },
        cfg.mutation.name(),
    );
    let result = explore(&cfg);
    println!(
        "explored {} states, {} transitions",
        result.states, result.transitions
    );
    match result.violation {
        None => {
            println!("all invariants hold at every reachable state");
            ExitCode::SUCCESS
        }
        Some(v) => {
            eprint!("{}", v.render(&GlobalState::initial(&cfg)));
            ExitCode::FAILURE
        }
    }
}
