//! Exhaustive model checking for the MOESI × RCA coherence protocol.
//!
//! In the spirit of the Murphi-style verification the original
//! ASIM/PHARMsim infrastructure relied on, this crate enumerates *every*
//! reachable global state of a small configuration (2–4 nodes sharing
//! one region of 1–8 lines) and checks a set of safety invariants at
//! each one. Crucially, the transitions are computed by the **real**
//! protocol code — [`cgct_cache::snoop_line`] /
//! [`cgct_cache::requester_next_state`] at the line grain and a live
//! [`cgct::RegionCoherenceArray`] at the region grain — sequenced the
//! way `cgct_system::MemorySystem` sequences them. The checker therefore
//! verifies the shipped implementation, not a parallel model of it.
//!
//! The three layers:
//!
//! * [`model`] — the abstract machine, its events, and the bridge that
//!   drives the production transition functions (plus deliberate
//!   [`model::Mutation`]s for checker self-tests);
//! * [`invariants`] — the safety properties (single-writer,
//!   region-state conservatism, RCA/L2 inclusion, snoop-response
//!   consistency, permission-oracle soundness);
//! * [`checker`] — breadth-first exploration with exact-state dedup and
//!   shortest-path counterexample traces.
//!
//! The `cgct-verify` binary wraps [`checker::explore`] for CI; the
//! runtime sanitizer in `cgct-system` re-checks the same invariants on
//! live simulations (`CGCT_SANITIZE=1`).
//!
//! # Examples
//!
//! ```
//! use cgct_verify::{checker, model::ModelConfig};
//!
//! let mut cfg = ModelConfig::default_3x2();
//! cfg.lines = 1; // keep the doctest fast
//! let result = checker::explore(&cfg);
//! assert!(result.clean());
//! assert!(result.states > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checker;
pub mod invariants;
pub mod model;

pub use checker::{explore, ExploreResult, Violation};
pub use model::{GlobalState, ModelConfig, Mutation, Protocol};
