//! Breadth-first exhaustive exploration of the model's state space.
//!
//! Starting from the empty machine, the checker applies every enabled
//! event to every newly discovered state, deduplicating on the exact
//! packed encoding ([`GlobalState::encode`]), and checks every invariant
//! the first time a state is seen. Because invariants are checked
//! *before* a state is expanded, the transition code never runs on a
//! corrupted state (whose RCA bookkeeping asserts could otherwise mask
//! the original violation with a panic).
//!
//! On a violation the breadth-first parent links reconstruct a
//! shortest-path counterexample: the event trace from the initial state
//! to the violating one, with every intermediate state printed.

use crate::invariants;
use crate::model::{apply, enabled_events, Event, GlobalState, ModelConfig};
use cgct_sim::hash::{StableHashMap, StableHashSet};
use std::collections::VecDeque;

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The event taken.
    pub event: Event,
    /// The state it produced.
    pub state: GlobalState,
}

/// A reachable invariant violation with its shortest event trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant's error message.
    pub message: String,
    /// Events from the initial state to the violating state, in order;
    /// the last step's state is the violating one.
    pub trace: Vec<TraceStep>,
}

impl Violation {
    /// Renders the counterexample as a numbered event/state listing.
    pub fn render(&self, initial: &GlobalState) -> String {
        let mut out = String::new();
        out.push_str(&format!("violation: {}\n", self.message));
        out.push_str(&format!("trace ({} steps):\n", self.trace.len()));
        out.push_str(&format!("    start  {initial}\n"));
        for (i, step) in self.trace.iter().enumerate() {
            out.push_str(&format!(
                "    {:>3}. {:<18} -> {}\n",
                i + 1,
                step.event.to_string(),
                step.state
            ));
        }
        out
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// Number of distinct reachable states visited.
    pub states: u64,
    /// Number of transitions taken (events applied to visited states).
    pub transitions: u64,
    /// The packed encodings of every visited state, for membership
    /// queries (e.g. cross-validating a live simulation against the
    /// model's reachable set).
    pub reachable: StableHashSet<u128>,
    /// The first (shortest-trace) violation found, if any.
    pub violation: Option<Violation>,
}

impl ExploreResult {
    /// Whether the exploration completed with every invariant holding.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Explores every reachable state of `cfg`'s machine to a fixpoint.
///
/// Deterministic: the same configuration always yields the same state
/// and transition counts and (under a faulty [`crate::model::Mutation`])
/// the same counterexample.
pub fn explore(cfg: &ModelConfig) -> ExploreResult {
    cfg.validate();
    let initial = GlobalState::initial(cfg);

    // key -> how we first reached it (None for the initial state).
    let mut parents: StableHashMap<u128, Option<(u128, Event)>> = StableHashMap::default();
    let mut queue: VecDeque<GlobalState> = VecDeque::new();
    let mut states: u64 = 0;
    let mut transitions: u64 = 0;

    let visit = |state: &GlobalState,
                 from: Option<(u128, Event)>,
                 parents: &mut StableHashMap<u128, Option<(u128, Event)>>,
                 queue: &mut VecDeque<GlobalState>|
     -> Result<(), String> {
        let key = state.encode();
        if parents.contains_key(&key) {
            return Ok(());
        }
        parents.insert(key, from);
        invariants::check(state)?;
        queue.push_back(state.clone());
        Ok(())
    };

    let mut violation: Option<(u128, String)> = None;
    if let Err(message) = visit(&initial, None, &mut parents, &mut queue) {
        violation = Some((initial.encode(), message));
    }
    states += 1;

    // Keep every visited state around so parent keys can be decoded back
    // into states for the trace without re-deriving them.
    let mut decoded: StableHashMap<u128, GlobalState> = StableHashMap::default();
    decoded.insert(initial.encode(), initial.clone());

    'bfs: while let Some(state) = queue.pop_front() {
        let key = state.encode();
        for event in enabled_events(cfg, &state) {
            transitions += 1;
            let next = apply(cfg, &state, event);
            let next_key = next.encode();
            let fresh = !parents.contains_key(&next_key);
            if fresh {
                states += 1;
                decoded.insert(next_key, next.clone());
            }
            if let Err(message) = visit(&next, Some((key, event)), &mut parents, &mut queue) {
                violation = Some((next_key, message));
                break 'bfs;
            }
        }
    }

    let violation = violation.map(|(mut key, message)| {
        let mut rev: Vec<TraceStep> = Vec::new();
        while let Some(Some((parent, event))) = parents.get(&key) {
            rev.push(TraceStep {
                event: *event,
                state: decoded[&key].clone(),
            });
            key = *parent;
        }
        rev.reverse();
        Violation {
            message,
            trace: rev,
        }
    });

    ExploreResult {
        states,
        transitions,
        reachable: parents.keys().copied().collect(),
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mutation;

    #[test]
    fn two_node_one_line_machine_is_clean_and_small() {
        let cfg = ModelConfig {
            nodes: 2,
            lines: 1,
            self_invalidation: true,
            mutation: Mutation::None,
            ..ModelConfig::default_3x2()
        };
        let r = explore(&cfg);
        assert!(r.clean(), "{}", r.violation.unwrap().message);
        assert!(r.states > 10, "explored only {} states", r.states);
        assert!(r.transitions > r.states);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ModelConfig {
            nodes: 2,
            lines: 1,
            self_invalidation: true,
            mutation: Mutation::None,
            ..ModelConfig::default_3x2()
        };
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn a_faulty_protocol_yields_a_renderable_trace() {
        let cfg = ModelConfig {
            nodes: 2,
            lines: 1,
            self_invalidation: true,
            mutation: Mutation::KeepStaleSharers,
            ..ModelConfig::default_3x2()
        };
        let r = explore(&cfg);
        let v = r.violation.expect("fault must be caught");
        assert!(!v.trace.is_empty());
        let text = v.render(&GlobalState::initial(&cfg));
        assert!(text.contains("violation:"), "{text}");
        assert!(text.contains("start"), "{text}");
        assert!(text.contains("1."), "{text}");
    }
}
