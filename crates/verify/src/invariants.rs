//! The global safety invariants checked at every explored state.
//!
//! Each invariant carries its paper grounding (Cantin, Lipasti, Smith —
//! ISCA 2005); `DESIGN.md`'s "Invariants & verification" section lists
//! the same set. The runtime sanitizer in `cgct-system` re-checks the
//! identical properties against the live machine.

use crate::model::GlobalState;
use cgct::{LocalPart, RegionPermission, RegionSnoopResponse};
use cgct_cache::{broadcast_unnecessary, LineSnoopResponse, MoesiState, ReqKind};

/// All request kinds a region permission can rule on (write-backs are
/// checked too: they are trivially safe but must stay so).
const ALL_REQS: [ReqKind; 6] = [
    ReqKind::Read,
    ReqKind::ReadShared,
    ReqKind::ReadExclusive,
    ReqKind::Upgrade,
    ReqKind::Dcbz,
    ReqKind::Writeback,
];

/// Checks every invariant on `state`; returns the first violation.
///
/// # Errors
///
/// Returns a human-readable description of the violated invariant.
pub fn check(state: &GlobalState) -> Result<(), String> {
    single_writer_multiple_reader(state)?;
    region_conservatism(state)?;
    inclusion_and_counts(state)?;
    snoop_response_consistency(state)?;
    permission_oracle_soundness(state)?;
    directory_integrity(state)?;
    Ok(())
}

/// I1 — Single writer, multiple readers (MOESI base protocol; the
/// property CGCT must preserve, §1: "without violating coherence").
/// Per line: at most one M/E copy, an M/E copy is the only copy, and at
/// most one dirty owner (M/O) exists.
pub fn single_writer_multiple_reader(state: &GlobalState) -> Result<(), String> {
    let lines = state.nodes[0].lines.len();
    for line in 0..lines {
        let holders: Vec<(usize, MoesiState)> = state
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.lines[line].is_valid())
            .map(|(i, n)| (i, n.lines[line]))
            .collect();
        let writable = holders
            .iter()
            .filter(|(_, s)| s.can_silently_modify())
            .count();
        if writable > 1 {
            return Err(format!(
                "I1: line {line} has multiple M/E holders {holders:?}"
            ));
        }
        if writable == 1 && holders.len() > 1 {
            return Err(format!(
                "I1: line {line} has M/E alongside other copies {holders:?}"
            ));
        }
        let owners = holders.iter().filter(|(_, s)| s.is_dirty()).count();
        if owners > 1 {
            return Err(format!("I1: line {line} has multiple owners {holders:?}"));
        }
    }
    Ok(())
}

/// I2 — Region-state conservatism (Table 1's state meanings): a region
/// state must never *under-report* what other processors hold.
/// External Invalid ⇒ no other node has an entry or cached lines;
/// external Clean ⇒ other nodes hold only unmodified (S) lines; local
/// Clean ⇒ the node's own lines are all S.
pub fn region_conservatism(state: &GlobalState) -> Result<(), String> {
    for (a, node_a) in state.nodes.iter().enumerate() {
        if !node_a.region.is_valid() {
            continue;
        }
        if node_a.region.local() == Some(LocalPart::Clean) {
            for (l, &s) in node_a.lines.iter().enumerate() {
                if s.is_valid() && s != MoesiState::Shared {
                    return Err(format!(
                        "I2: node {a} region {} (locally clean) holds line {l} in {s}",
                        node_a.region
                    ));
                }
            }
        }
        if node_a.region.is_exclusive() {
            for (b, node_b) in state.nodes.iter().enumerate() {
                if a == b {
                    continue;
                }
                if node_b.region.is_valid() {
                    return Err(format!(
                        "I2: node {a} claims {} but node {b} has entry {}",
                        node_a.region, node_b.region
                    ));
                }
                if node_b.cached_lines() > 0 {
                    return Err(format!(
                        "I2: node {a} claims {} but node {b} caches {} line(s)",
                        node_a.region,
                        node_b.cached_lines()
                    ));
                }
            }
        }
        if node_a.region.is_externally_clean() {
            for (b, node_b) in state.nodes.iter().enumerate() {
                if a == b {
                    continue;
                }
                for (l, &s) in node_b.lines.iter().enumerate() {
                    if s.is_valid() && s != MoesiState::Shared {
                        return Err(format!(
                            "I2: node {a} claims {} (externally clean) but node {b} \
                             holds line {l} in {s}",
                            node_a.region
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// I3 — RCA/L2 inclusion with exact counts (§3.2): every cached line is
/// covered by a valid region entry, and the entry's line count equals
/// the number of lines actually cached.
pub fn inclusion_and_counts(state: &GlobalState) -> Result<(), String> {
    for (i, node) in state.nodes.iter().enumerate() {
        let actual = node.cached_lines();
        if !node.region.is_valid() {
            if actual != 0 {
                return Err(format!(
                    "I3: node {i} caches {actual} line(s) with no region entry"
                ));
            }
            if node.line_count != 0 {
                return Err(format!(
                    "I3: node {i} has no entry but a line count of {}",
                    node.line_count
                ));
            }
            continue;
        }
        if node.line_count != actual {
            return Err(format!(
                "I3: node {i} entry counts {} line(s) but {actual} are cached",
                node.line_count
            ));
        }
    }
    Ok(())
}

/// I4 — Snoop-response consistency (§3.4): the contribution a node's
/// region state would put on the bus (via
/// [`RegionSnoopResponse::from_local_state`]) must describe its actual
/// cache contents. Not asserting Region Dirty means holding no M/O/E
/// lines; asserting nothing means holding no lines at all.
pub fn snoop_response_consistency(state: &GlobalState) -> Result<(), String> {
    for (i, node) in state.nodes.iter().enumerate() {
        let r = RegionSnoopResponse::from_local_state(node.region);
        if !r.any() && node.cached_lines() > 0 {
            return Err(format!(
                "I4: node {i} would answer no-copies yet caches {} line(s)",
                node.cached_lines()
            ));
        }
        if !r.dirty {
            for (l, &s) in node.lines.iter().enumerate() {
                if s.is_valid() && s != MoesiState::Shared {
                    return Err(format!(
                        "I4: node {i} would answer Region-Clean yet holds line {l} in {s}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// I5 — Permission oracle soundness (§3, Table 2): whenever a region
/// state lets a request skip the broadcast (direct-to-memory or
/// complete-locally), the oracle rule of Figure 2 — evaluated on the
/// *actual* remote line states — must agree the broadcast is
/// unnecessary. This is the paper's central safety claim.
pub fn permission_oracle_soundness(state: &GlobalState) -> Result<(), String> {
    let lines = state.nodes[0].lines.len();
    for (a, node_a) in state.nodes.iter().enumerate() {
        for req in ALL_REQS {
            if node_a.region.permission(req) == RegionPermission::Broadcast {
                continue;
            }
            for line in 0..lines {
                let mut resp = LineSnoopResponse::default();
                for (b, node_b) in state.nodes.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    let s = node_b.lines[line];
                    resp.merge(LineSnoopResponse {
                        shared: s.is_valid(),
                        dirty: s.is_dirty(),
                        exclusive: s == MoesiState::Exclusive,
                    });
                }
                if !broadcast_unnecessary(req, resp) {
                    return Err(format!(
                        "I5: node {a} region {} permits {req:?} without broadcast, \
                         but line {line} has remote state {resp:?}",
                        node_a.region
                    ));
                }
            }
        }
    }
    Ok(())
}

/// I6 — Home-directory integrity (directory machine only; §1.2 and the
/// full-map invariant the lookup bypass rests on). (a) Conservatism:
/// every valid cached copy of a line is listed at the home, as owner or
/// sharer — the dual of I2, at line grain. Stale *extra* bits from
/// silent clean evictions are allowed (they cost only harmless
/// invalidations); missing bits would let the directory skip a cache
/// that holds data. (b) Ownership: an M/O/E holder must be the recorded
/// owner. (c) Region-cache exactness: the region-grain directory cache,
/// once installed, must equal the union of the per-line entries it
/// summarizes — the bypass decision reads this mask, so any drift is a
/// safety hole, not a performance bug.
pub fn directory_integrity(state: &GlobalState) -> Result<(), String> {
    let Some(home) = &state.home else {
        return Ok(());
    };
    for (line, entry) in home.lines.iter().enumerate() {
        for (n, node) in state.nodes.iter().enumerate() {
            let s = node.lines[line];
            if !s.is_valid() {
                continue;
            }
            let listed = entry.owner == Some(n as u8) || entry.sharers & (1u8 << n) != 0;
            if !listed {
                return Err(format!(
                    "I6: node {n} holds line {line} in {s} but the home entry \
                     (owner {:?}, sharers {:#b}) does not list it",
                    entry.owner, entry.sharers
                ));
            }
            if (s.can_silently_modify() || s.is_dirty()) && entry.owner != Some(n as u8) {
                return Err(format!(
                    "I6: node {n} holds line {line} in {s} but the home \
                     records owner {:?}",
                    entry.owner
                ));
            }
        }
    }
    if let Some(mask) = home.cache_mask {
        let mut union: u8 = 0;
        for entry in &home.lines {
            union |= entry.sharers;
            if let Some(o) = entry.owner {
                union |= 1 << o;
            }
        }
        if mask != union {
            return Err(format!(
                "I6: region directory cache mask {mask:#b} != union of \
                 per-line entries {union:#b}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GlobalState, HomeState, LineDir, ModelConfig, NodeState};
    use cgct::RegionState;

    fn node(lines: Vec<MoesiState>, region: RegionState, count: u32) -> NodeState {
        NodeState {
            lines,
            region,
            line_count: count,
        }
    }

    #[test]
    fn initial_state_is_clean() {
        let cfg = ModelConfig::default_3x2();
        check(&GlobalState::initial(&cfg)).unwrap();
    }

    #[test]
    fn catches_double_writer() {
        use MoesiState::*;
        let s = GlobalState {
            nodes: vec![
                node(vec![Modified, Invalid], RegionState::DirtyDirty, 1),
                node(vec![Exclusive, Invalid], RegionState::DirtyDirty, 1),
            ],
            home: None,
        };
        let err = check(&s).unwrap_err();
        assert!(err.starts_with("I1"), "{err}");
    }

    #[test]
    fn catches_stale_exclusive_claim() {
        use MoesiState::*;
        let s = GlobalState {
            nodes: vec![
                node(vec![Shared, Invalid], RegionState::CleanInvalid, 1),
                node(vec![Shared, Invalid], RegionState::CleanDirty, 1),
            ],
            home: None,
        };
        let err = check(&s).unwrap_err();
        assert!(err.starts_with("I2"), "{err}");
    }

    #[test]
    fn catches_count_drift() {
        use MoesiState::*;
        let s = GlobalState {
            nodes: vec![
                node(vec![Shared, Invalid], RegionState::CleanClean, 2),
                node(vec![Shared, Invalid], RegionState::CleanClean, 1),
            ],
            home: None,
        };
        let err = check(&s).unwrap_err();
        assert!(err.starts_with("I3"), "{err}");
    }

    #[test]
    fn catches_unsafe_externally_clean_claim() {
        use MoesiState::*;
        // Node 0 claims the region externally clean while node 1 holds a
        // modifiable copy — an ifetch would go direct and read stale data.
        let s = GlobalState {
            nodes: vec![
                node(vec![Shared, Invalid], RegionState::CleanClean, 1),
                node(vec![Invalid, Exclusive], RegionState::DirtyClean, 1),
            ],
            home: None,
        };
        let err = check(&s).unwrap_err();
        assert!(err.starts_with("I2"), "{err}");
    }

    #[test]
    fn catches_lying_snoop_response() {
        use MoesiState::*;
        // A locally-clean region state answers Region-Clean, but the node
        // holds an Owned (dirty) line. I2 and I4 both describe it; the
        // conservatism check fires first.
        let s = GlobalState {
            nodes: vec![
                node(vec![Owned, Invalid], RegionState::CleanDirty, 1),
                node(vec![Shared, Invalid], RegionState::CleanDirty, 1),
            ],
            home: None,
        };
        let err = check(&s).unwrap_err();
        assert!(err.starts_with("I2"), "{err}");
        let err = snoop_response_consistency(&s).unwrap_err();
        assert!(err.starts_with("I4"), "{err}");
    }

    #[test]
    fn catches_unsound_direct_permission() {
        use MoesiState::*;
        // Node 0's DI region would send loads direct while node 1 holds a
        // copy of a line in it. I2 fires on the exclusivity claim; the
        // dedicated oracle check fires on the same state.
        let s = GlobalState {
            nodes: vec![
                node(vec![Exclusive, Invalid], RegionState::DirtyInvalid, 1),
                node(vec![Invalid, Shared], RegionState::CleanDirty, 1),
            ],
            home: None,
        };
        let err = permission_oracle_soundness(&s).unwrap_err();
        assert!(err.starts_with("I5"), "{err}");
    }

    #[test]
    fn directory_machine_initial_state_is_clean() {
        let cfg = ModelConfig::directory_3x2();
        check(&GlobalState::initial(&cfg)).unwrap();
    }

    #[test]
    fn catches_unlisted_copy_at_the_home() {
        use MoesiState::*;
        // Node 1 caches line 0 but the home lists only node 0 — the
        // directory would skip node 1's cache on the next conflicting
        // request.
        let s = GlobalState {
            nodes: vec![
                node(vec![Shared, Invalid], RegionState::CleanClean, 1),
                node(vec![Shared, Invalid], RegionState::CleanClean, 1),
            ],
            home: Some(HomeState {
                lines: vec![
                    LineDir {
                        owner: Some(0),
                        sharers: 0,
                    },
                    LineDir::default(),
                ],
                cache_mask: Some(0b01),
            }),
        };
        let err = directory_integrity(&s).unwrap_err();
        assert!(
            err.starts_with("I6") && err.contains("does not list"),
            "{err}"
        );
    }

    #[test]
    fn catches_unrecorded_owner() {
        use MoesiState::*;
        // Node 1 holds the line Modified but the home thinks node 0 owns
        // it.
        let s = GlobalState {
            nodes: vec![
                node(vec![Invalid, Invalid], RegionState::Invalid, 0),
                node(vec![Modified, Invalid], RegionState::DirtyInvalid, 1),
            ],
            home: Some(HomeState {
                lines: vec![
                    LineDir {
                        owner: Some(0),
                        sharers: 0b10,
                    },
                    LineDir::default(),
                ],
                cache_mask: Some(0b11),
            }),
        };
        let err = directory_integrity(&s).unwrap_err();
        assert!(
            err.starts_with("I6") && err.contains("records owner"),
            "{err}"
        );
    }

    #[test]
    fn catches_drifted_region_directory_cache() {
        use MoesiState::*;
        // The per-line entries say node 1 caches the region, but the
        // region-grain cache mask was never refreshed — the next request
        // from node 0 would bypass the lookup and skip node 1.
        let s = GlobalState {
            nodes: vec![
                node(vec![Invalid, Invalid], RegionState::Invalid, 0),
                node(vec![Shared, Invalid], RegionState::CleanInvalid, 1),
            ],
            home: Some(HomeState {
                lines: vec![
                    LineDir {
                        owner: Some(1),
                        sharers: 0,
                    },
                    LineDir::default(),
                ],
                cache_mask: Some(0b01),
            }),
        };
        let err = directory_integrity(&s).unwrap_err();
        assert!(err.starts_with("I6") && err.contains("mask"), "{err}");
    }

    #[test]
    fn stale_extra_sharers_are_tolerated() {
        use MoesiState::*;
        // A silent clean eviction leaves node 0 listed as a sharer while
        // it caches nothing — the standard full-map conservatism; only
        // missing bits are violations.
        let s = GlobalState {
            nodes: vec![
                node(vec![Invalid, Invalid], RegionState::Invalid, 0),
                node(vec![Shared, Invalid], RegionState::CleanInvalid, 1),
            ],
            home: Some(HomeState {
                lines: vec![
                    LineDir {
                        owner: Some(1),
                        sharers: 0b01,
                    },
                    LineDir::default(),
                ],
                cache_mask: Some(0b11),
            }),
        };
        directory_integrity(&s).unwrap();
    }
}
