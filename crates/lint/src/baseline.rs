//! Grandfathered-finding baselines with a ratchet: a baseline may only
//! shrink. Every current finding must be listed in the baseline, and
//! every baseline entry must still match a current finding — a stale
//! entry means the debt was paid and the baseline must be re-shrunk, so
//! the debt count is monotonically non-increasing over the repo's life.

use crate::rules::Finding;
use cgct_sim::json::{Json, ToJson};

/// One grandfathered finding, matched exactly by
/// `(rule, path, line, col)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id.
    pub rule: String,
}

impl BaselineEntry {
    fn of(f: &Finding) -> BaselineEntry {
        BaselineEntry {
            path: f.path.clone(),
            line: f.line,
            col: f.col,
            rule: f.rule.clone(),
        }
    }
}

impl ToJson for BaselineEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", Json::str(&self.path)),
            ("line", Json::u64(self.line as u64)),
            ("col", Json::u64(self.col as u64)),
            ("rule", Json::str(&self.rule)),
        ])
    }
}

/// Serializes findings as a canonical (sorted, pretty) baseline file.
pub fn render(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = findings.iter().map(BaselineEntry::of).collect();
    entries.sort();
    entries.dedup();
    let arr = Json::Array(entries.iter().map(|e| e.to_json()).collect());
    format!("{}\n", arr.dump_pretty())
}

/// Parses a baseline file.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let v = Json::parse(text).map_err(|e| format!("baseline parse error: {e}"))?;
    let arr = v.as_array().ok_or("baseline must be a JSON array")?;
    let mut out = Vec::new();
    for item in arr {
        let get = |k: &str| -> Result<&Json, String> {
            item.get(k)
                .ok_or_else(|| format!("baseline entry missing `{k}`"))
        };
        out.push(BaselineEntry {
            path: get("path")?
                .as_str()
                .ok_or("baseline `path` must be a string")?
                .to_string(),
            line: get("line")?
                .as_u64()
                .ok_or("baseline `line` must be a u64")? as u32,
            col: get("col")?.as_u64().ok_or("baseline `col` must be a u64")? as u32,
            rule: get("rule")?
                .as_str()
                .ok_or("baseline `rule` must be a string")?
                .to_string(),
        });
    }
    Ok(out)
}

/// The ratchet verdict: which findings are new (not grandfathered) and
/// which baseline entries are stale (paid-off debt still listed).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RatchetResult {
    /// Findings not covered by the baseline — always an error.
    pub new_findings: Vec<Finding>,
    /// Baseline entries matching nothing — the baseline must shrink.
    pub stale_entries: Vec<BaselineEntry>,
}

impl RatchetResult {
    /// Whether the tree is acceptable under the baseline.
    pub fn ok(&self) -> bool {
        self.new_findings.is_empty() && self.stale_entries.is_empty()
    }
}

/// Applies the baseline to the current findings.
pub fn apply(findings: &[Finding], baseline: &[BaselineEntry]) -> RatchetResult {
    use std::collections::BTreeSet;
    let listed: BTreeSet<&BaselineEntry> = baseline.iter().collect();
    let current: BTreeSet<BaselineEntry> = findings.iter().map(BaselineEntry::of).collect();
    RatchetResult {
        new_findings: findings
            .iter()
            .filter(|f| !listed.contains(&BaselineEntry::of(f)))
            .cloned()
            .collect(),
        stale_entries: baseline
            .iter()
            .filter(|e| !current.contains(e))
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &str) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            col: 5,
            rule: rule.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn round_trip_and_ratchet() {
        let fs = vec![finding("a.rs", 3, "D002"), finding("b.rs", 9, "D001")];
        let text = render(&fs);
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed.len(), 2);
        let r = apply(&fs, &parsed);
        assert!(r.ok());
        // A new finding is flagged.
        let mut more = fs.clone();
        more.push(finding("c.rs", 1, "D004"));
        let r2 = apply(&more, &parsed);
        assert_eq!(r2.new_findings.len(), 1);
        // A paid-off finding makes its entry stale.
        let r3 = apply(&fs[..1], &parsed);
        assert_eq!(r3.stale_entries.len(), 1);
        assert!(!r3.ok());
    }

    #[test]
    fn render_is_canonical() {
        let a = vec![finding("b.rs", 9, "D001"), finding("a.rs", 3, "D002")];
        let b = vec![finding("a.rs", 3, "D002"), finding("b.rs", 9, "D001")];
        assert_eq!(render(&a), render(&b));
    }
}
