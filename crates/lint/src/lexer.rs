//! A small but real Rust lexer: enough fidelity that the rule engine
//! never mistakes the inside of a string, comment, or char literal for
//! code. Handles nested block comments, raw strings/identifiers, byte
//! and raw byte strings, char vs. lifetime disambiguation, numeric
//! literals with type suffixes, and a leading shebang line.
//!
//! The lexer is total: malformed input (unterminated strings or
//! comments) consumes to end of file rather than failing, so the
//! analyzer degrades gracefully on half-written code.

/// What a token is. Comments are tokens (the suppression scanner reads
/// them); rules match over the comment-free "code token" view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`region`, `fn`, `f64`).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Lifetime (`'a`, `'_`) — not a char literal.
    Lifetime,
    /// String literal `"..."`.
    Str,
    /// Raw string literal `r"..."` / `r#"..."#`.
    RawStr,
    /// Byte string literal `b"..."`.
    ByteStr,
    /// Raw byte string literal `br#"..."#`.
    RawByteStr,
    /// Char literal `'x'`, `'\''`, `'"'`.
    Char,
    /// Byte char literal `b'x'`.
    ByteChar,
    /// Numeric literal, including suffixes (`1_000u64`, `2.5f64`, `0xff`).
    Num,
    /// `// ...` comment; whether it is a doc comment (`///`, `//!`) is
    /// decided by the consumer from the token text.
    LineComment,
    /// `/* ... */` comment, nesting tracked.
    BlockComment,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
    /// `#!/usr/bin/env ...` first line.
    Shebang,
}

/// One lexed token with its byte span and 1-based line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based character column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens with exact spans. Whitespace is skipped;
/// everything else (including comments) is returned.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    b: &'s [u8],
    i: usize,
    line: u32,
    /// Byte offset where the current line starts (for column math).
    line_start: usize,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            b: src.as_bytes(),
            i: 0,
            line: 1,
            line_start: 0,
            out: Vec::new(),
        }
    }

    fn col_at(&self, offset: usize) -> u32 {
        self.src[self.line_start..offset].chars().count() as u32 + 1
    }

    fn push(&mut self, kind: TokKind, start: usize, start_line: u32, start_col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.i,
            line: start_line,
            col: start_col,
        });
    }

    /// Advances one byte, maintaining line accounting.
    fn bump(&mut self) {
        if self.b[self.i] == b'\n' {
            self.line += 1;
            self.line_start = self.i + 1;
        }
        self.i += 1;
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn eat_to_eol(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn run(mut self) -> Vec<Token> {
        // Shebang: `#!` at offset 0 not followed by `[` (which would be
        // an inner attribute like `#![forbid(unsafe_code)]`).
        if self.b.len() >= 2 && self.b[0] == b'#' && self.b[1] == b'!' && self.peek(2) != Some(b'[')
        {
            self.eat_to_eol();
            self.push(TokKind::Shebang, 0, 1, 1);
        }
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let (start, start_line) = (self.i, self.line);
            let start_col = self.col_at(start);
            match c {
                b'/' if self.peek(1) == Some(b'/') => {
                    self.eat_to_eol();
                    self.push(TokKind::LineComment, start, start_line, start_col);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokKind::BlockComment, start, start_line, start_col);
                }
                b'r' if self.is_raw_string_start(0) => {
                    self.bump(); // r
                    self.raw_string_body();
                    self.push(TokKind::RawStr, start, start_line, start_col);
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    self.bump(); // r
                    self.bump(); // #
                    self.ident_body();
                    self.push(TokKind::RawIdent, start, start_line, start_col);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump(); // b
                    self.string_body();
                    self.push(TokKind::ByteStr, start, start_line, start_col);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump(); // b
                    self.char_body();
                    self.push(TokKind::ByteChar, start, start_line, start_col);
                }
                b'b' if self.peek(1) == Some(b'r') && self.is_raw_string_start(1) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string_body();
                    self.push(TokKind::RawByteStr, start, start_line, start_col);
                }
                b'"' => {
                    self.string_body();
                    self.push(TokKind::Str, start, start_line, start_col);
                }
                b'\'' => {
                    if self.is_lifetime() {
                        self.bump(); // '
                        self.ident_body();
                        self.push(TokKind::Lifetime, start, start_line, start_col);
                    } else {
                        self.char_body();
                        self.push(TokKind::Char, start, start_line, start_col);
                    }
                }
                _ if c.is_ascii_digit() => {
                    self.number_body();
                    self.push(TokKind::Num, start, start_line, start_col);
                }
                _ if is_ident_start(c) => {
                    self.ident_body();
                    self.push(TokKind::Ident, start, start_line, start_col);
                }
                _ => {
                    // Single punctuation char; consume the whole UTF-8
                    // char so multi-byte chars never get split.
                    let w = utf8_width(c);
                    for _ in 0..w {
                        if self.i < self.b.len() {
                            self.bump();
                        }
                    }
                    self.push(TokKind::Punct, start, start_line, start_col);
                }
            }
        }
        self.out
    }

    /// Whether `r` at `self.i + offset` begins a raw string: `r"`,
    /// `r#"`, `r##"`, ... (any number of hashes then a quote).
    fn is_raw_string_start(&self, offset: usize) -> bool {
        let mut j = self.i + offset + 1;
        while self.b.get(j) == Some(&b'#') {
            j += 1;
        }
        self.b.get(j) == Some(&b'"')
    }

    /// `'a` / `'_` are lifetimes; `'a'`, `'\n'`, `'"'`, `'_'` are chars.
    /// After a quote, ident-start + closing quote means char; ident-start
    /// without closing quote means lifetime; anything else is a char.
    fn is_lifetime(&self) -> bool {
        match self.peek(1) {
            Some(b'\\') => false,
            Some(n) if is_ident_start(n) => {
                // Look past the full ident: lifetime iff no closing quote.
                let mut j = self.i + 2;
                while self.b.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                self.b.get(j) != Some(&b'\'')
            }
            _ => false,
        }
    }

    fn ident_body(&mut self) {
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.bump();
        }
    }

    fn number_body(&mut self) {
        // Digits, underscores, hex/suffix letters; a `.` continues the
        // number only when followed by a digit (so `1..2` and `1.max()`
        // lex as integer-then-punct).
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => self.bump(),
                Some(b'.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn string_body(&mut self) {
        self.bump(); // opening "
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.bump();
                    if self.i < self.b.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    fn char_body(&mut self) {
        self.bump(); // opening '
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.bump();
                    if self.i < self.b.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                // An unterminated char literal never spans a newline.
                b'\n' => return,
                _ => self.bump(),
            }
        }
    }

    /// Raw string starting at `r` (already bumped past). Consumes
    /// `#...#"body"#...#` with a matching hash count.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; treat `r` + hashes as consumed
        }
        self.bump(); // opening "
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                // Count following hashes.
                let mut j = self.i + 1;
                let mut n = 0usize;
                while n < hashes && self.b.get(j) == Some(&b'#') {
                    n += 1;
                    j += 1;
                }
                if n == hashes {
                    while self.i < j {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// Block comment with nesting: `/* /* */ */` is one comment.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* x /* y */ z */ b";
        let ks = kinds(src);
        assert_eq!(ks[0], (TokKind::Ident, "a".into()));
        assert_eq!(ks[1], (TokKind::BlockComment, "/* x /* y */ z */".into()));
        assert_eq!(ks[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r####"let x = r#"env::var inside "quotes""#; y"####;
        let ks = kinds(src);
        let raw = ks.iter().find(|(k, _)| *k == TokKind::RawStr).unwrap();
        assert!(raw.1.contains("env::var"));
        assert_eq!(ks.last().unwrap(), &(TokKind::Ident, "y".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c: char = '\"'; fn f<'a>(x: &'a str) { let q = 'q'; let u = '_'; }";
        let ks = kinds(src);
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        let lifes: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(chars.len(), 3, "'\"', 'q', '_' are chars: {ks:?}");
        assert_eq!(lifes.len(), 2, "two uses of 'a: {ks:?}");
    }

    #[test]
    fn escaped_quote_char() {
        let ks = kinds(r"let c = '\''; next");
        assert!(ks.contains(&(TokKind::Char, r"'\''".into())));
        assert_eq!(ks.last().unwrap(), &(TokKind::Ident, "next".into()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let a = b"bytes"; let b2 = br#"raw "bytes""#; let c = b'x';"###;
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, _)| *k == TokKind::ByteStr));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::RawByteStr && t.contains("raw \"bytes\"")));
        assert!(ks.contains(&(TokKind::ByteChar, "b'x'".into())));
    }

    #[test]
    fn shebang_only_on_first_line() {
        let ks = kinds("#!/usr/bin/env run\nfn main() {}");
        assert_eq!(ks[0].0, TokKind::Shebang);
        // Inner attribute is not a shebang.
        let ks2 = kinds("#![forbid(unsafe_code)]");
        assert_eq!(ks2[0].0, TokKind::Punct);
        assert_eq!(ks2[0].1, "#");
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#type = 1; r#fn");
        assert!(ks.contains(&(TokKind::RawIdent, "r#type".into())));
        assert!(ks.contains(&(TokKind::RawIdent, "r#fn".into())));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let ks = kinds("1_000u64 + 2.5f64 .. 0xffu8; 1..2; 3.min(4)");
        assert!(ks.contains(&(TokKind::Num, "1_000u64".into())));
        assert!(ks.contains(&(TokKind::Num, "2.5f64".into())));
        assert!(ks.contains(&(TokKind::Num, "0xffu8".into())));
        // `1..2` is Num Punct Punct Num; `3.min` keeps `3` integral.
        assert!(ks.contains(&(TokKind::Num, "1".into())));
        assert!(ks.contains(&(TokKind::Num, "3".into())));
        assert!(ks.contains(&(TokKind::Ident, "min".into())));
    }

    #[test]
    fn line_and_column_are_one_based_and_exact() {
        let src = "fn a() {}\n  let x;";
        let toks = lex(src);
        let x = toks
            .iter()
            .find(|t| t.text(src) == "x")
            .expect("x token exists");
        assert_eq!((x.line, x.col), (2, 7));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
