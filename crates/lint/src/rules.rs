//! The rule engine: repo-specific determinism rules over the token
//! stream, `#[cfg(test)]` exemption, and `// cgct-lint: allow(...)`
//! suppressions that require a written justification.

use crate::lexer::{lex, TokKind, Token};
use crate::policy::{self, FileClass};

/// One diagnostic. Ordering (and therefore output) is canonical:
/// `(path, line, col, rule)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// Rule id (`D001`..`D007`, `L000`..`L002`).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// `path:line:col: rule: message` — the clickable human form.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Static rule metadata for `--list-rules` and the docs table.
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// All rules, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "no std::time::{Instant, SystemTime} in pure crates (wall clock leaks host state)",
    },
    RuleInfo {
        id: "D002",
        summary: "no std HashMap/HashSet in pure crates (randomized iteration; use cgct_sim::hash::Stable*)",
    },
    RuleInfo {
        id: "D003",
        summary: "no thread spawning outside cgct_sim::pool (scheduling must stay behind the deterministic pool)",
    },
    RuleInfo {
        id: "D004",
        summary: "no env::var/env::args outside the config seams (knobs must be typed and centrally documented)",
    },
    RuleInfo {
        id: "D005",
        summary: "no f64/f32-typed accumulator state in stats/metrics accumulation files (integer milli-units only)",
    },
    RuleInfo {
        id: "D006",
        summary: "no unwrap/expect on library coherence paths reachable from run_once without a justified allow",
    },
    RuleInfo {
        id: "D007",
        summary: "crate roots must carry #![forbid(unsafe_code)] and #![deny(missing_docs)]",
    },
    RuleInfo {
        id: "L000",
        summary: "a cgct-lint allow() suppression requires a non-empty justification",
    },
    RuleInfo {
        id: "L001",
        summary: "malformed cgct-lint directive or unknown rule id",
    },
    RuleInfo {
        id: "L002",
        summary: "unused cgct-lint suppression (nothing to suppress — remove it)",
    },
];

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// A parsed `// cgct-lint: allow(RULE) justification` directive.
struct Allow {
    rule: String,
    /// Line the comment sits on.
    line: u32,
    col: u32,
    /// Lines it suppresses: the comment's own line, plus the next line
    /// when the comment stands alone on its line.
    applies: Vec<u32>,
    justified: bool,
    used: bool,
}

/// Analyzes one source file. `rel` decides the policy (see
/// [`crate::policy`]); test files are fully exempt.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    let class = policy::classify(rel);
    if class == FileClass::TestCode {
        return Vec::new();
    }
    let tokens = lex(src);
    // Code view: comments and shebang removed, original indices kept.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::LineComment | TokKind::BlockComment | TokKind::Shebang
            )
        })
        .collect();
    let exempt = cfg_test_lines(&code, src);
    let (mut allows, mut findings) = parse_allows(rel, &tokens, &code, src);
    let mut raw: Vec<(u32, u32, &'static str, String)> = Vec::new();

    let pure = class == FileClass::Pure;
    for (idx, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        match text {
            "Instant" | "SystemTime" if pure => raw.push((
                t.line,
                t.col,
                "D001",
                format!("wall-clock type `{text}` in a pure crate — simulated time only (cgct_sim::time)"),
            )),
            "HashMap" | "HashSet" if pure => raw.push((
                t.line,
                t.col,
                "D002",
                format!(
                    "std `{text}` has randomized iteration order — use cgct_sim::hash::Stable{text}"
                ),
            )),
            "spawn"
                if pure
                    && !policy::SPAWN_SEAM_FILES.contains(&rel)
                    && is_call_target(&code, idx, src) =>
            {
                raw.push((
                    t.line,
                    t.col,
                    "D003",
                    "thread creation outside cgct_sim::pool — shard work through the deterministic pool".to_string(),
                ))
            }
            "env"
                if pure
                    && !policy::ENV_SEAM_FILES.contains(&rel)
                    && env_read_follows(&code, idx, src) =>
            {
                let what = code[idx + 3].text(src);
                raw.push((
                    t.line,
                    t.col,
                    "D004",
                    format!(
                        "`env::{what}` outside the config seam — read knobs through cgct_system::config::env_knobs()"
                    ),
                ))
            }
            "f64" | "f32"
                if policy::is_accumulation_file(rel) && is_type_ascription(&code, idx, src) =>
            {
                raw.push((
                    t.line,
                    t.col,
                    "D005",
                    format!(
                        "`{text}`-typed accumulator state in an accumulation file — use integer milli-units (IntStats)"
                    ),
                ))
            }
            "unwrap" | "expect"
                if policy::is_coherence_path(rel) && is_method_call(&code, idx, src) =>
            {
                raw.push((
                    t.line,
                    t.col,
                    "D006",
                    format!(
                        "`.{text}()` on a coherence path reachable from run_once — handle the case or justify the fail-stop"
                    ),
                ))
            }
            _ => {}
        }
    }

    // D007: crate roots must carry the hygiene headers.
    if policy::is_crate_root(rel) {
        for (attr, inner) in [("forbid", "unsafe_code"), ("deny", "missing_docs")] {
            if !has_inner_attr(&code, src, attr, inner) {
                raw.push((
                    1,
                    1,
                    "D007",
                    format!("crate root is missing `#![{attr}({inner})]`"),
                ));
            }
        }
    }

    // Filter exempt regions, then apply suppressions.
    for (line, col, rule, message) in raw {
        if exempt.contains(&line) {
            continue;
        }
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == rule && a.applies.contains(&line) {
                a.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            findings.push(Finding {
                path: rel.to_string(),
                line,
                col,
                rule: rule.to_string(),
                message,
            });
        }
    }

    // Directive hygiene: unjustified and unused allows are themselves
    // findings, so a suppression can never silently rot.
    for a in &allows {
        if !a.justified {
            findings.push(Finding {
                path: rel.to_string(),
                line: a.line,
                col: a.col,
                rule: "L000".to_string(),
                message: format!(
                    "allow({}) without a justification — state why the violation is sound",
                    a.rule
                ),
            });
        } else if !a.used {
            findings.push(Finding {
                path: rel.to_string(),
                line: a.line,
                col: a.col,
                rule: "L002".to_string(),
                message: format!("allow({}) suppresses nothing — remove it", a.rule),
            });
        }
    }

    findings.sort();
    findings
}

/// Lines covered by `#[cfg(test)]` items (the following attribute-run +
/// item, through its matching brace or semicolon).
fn cfg_test_lines(code: &[&Token], src: &str) -> std::collections::BTreeSet<u32> {
    let mut exempt = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_attr(code, i, src) {
            // Skip this attribute (7 tokens: # [ cfg ( test ) ]).
            let mut j = i + 7;
            // Skip any further attributes.
            while j + 1 < code.len() && code[j].text(src) == "#" && code[j + 1].text(src) == "[" {
                let mut depth = 0i32;
                while j < code.len() {
                    match code[j].text(src) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Consume the item: to `;` at brace depth 0, or through the
            // matching `}` of the first opened brace.
            let start_line = code[i].line;
            let mut depth = 0i32;
            let mut end_line = start_line;
            while j < code.len() {
                let t = code[j].text(src);
                end_line = code[j].line;
                match t {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            for l in start_line..=end_line {
                exempt.insert(l);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    exempt
}

fn is_cfg_test_attr(code: &[&Token], i: usize, src: &str) -> bool {
    let texts: Vec<&str> = code[i..].iter().take(7).map(|t| t.text(src)).collect();
    texts == ["#", "[", "cfg", "(", "test", ")", "]"]
}

/// `.spawn(` or `::spawn(` — an actual call, not e.g. a doc word.
fn is_call_target(code: &[&Token], idx: usize, src: &str) -> bool {
    let before = idx > 0 && matches!(code[idx - 1].text(src), "." | ":");
    let after = code.get(idx + 1).is_some_and(|t| t.text(src) == "(");
    before && after
}

/// `env :: var`-style read: `env` followed by `::` then a read fn.
fn env_read_follows(code: &[&Token], idx: usize, src: &str) -> bool {
    code.get(idx + 1).is_some_and(|t| t.text(src) == ":")
        && code.get(idx + 2).is_some_and(|t| t.text(src) == ":")
        && code
            .get(idx + 3)
            .is_some_and(|t| matches!(t.text(src), "var" | "var_os" | "vars" | "args" | "args_os"))
}

/// `: f64` type ascription (field, binding, or parameter) — but not a
/// path segment like `std::f64::consts`.
fn is_type_ascription(code: &[&Token], idx: usize, src: &str) -> bool {
    idx > 0 && code[idx - 1].text(src) == ":" && !(idx > 1 && code[idx - 2].text(src) == ":")
}

/// `.unwrap(` / `.expect(`.
fn is_method_call(code: &[&Token], idx: usize, src: &str) -> bool {
    idx > 0
        && code[idx - 1].text(src) == "."
        && code.get(idx + 1).is_some_and(|t| t.text(src) == "(")
}

/// Whether `#![attr(inner)]` appears at the top level of the file.
fn has_inner_attr(code: &[&Token], src: &str, attr: &str, inner: &str) -> bool {
    code.windows(7).any(|w| {
        let texts: Vec<&str> = w.iter().map(|t| t.text(src)).collect();
        texts == ["#", "!", "[", attr, "(", inner, ")"]
    })
}

/// Parses `cgct-lint: allow(RULE) justification` directives out of line
/// comments. Returns the usable suppressions plus L001 findings for
/// malformed directives / unknown rule ids.
fn parse_allows(
    rel: &str,
    tokens: &[Token],
    code: &[&Token],
    src: &str,
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text(src);
        // Doc comments (`///`, `//!`) *describe* the directive syntax
        // (rule tables, usage docs); only plain `//` comments direct.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(pos) = text.find("cgct-lint:") else {
            continue;
        };
        let directive = text[pos + "cgct-lint:".len()..].trim();
        let parsed = directive
            .strip_prefix("allow(")
            .and_then(|rest| rest.split_once(')'));
        let Some((rule_raw, rest)) = parsed else {
            bad.push(Finding {
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                rule: "L001".to_string(),
                message: format!(
                    "malformed directive `{directive}` — expected `allow(<rule>) <justification>`"
                ),
            });
            continue;
        };
        let rule = rule_raw.trim().to_string();
        if !known_rule(&rule) {
            bad.push(Finding {
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                rule: "L001".to_string(),
                message: format!("unknown rule id `{rule}` in allow()"),
            });
            continue;
        }
        // A standalone comment (first token on its line) also covers the
        // next line; a trailing comment covers only its own.
        let standalone = !code.iter().any(|c| c.line == t.line && c.col < t.col);
        let mut applies = vec![t.line];
        if standalone {
            applies.push(t.line + 1);
        }
        allows.push(Allow {
            rule,
            line: t.line,
            col: t.col,
            applies,
            justified: !rest.trim().is_empty(),
            used: false,
        });
    }
    (allows, bad)
}
