//! Self-test: inject seeded violations into clean fixture sources and
//! assert that every rule fires with the exact expected `line:col` span
//! — and that clean fixtures, justified allows, and `#[cfg(test)]`
//! exemptions stay silent. The injection *order* is drawn from the
//! workspace PRNG so successive seeds exercise different interleavings,
//! while every expectation stays exact.

use crate::rules::{analyze_source, Finding};
use cgct_sim::rng::Xoshiro256pp;

/// One injectable violation: a source line plus the rule it must trip
/// and the violating token whose column we expect.
struct Violation {
    rule: &'static str,
    line_text: &'static str,
    /// The token whose `line:col` the diagnostic must carry.
    token: &'static str,
}

const VIOLATIONS: &[Violation] = &[
    Violation {
        rule: "D001",
        line_text: "    let t0 = std::time::Instant::now();",
        token: "Instant",
    },
    Violation {
        rule: "D001",
        line_text: "    let wall = std::time::SystemTime::now();",
        token: "SystemTime",
    },
    Violation {
        rule: "D002",
        line_text: "    let m: std::collections::HashMap<u64, u32> = Default::default();",
        token: "HashMap",
    },
    Violation {
        rule: "D002",
        line_text: "    let s: std::collections::HashSet<u64> = Default::default();",
        token: "HashSet",
    },
    Violation {
        rule: "D003",
        line_text: "    let h = std::thread::spawn(|| 1u64);",
        token: "spawn",
    },
    Violation {
        rule: "D004",
        line_text: "    let jobs = std::env::var(\"CGCT_JOBS\");",
        token: "env",
    },
    Violation {
        rule: "D004",
        line_text: "    let argv: Vec<String> = std::env::args().collect();",
        token: "env",
    },
];

/// A violation for the accumulation-file policy (D005 applies only
/// there, so it gets its own fixture path).
const D005_LINE: &str = "    pub running_mean: f64,";
/// And one for the coherence-path policy (D006).
const D006_LINE: &str = "    let v = self.slots.get(0).unwrap();";

/// Clean fixture prologue: lines that must never trip anything.
const CLEAN_PROLOGUE: &[&str] = &[
    "//! Fixture crate-let for the cgct-lint self-test.",
    "#![forbid(unsafe_code)]",
    "#![deny(missing_docs)]",
    "",
    "/* a block comment mentioning HashMap, Instant and env::var",
    "   /* nested: std::time::Instant */",
    "   still inside the outer comment */",
    "",
    "/// Doc text naming `HashMap` and `env::var` must not fire either.",
    "pub fn clean() -> u64 {",
    "    let s = \"env::var(\\\"HashMap\\\") Instant inside a string\";",
    "    let r = r#\"raw: std::collections::HashMap<SystemTime, _>\"#;",
    "    let c = '\\''; let q = '\"'; let b = b\"Instant bytes\";",
    "    (s.len() + r.len() + c as usize + q as usize + b.len()) as u64",
    "}",
    "",
    "#[cfg(test)]",
    "mod tests {",
    "    // Exempt: tests may use std collections and the clock.",
    "    use std::collections::HashMap;",
    "    use std::time::Instant;",
    "    #[test]",
    "    fn ok() {",
    "        let _m: HashMap<u8, u8> = HashMap::new();",
    "        let _t = Instant::now();",
    "        let _e = std::env::var(\"HOME\");",
    "    }",
    "}",
    "",
    "pub fn body() {",
];
const CLEAN_EPILOGUE: &[&str] = &["}", ""];

/// One self-test case outcome.
#[derive(Debug)]
pub struct CaseResult {
    /// Case label.
    pub name: String,
    /// Mismatch description, empty when the case passed.
    pub errors: Vec<String>,
}

/// Runs the full self-test with `seed` deciding the injection order.
/// Returns per-case results; the run passed iff every `errors` is empty.
pub fn run(seed: u64) -> Vec<CaseResult> {
    vec![
        injected_case(seed),
        clean_case(),
        policy_cases(),
        suppression_cases(),
        header_case(),
    ]
}

/// Whether every case passed.
pub fn passed(results: &[CaseResult]) -> bool {
    results.iter().all(|c| c.errors.is_empty())
}

fn expect_exact(
    name: &str,
    rel: &str,
    src: &str,
    expected: &mut Vec<(String, u32, u32)>,
) -> CaseResult {
    let mut found: Vec<(String, u32, u32)> = analyze_source(rel, src)
        .iter()
        .map(|f: &Finding| (f.rule.clone(), f.line, f.col))
        .collect();
    found.sort();
    expected.sort();
    let mut errors = Vec::new();
    if found != *expected {
        errors.push(format!(
            "{name}: expected findings {expected:?}, got {found:?}"
        ));
    }
    CaseResult {
        name: name.to_string(),
        errors,
    }
}

/// Seeded injection: shuffle the violation list, append each as one
/// line of the fixture body, and demand the exact `(rule, line, col)`
/// triple for every one — nothing more, nothing less.
fn injected_case(seed: u64) -> CaseResult {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..VIOLATIONS.len()).collect();
    rng.shuffle(&mut order);

    let mut lines: Vec<String> = CLEAN_PROLOGUE.iter().map(|s| s.to_string()).collect();
    let mut expected: Vec<(String, u32, u32)> = Vec::new();
    for &vi in &order {
        let v = &VIOLATIONS[vi];
        lines.push(v.line_text.to_string());
        let line_no = lines.len() as u32;
        let col = v.line_text.find(v.token).expect("token in its line") as u32 + 1;
        expected.push((v.rule.to_string(), line_no, col));
    }
    lines.extend(CLEAN_EPILOGUE.iter().map(|s| s.to_string()));
    let src = lines.join("\n");
    expect_exact(
        &format!("injected(seed={seed})"),
        "crates/sim/src/injected_fixture.rs",
        &src,
        &mut expected,
    )
}

/// The clean fixture alone must produce zero findings.
fn clean_case() -> CaseResult {
    let mut lines: Vec<String> = CLEAN_PROLOGUE.iter().map(|s| s.to_string()).collect();
    lines.push("    let _ = 0u64;".to_string());
    lines.extend(CLEAN_EPILOGUE.iter().map(|s| s.to_string()));
    let src = lines.join("\n");
    expect_exact(
        "clean",
        "crates/sim/src/clean_fixture.rs",
        &src,
        &mut Vec::new(),
    )
}

/// D005/D006 are policy-scoped: the same line trips in a designated
/// file and stays silent elsewhere. Host-facing files are exempt from
/// the purity rules entirely.
fn policy_cases() -> CaseResult {
    let mut errors = Vec::new();

    let d005_src = format!("pub struct Acc {{\n{D005_LINE}\n}}\n");
    let col = D005_LINE.find("f64").expect("token") as u32 + 1;
    for (rel, expect_hit) in [
        ("crates/sim/src/stats.rs", true),
        ("crates/system/src/runner.rs", false),
    ] {
        let hits: Vec<Finding> = analyze_source(rel, &d005_src)
            .into_iter()
            .filter(|f| f.rule == "D005")
            .collect();
        let want: Vec<(u32, u32)> = if expect_hit { vec![(2, col)] } else { vec![] };
        let got: Vec<(u32, u32)> = hits.iter().map(|f| (f.line, f.col)).collect();
        if got != want {
            errors.push(format!("D005 policy at {rel}: want {want:?}, got {got:?}"));
        }
    }

    let d006_src = format!("pub fn touch(&mut self) {{\n{D006_LINE}\n}}\n");
    let col = D006_LINE.find("unwrap").expect("token") as u32 + 1;
    for (rel, expect_hit) in [
        ("crates/cache/src/mshr.rs", true),
        ("crates/system/src/report.rs", false),
    ] {
        let hits: Vec<Finding> = analyze_source(rel, &d006_src)
            .into_iter()
            .filter(|f| f.rule == "D006")
            .collect();
        let want: Vec<(u32, u32)> = if expect_hit { vec![(2, col)] } else { vec![] };
        let got: Vec<(u32, u32)> = hits.iter().map(|f| (f.line, f.col)).collect();
        if got != want {
            errors.push(format!("D006 policy at {rel}: want {want:?}, got {got:?}"));
        }
    }

    // Host-facing code may read the clock and argv freely.
    let host_src = "pub fn main2() { let t = std::time::Instant::now(); \
                    let a: Vec<String> = std::env::args().collect(); }\n";
    let hits = analyze_source("crates/bench/src/timing.rs", host_src);
    if !hits.is_empty() {
        errors.push(format!("host-facing file should be exempt, got {hits:?}"));
    }

    CaseResult {
        name: "policy-scoping".to_string(),
        errors,
    }
}

/// Suppression semantics: a justified allow silences exactly its rule
/// on its line; an unjustified allow is L000; an allow with nothing to
/// suppress is L002; a bogus rule id is L001.
fn suppression_cases() -> CaseResult {
    let mut errors = Vec::new();
    let check = |name: &str, src: &str, want: Vec<(&str, u32)>| -> Option<String> {
        let got: Vec<(String, u32)> = analyze_source("crates/sim/src/fixture.rs", src)
            .iter()
            .map(|f| (f.rule.clone(), f.line))
            .collect();
        let want: Vec<(String, u32)> = want.into_iter().map(|(r, l)| (r.to_string(), l)).collect();
        (got != want).then(|| format!("{name}: want {want:?}, got {got:?}"))
    };

    errors.extend(check(
        "justified-trailing",
        "fn f() {\n    let t = std::time::Instant::now(); \
         // cgct-lint: allow(D001) host telemetry only, never feeds results\n}\n",
        vec![],
    ));
    errors.extend(check(
        "justified-standalone",
        "fn f() {\n    // cgct-lint: allow(D002) keyed lookups only, never iterated\n    \
         let m: std::collections::HashMap<u8, u8> = Default::default();\n}\n",
        vec![],
    ));
    errors.extend(check(
        "unjustified-is-L000",
        "fn f() {\n    let t = std::time::Instant::now(); // cgct-lint: allow(D001)\n}\n",
        vec![("L000", 2)],
    ));
    errors.extend(check(
        "unused-is-L002",
        "fn f() {\n    // cgct-lint: allow(D001) nothing here actually violates\n    let x = 1;\n}\n",
        vec![("L002", 2)],
    ));
    errors.extend(check(
        "unknown-rule-is-L001",
        "fn f() {\n    // cgct-lint: allow(D999) no such rule\n    let x = 1;\n}\n",
        vec![("L001", 2)],
    ));
    errors.extend(check(
        "wrong-rule-does-not-suppress",
        "fn f() {\n    let t = std::time::Instant::now(); \
         // cgct-lint: allow(D002) wrong rule id for this line\n}\n",
        vec![("D001", 2), ("L002", 2)],
    ));

    CaseResult {
        name: "suppressions".to_string(),
        errors,
    }
}

/// D007 fires (twice) on a crate root missing both headers, with the
/// span pinned to 1:1, and stays silent on a compliant root.
fn header_case() -> CaseResult {
    let mut errors = Vec::new();
    let bare = "//! A crate.\npub fn f() {}\n";
    let got: Vec<(String, u32, u32)> = analyze_source("crates/x/src/lib.rs", bare)
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.col))
        .collect();
    let want = vec![("D007".to_string(), 1, 1), ("D007".to_string(), 1, 1)];
    if got != want {
        errors.push(format!("missing headers: want {want:?}, got {got:?}"));
    }
    let good = "//! A crate.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
    let got2 = analyze_source("crates/x/src/lib.rs", good);
    if !got2.is_empty() {
        errors.push(format!("compliant root should be clean, got {got2:?}"));
    }
    // Non-root files carry no header obligation.
    let got3 = analyze_source("crates/x/src/other.rs", bare);
    if !got3.is_empty() {
        errors.push(format!("non-root should be clean, got {got3:?}"));
    }
    CaseResult {
        name: "crate-headers".to_string(),
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes_for_several_seeds() {
        for seed in [0u64, 1, 42, 0xC6C7_2005_15CA] {
            let results = run(seed);
            for c in &results {
                assert!(c.errors.is_empty(), "case {}: {:?}", c.name, c.errors);
            }
        }
    }
}
