//! The `cgct-lint` binary: determinism & purity lint for the workspace.
//!
//! ```text
//! cgct-lint [--root DIR] [--format human|json] [--baseline FILE]
//!           [--write-baseline FILE] [--self-test [SEED]] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (or all findings baselined), 1 findings /
//! ratchet violation / self-test failure, 2 usage or I/O error.

use cgct_lint::{analyze_tree, baseline, render, rules, selftest, OutputFormat};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    format: OutputFormat,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    self_test: bool,
    self_test_seed: u64,
    list_rules: bool,
}

const USAGE: &str = "usage: cgct-lint [--root DIR] [--format human|json] [--baseline FILE] \
[--write-baseline FILE] [--self-test [SEED]] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: OutputFormat::Human,
        baseline: None,
        write_baseline: None,
        self_test: false,
        self_test_seed: 0xC6C7_2005_15CA,
        list_rules: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => args.root = PathBuf::from(value(&mut i, "--root")?),
            "--format" => {
                args.format = match value(&mut i, "--format")?.as_str() {
                    "human" => OutputFormat::Human,
                    "json" => OutputFormat::Json,
                    other => return Err(format!("--format must be human|json, got {other:?}")),
                }
            }
            "--baseline" => args.baseline = Some(PathBuf::from(value(&mut i, "--baseline")?)),
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(value(&mut i, "--write-baseline")?))
            }
            "--self-test" => {
                args.self_test = true;
                // Optional seed: consume the next arg only if numeric.
                if let Some(seed) = argv.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    args.self_test_seed = seed;
                    i += 1;
                }
            }
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if args.self_test {
        let results = selftest::run(args.self_test_seed);
        for c in &results {
            if c.errors.is_empty() {
                println!("self-test {}: ok", c.name);
            } else {
                for e in &c.errors {
                    println!("self-test {}: FAIL: {e}", c.name);
                }
            }
        }
        return if selftest::passed(&results) {
            println!(
                "cgct-lint self-test: all cases passed (seed {})",
                args.self_test_seed
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let (findings, scanned) = match analyze_tree(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cgct-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cgct-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cgct-lint: wrote baseline with {} entr(ies) to {}",
            findings.len(),
            path.display()
        );
    }

    // Under a baseline, report only ratchet violations; the baseline's
    // own entries are acknowledged debt.
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cgct-lint: read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let entries = match baseline::parse(&text) {
            Ok(es) => es,
            Err(e) => {
                eprintln!("cgct-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let verdict = baseline::apply(&findings, &entries);
        print!("{}", render(&verdict.new_findings, scanned, args.format));
        for stale in &verdict.stale_entries {
            eprintln!(
                "cgct-lint: stale baseline entry {} {}:{}:{} — the finding is gone; \
                 shrink the baseline (ratchet)",
                stale.rule, stale.path, stale.line, stale.col
            );
        }
        return if verdict.ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    print!("{}", render(&findings, scanned, args.format));
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
