//! The per-crate purity policy map: which files each rule applies to.
//!
//! The workspace layers split cleanly into *pure* crates — everything
//! that runs between a seed and a results artifact, where byte-identical
//! reproducibility is load-bearing — and *host-facing* code (the bench
//! crate, `src/bin` targets, examples) that may read the clock, parse
//! argv, and print progress. Test code gets the loosest policy: tests
//! may use `std` hash containers and `unwrap` freely because their
//! output never feeds an artifact.

/// How a file is classified for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Simulation/library code on the seed → artifact path. All
    /// determinism rules apply.
    Pure,
    /// Binaries, benches, and examples: may touch the host environment
    /// (clock, argv, env) by design. Only crate-hygiene rules apply.
    HostFacing,
    /// Integration-test code: exempt from determinism rules.
    TestCode,
}

/// Classifies a repo-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return FileClass::TestCode;
    }
    if rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/")
        || rel.contains("/benches/")
        || rel.starts_with("crates/bench/")
    {
        return FileClass::HostFacing;
    }
    FileClass::Pure
}

/// Files that hold per-event statistics accumulation state — the D005
/// integer-milli-unit rule applies only here. Everything downstream
/// (report rows, cross-run aggregation) derives values from these
/// integer accumulators in canonical order at report time.
pub const ACCUMULATION_FILES: &[&str] = &[
    "crates/sim/src/stats.rs",
    "crates/system/src/metrics.rs",
    "crates/system/src/energy.rs",
    "crates/interconnect/src/bus.rs",
    "crates/interconnect/src/memctrl.rs",
];

/// Library coherence paths reachable from `run_once` — the D006
/// no-`unwrap`/`expect` rule applies only here. A panic on these paths
/// kills a sweep cell mid-simulation, so every one must be an
/// explicitly justified fail-stop invariant.
pub const COHERENCE_PATH_PREFIXES: &[&str] = &[
    "crates/cache/src/",
    "crates/core/src/",
    "crates/cpu/src/",
    "crates/interconnect/src/",
    "crates/workloads/src/",
];

/// Individual `cgct-system` files on the coherence path (the rest of
/// that crate — config, reports, experiment tables — is report-layer).
pub const COHERENCE_PATH_FILES: &[&str] = &[
    "crates/system/src/memsys.rs",
    "crates/system/src/machine.rs",
    "crates/system/src/epoch.rs",
    "crates/system/src/oracle.rs",
    "crates/system/src/directory.rs",
];

/// Whether D005 (float accumulation) applies to `rel`.
pub fn is_accumulation_file(rel: &str) -> bool {
    ACCUMULATION_FILES.contains(&rel)
}

/// Whether D006 (unwrap/expect) applies to `rel`.
pub fn is_coherence_path(rel: &str) -> bool {
    COHERENCE_PATH_FILES.contains(&rel)
        || COHERENCE_PATH_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) && !rel.contains("/bin/"))
}

/// The one sanctioned `env::var` seam outside binaries: the typed knob
/// reader. `cgct_sim::pool` / `cgct_sim::check` carry their own inline
/// justified allows (they sit below `cgct-system` in the crate DAG).
pub const ENV_SEAM_FILES: &[&str] = &["crates/system/src/config.rs"];

/// The one sanctioned thread-creation site: the deterministic pool.
pub const SPAWN_SEAM_FILES: &[&str] = &["crates/sim/src/pool.rs"];

/// Whether `rel` is a crate root that must carry the hygiene headers
/// (`#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`, rule D007).
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/sim/src/rng.rs"), FileClass::Pure);
        assert_eq!(classify("crates/system/src/memsys.rs"), FileClass::Pure);
        assert_eq!(
            classify("crates/bench/src/timing.rs"),
            FileClass::HostFacing
        );
        assert_eq!(
            classify("crates/verify/src/bin/cgct-verify.rs"),
            FileClass::HostFacing
        );
        assert_eq!(classify("examples/design_space.rs"), FileClass::HostFacing);
        assert_eq!(
            classify("crates/cache/tests/mshr_props.rs"),
            FileClass::TestCode
        );
        assert_eq!(classify("tests/machine_semantics.rs"), FileClass::TestCode);
    }

    #[test]
    fn coherence_paths() {
        assert!(is_coherence_path("crates/cache/src/protocol.rs"));
        assert!(is_coherence_path("crates/system/src/memsys.rs"));
        assert!(!is_coherence_path("crates/system/src/report.rs"));
        assert!(!is_coherence_path("crates/sim/src/json.rs"));
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/lib.rs"));
        assert!(!is_crate_root("crates/lint/src/lexer.rs"));
    }
}
