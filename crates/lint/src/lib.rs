//! `cgct-lint` — an in-tree, zero-dependency determinism & purity
//! static analyzer for the CGCT workspace.
//!
//! Every load-bearing guarantee in this repo (byte-identical artifacts
//! across `CGCT_JOBS`/`CGCT_INTRA_JOBS`, sound result-cache hits,
//! checkpoint/resume byte-equality) rests on source-level hygiene: no
//! wall-clock reads, no randomized-iteration containers, no stray
//! `env::var` outside the config seams, integer milli-unit statistics
//! accumulation. The dynamic layers (cgct-verify, the byte-compare A/B
//! smokes) catch violations *after* they ship; this analyzer catches
//! them at the source line, before a run ever starts.
//!
//! The analyzer lexes the workspace's own Rust sources with a real
//! lexer ([`lexer`] — nested block comments, raw strings, char
//! literals; no regex hacks) and enforces repo-specific rules
//! ([`rules::RULES`]) under a per-crate purity policy ([`policy`]).
//! Suppressions are spelled
//! `// cgct-lint: allow(<rule>) <justification>` and the justification
//! is mandatory; an unjustified or unused allow is itself an error.
//! Output (human or JSON) is canonically ordered, so lint output is
//! itself byte-stable. A [`baseline`] file may grandfather findings,
//! with a ratchet: the baseline may only shrink. [`selftest`] injects
//! seeded violations into fixture sources and asserts every rule fires
//! with the exact expected span.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod selftest;

use rules::Finding;
use std::path::{Path, PathBuf};

/// The directories (relative to the workspace root) the analyzer walks.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Collects all `.rs` files under the scan roots, as sorted
/// `(repo-relative path, absolute path)` pairs. Hidden directories and
/// build/cache output are skipped.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix: {e}"))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Analyzes the whole workspace under `root`. Findings come back in
/// canonical `(path, line, col, rule)` order; `files_scanned` makes the
/// "clean" summary honest.
pub fn analyze_tree(root: &Path) -> Result<(Vec<Finding>, usize), String> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    let scanned = files.len();
    for (rel, abs) in files {
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        findings.extend(rules::analyze_source(&rel, &src));
    }
    findings.sort();
    Ok((findings, scanned))
}

/// Renders findings in the requested format. Both formats are
/// byte-stable for a given finding set.
pub fn render(findings: &[Finding], scanned: usize, format: OutputFormat) -> String {
    match format {
        OutputFormat::Human => {
            let mut out = String::new();
            for f in findings {
                out.push_str(&f.human());
                out.push('\n');
            }
            out.push_str(&format!(
                "cgct-lint: {} finding(s) in {} file(s) scanned\n",
                findings.len(),
                scanned
            ));
            out
        }
        OutputFormat::Json => {
            use cgct_sim::json::Json;
            let arr = Json::Array(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("path", Json::str(&f.path)),
                            ("line", Json::u64(f.line as u64)),
                            ("col", Json::u64(f.col as u64)),
                            ("rule", Json::str(&f.rule)),
                            ("message", Json::str(&f.message)),
                        ])
                    })
                    .collect(),
            );
            let obj = Json::obj([
                ("files_scanned", Json::u64(scanned as u64)),
                ("findings", arr),
            ]);
            format!("{}\n", obj.dump_pretty())
        }
    }
}

/// Output format selector for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `path:line:col: rule: message` lines plus a summary.
    Human,
    /// Canonical JSON (`{files_scanned, findings: [...]}`).
    Json,
}
