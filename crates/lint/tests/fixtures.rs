//! Fixture tests: exact diagnostic spans on hand-written sources, and
//! the suppression contract (an unjustified or unused allow is itself
//! an error).

use cgct_lint::rules::analyze_source;

/// Collects `(line, col, rule)` triples for compact exact-span asserts.
fn spans(rel: &str, src: &str) -> Vec<(u32, u32, String)> {
    analyze_source(rel, src)
        .into_iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect()
}

#[test]
fn hashmap_in_pure_crate_exact_span() {
    let src = "\
//! Docs.
use std::collections::HashMap;

/// Docs.
pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}
";
    assert_eq!(
        spans("crates/cache/src/fixture.rs", src),
        vec![
            (2, 23, "D002".to_string()),
            (5, 19, "D002".to_string()),
            (6, 5, "D002".to_string()),
        ]
    );
}

#[test]
fn instant_in_pure_crate_exact_span() {
    let src = "\
//! Docs.
use std::time::Instant;
";
    assert_eq!(
        spans("crates/core/src/fixture.rs", src),
        vec![(2, 16, "D001".to_string())]
    );
}

#[test]
fn env_var_exact_span_and_seam_exemption() {
    let src = "\
//! Docs.
pub fn knob() -> Option<String> {
    std::env::var(\"CGCT_FIXTURE\").ok()
}
";
    assert_eq!(
        spans("crates/system/src/fixture.rs", src),
        vec![(3, 10, "D004".to_string())]
    );
    // The same source inside the config seam is exempt.
    assert_eq!(spans("crates/system/src/config.rs", src), vec![]);
}

#[test]
fn violations_inside_strings_and_comments_do_not_fire() {
    let src = "\
//! Mentions HashMap and Instant and env::var in docs.
/* block comment: HashMap::new(), std::time::Instant */
pub const DOC: &str = \"use std::collections::HashMap and .unwrap()\";
pub const RAW: &str = r#\"Instant::now() \"inner\" env::var\"#;
pub const CH: char = 'H';
";
    assert_eq!(spans("crates/cache/src/fixture.rs", src), vec![]);
}

#[test]
fn cfg_test_items_are_exempt() {
    let src = "\
//! Docs.
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn t() {
        let _ = std::env::var(\"X\");
        let _: HashMap<u8, u8> = HashMap::new();
        let _ = Instant::now();
    }
}
";
    assert_eq!(spans("crates/cache/src/fixture.rs", src), vec![]);
}

#[test]
fn host_facing_files_are_exempt_from_purity_rules() {
    let src = "\
//! Docs.
use std::time::Instant;
use std::collections::HashMap;

pub fn main_ish() {
    let _ = std::env::var(\"CGCT_JOBS\");
    let _: HashMap<u8, u8> = HashMap::new();
    let _ = Instant::now();
}
";
    assert_eq!(spans("crates/bench/src/bin/fixture.rs", src), vec![]);
    assert_eq!(spans("crates/system/examples/fixture.rs", src), vec![]);
}

#[test]
fn justified_allow_suppresses_and_is_not_an_error() {
    let src = "\
//! Docs.
// cgct-lint: allow(D002) fixture needs the std map for a reason
use std::collections::HashMap;

/// Docs.
pub type M = std::collections::HashMap<u8, u8>; // cgct-lint: allow(D002) trailing form, also justified
";
    assert_eq!(spans("crates/cache/src/fixture.rs", src), vec![]);
}

#[test]
fn unjustified_allow_is_an_error_but_still_suppresses() {
    let src = "\
//! Docs.
// cgct-lint: allow(D002)
use std::collections::HashMap;
";
    // The D002 is suppressed, but the bare allow itself is L000.
    assert_eq!(
        spans("crates/cache/src/fixture.rs", src),
        vec![(2, 1, "L000".to_string())]
    );
}

#[test]
fn unused_allow_is_an_error() {
    let src = "\
//! Docs.
// cgct-lint: allow(D001) nothing on the next line uses a wall clock
pub fn fine() {}
";
    assert_eq!(
        spans("crates/cache/src/fixture.rs", src),
        vec![(2, 1, "L002".to_string())]
    );
}

#[test]
fn unknown_rule_in_allow_is_an_error() {
    let src = "\
//! Docs.
// cgct-lint: allow(D999) no such rule
pub fn fine() {}
";
    assert_eq!(
        spans("crates/cache/src/fixture.rs", src),
        vec![(2, 1, "L001".to_string())]
    );
}

#[test]
fn missing_crate_headers_fire_at_one_one() {
    let src = "//! Crate docs but no lint headers.\npub fn f() {}\n";
    let got = spans("crates/cache/src/lib.rs", src);
    assert_eq!(
        got,
        vec![(1, 1, "D007".to_string()), (1, 1, "D007".to_string())]
    );
    // Non-root files don't need the headers.
    assert_eq!(spans("crates/cache/src/array_fixture.rs", src), vec![]);
}

#[test]
fn unwrap_on_coherence_path_exact_span() {
    let src = "\
//! Docs.
pub fn f(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
";
    assert_eq!(
        spans("crates/cache/src/fixture.rs", src),
        vec![(3, 16, "D006".to_string())]
    );
    // The same code outside the coherence path set is fine.
    assert_eq!(spans("crates/sim/src/fixture.rs", src), vec![]);
}
