//! Lexer property tests: totality and span sanity on seeded random
//! input, plus comment/string/char torture fixtures with exact token
//! expectations.

use cgct_lint::lexer::{lex, TokKind};
use cgct_sim::Xoshiro256pp;

/// Seeded random "Rust-ish" source: fragments that exercise every
/// tricky lexer state, concatenated in random order.
fn random_source(rng: &mut Xoshiro256pp, fragments: usize) -> String {
    const FRAGS: &[&str] = &[
        "fn f() {}",
        "// line comment HashMap\n",
        "/// doc comment Instant\n",
        "/* block */",
        "/* outer /* nested */ still outer */",
        "/* unterminated",
        "\"string with // not a comment\"",
        "\"unterminated",
        "r\"raw\"",
        "r#\"raw with \"quotes\" inside\"#",
        "r##\"nested \"# hash\"##",
        "b\"bytes\"",
        "br#\"raw bytes\"#",
        "'c'",
        "'\\''",
        "'\\n'",
        "b'x'",
        "'lifetime",
        "&'a str",
        "'_",
        "r#type",
        "1_000u64",
        "0xFFu8",
        "2.5f64",
        "1..10",
        "x.max(1)",
        "let s: &str = \"\\\"escaped\\\"\";",
        "ident_0123",
        "::",
        "->",
        "=>",
        "#![forbid(unsafe_code)]",
        "#[cfg(test)]",
        "\n",
        " ",
        "\t",
    ];
    let mut out = String::new();
    for _ in 0..fragments {
        let idx = (rng.next_u64() % FRAGS.len() as u64) as usize;
        out.push_str(FRAGS[idx]);
        out.push(' ');
    }
    out
}

#[test]
fn lexer_is_total_with_sane_spans_on_random_input() {
    // Lexing any fragment soup must not panic, and every token must
    // have an in-bounds, non-empty, strictly increasing span on a
    // char boundary (so Token::text never panics either).
    let mut rng = Xoshiro256pp::seed_from_u64(cgct_sim::check::root_seed());
    for _ in 0..200 {
        let n = (rng.next_u64() % 40) as usize + 1;
        let src = random_source(&mut rng, n);
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            assert!(t.start < t.end, "empty span in {src:?}");
            assert!(t.end <= src.len(), "span past EOF in {src:?}");
            assert!(t.start >= prev_end, "overlapping tokens in {src:?}");
            assert!(
                src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
                "span splits a char in {src:?}"
            );
            assert!(t.line >= 1 && t.col >= 1);
            let _ = t.text(&src);
            prev_end = t.end;
        }
    }
}

#[test]
fn lexer_is_deterministic() {
    let mut rng = Xoshiro256pp::seed_from_u64(cgct_sim::check::root_seed() ^ 0xA5A5);
    let src = random_source(&mut rng, 64);
    let a = lex(&src);
    let b = lex(&src);
    assert_eq!(a, b);
}

/// Code identifiers extracted the way the rule engine sees them
/// (comments and strings excluded).
fn code_idents(src: &str) -> Vec<&str> {
    lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .collect()
}

#[test]
fn nested_block_comments_hide_identifiers() {
    let src = "a /* b /* c */ d */ e /* f";
    assert_eq!(code_idents(src), vec!["a", "e"]);
}

#[test]
fn raw_strings_hide_identifiers_and_respect_hashes() {
    // The "# inside the r##...## body must not close the string.
    let src = r####"before r##"HashMap "# still_inside"## after"####;
    assert_eq!(code_idents(src), vec!["before", "after"]);
}

#[test]
fn char_literals_vs_lifetimes() {
    let src = "match x { 'a' => y, _ => z } fn f<'a>(v: &'a str) {} let c = '\\'';";
    let kinds: Vec<TokKind> = lex(src)
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Char | TokKind::Lifetime))
        .map(|t| t.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            TokKind::Char,     // 'a'
            TokKind::Lifetime, // <'a>
            TokKind::Lifetime, // &'a
            TokKind::Char,     // '\''
        ]
    );
}

#[test]
fn string_escapes_do_not_end_the_string_early() {
    let src = r#"let s = "a\"b // not a comment"; next"#;
    assert_eq!(code_idents(src), vec!["let", "s", "next"]);
}

#[test]
fn float_literals_do_not_eat_method_calls_or_ranges() {
    // `1.max(2)` is Num(1) . Ident(max); `1..3` is Num . . Num;
    // `2.5` is a single Num.
    assert_eq!(code_idents("1.max(2)"), vec!["max"]);
    let nums = |s: &str| {
        lex(s)
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text(s).to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(nums("1..3"), vec!["1", "3"]);
    assert_eq!(nums("2.5f64 + 0x1F"), vec!["2.5f64", "0x1F"]);
}

#[test]
fn shebang_only_counts_on_line_one() {
    let src = "#!/usr/bin/env run\nfn f() {}";
    let tokens = lex(src);
    assert_eq!(tokens[0].kind, TokKind::Shebang);
    assert!(tokens[1..].iter().all(|t| t.kind != TokKind::Shebang));
}

#[test]
fn raw_identifiers_are_not_plain_idents() {
    let src = "r#type r#match plain";
    let tokens = lex(src);
    let raw: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokKind::RawIdent)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(raw, vec!["r#type", "r#match"]);
    assert_eq!(code_idents(src), vec!["plain"]);
}

#[test]
fn columns_are_character_not_byte_based() {
    // The multi-byte arrow in the comment must not skew the column of
    // the following token's line.
    let src = "// → multi-byte\nlet x = 1;";
    let let_tok = lex(src)
        .into_iter()
        .find(|t| t.kind == TokKind::Ident)
        .expect("has an ident");
    assert_eq!((let_tok.line, let_tok.col), (2, 1));
}
