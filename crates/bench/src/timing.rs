//! A minimal wall-clock benchmark harness (replaces Criterion so the
//! workspace needs no external crates).
//!
//! Each bench target is a plain binary (`harness = false`): build a
//! [`Harness`], register closures with [`Harness::bench`], and call
//! [`Harness::finish`]. Timing is adaptive — every benchmark is run in
//! doubling batches until it has consumed a fixed time budget, then the
//! per-iteration mean of the best batch is reported. Pass a substring on
//! the command line to run a subset; `cargo bench`'s `--bench` flag is
//! accepted and ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark driver handed to the closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration of the fastest measured batch.
    best_ns_per_iter: f64,
    iters_measured: u64,
}

impl Bencher {
    /// Times `f`, called in doubling batches until the budget is spent.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: one call to fault in caches/allocations.
        black_box(f());
        let mut batch = 1u64;
        let start = Instant::now();
        let mut best = f64::INFINITY;
        let mut total_iters = 0u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            total_iters += batch;
            let per_iter = dt.as_nanos() as f64 / batch as f64;
            if per_iter < best {
                best = per_iter;
            }
            if start.elapsed() >= self.budget {
                break;
            }
            if dt < self.budget / 10 {
                batch = batch.saturating_mul(2);
            }
        }
        self.best_ns_per_iter = best;
        self.iters_measured = total_iters;
    }
}

/// Collects and prints benchmark results.
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    ran: usize,
}

impl Harness {
    /// Builds a harness from the command line: the first non-flag
    /// argument is a name filter; all flags (e.g. cargo's `--bench`) are
    /// ignored.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget_ms = std::env::var("CGCT_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Harness {
            filter,
            budget: Duration::from_millis(budget_ms),
            ran: 0,
        }
    }

    /// Runs `f` as the benchmark `name` (unless filtered out).
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget: self.budget,
            best_ns_per_iter: 0.0,
            iters_measured: 0,
        };
        f(&mut b);
        self.ran += 1;
        println!(
            "{name:<44} {:>14}/iter ({} iters)",
            format_ns(b.best_ns_per_iter),
            b.iters_measured
        );
    }

    /// Prints the summary footer.
    pub fn finish(self) {
        println!("{} benchmarks run", self.ran);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            best_ns_per_iter: 0.0,
            iters_measured: 0,
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(b.iters_measured > 0);
        assert!(b.best_ns_per_iter.is_finite());
    }

    #[test]
    fn units_format_sensibly() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("us"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2.3e9).ends_with(" s"));
    }
}
