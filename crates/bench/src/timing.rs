//! A minimal wall-clock benchmark harness (replaces Criterion so the
//! workspace needs no external crates), plus the [`TimingLog`] the
//! `experiments` binary writes to `results/timing.json`.
//!
//! Each bench target is a plain binary (`harness = false`): build a
//! [`Harness`], register closures with [`Harness::bench`], and call
//! [`Harness::finish`]. Timing is adaptive — every benchmark is run in
//! doubling batches until it has consumed a fixed time budget, then the
//! per-iteration mean of the best batch is reported. Pass a substring on
//! the command line to run a subset; `cargo bench`'s `--bench` flag is
//! accepted and ignored.

use cgct_sim::{Json, ToJson};
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-item wall-clock record of an experiments run, written to
/// `<json-dir>/timing.json` so run-over-run speedup (serial vs
/// `CGCT_JOBS=N`) is measurable from artifacts alone.
///
/// Unlike the figure outputs, timing is *not* expected to be
/// byte-identical across runs — it is explicitly excluded from the
/// determinism guarantee.
#[derive(Debug, Clone)]
pub struct TimingLog {
    /// Worker threads the run used (1 for `--serial`).
    jobs: usize,
    /// `(label, seconds)` per completed work item or command phase.
    rows: Vec<(String, f64)>,
}

impl TimingLog {
    /// An empty log for a run on `jobs` workers.
    pub fn new(jobs: usize) -> TimingLog {
        TimingLog {
            jobs,
            rows: Vec::new(),
        }
    }

    /// Appends one `(label, seconds)` row.
    pub fn record(&mut self, label: impl Into<String>, seconds: f64) {
        self.rows.push((label.into(), seconds));
    }

    /// Appends many rows (e.g. a suite's per-item timings).
    pub fn extend(&mut self, rows: impl IntoIterator<Item = (String, f64)>) {
        self.rows.extend(rows);
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of all recorded item times — the serial-equivalent cost of
    /// the work, to compare against actual wall-clock.
    pub fn total_seconds(&self) -> f64 {
        self.rows.iter().map(|(_, s)| s).sum()
    }

    /// The recorded rows, in insertion order.
    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    /// Writes the log to `<dir>/timing.json`, returning the path.
    pub fn write(&self, dir: &str) -> std::io::Result<String> {
        let path = format!("{dir}/timing.json");
        std::fs::write(&path, self.to_json().dump_pretty())?;
        Ok(path)
    }
}

impl ToJson for TimingLog {
    fn to_json(&self) -> Json {
        let items = Json::Array(
            self.rows
                .iter()
                .map(|(label, secs)| {
                    Json::obj([("label", Json::str(label)), ("seconds", Json::f64(*secs))])
                })
                .collect(),
        );
        Json::obj([
            ("jobs", Json::u64(self.jobs as u64)),
            ("items", Json::u64(self.rows.len() as u64)),
            ("total_item_seconds", Json::f64(self.total_seconds())),
            ("timings", items),
        ])
    }
}

/// Per-benchmark driver handed to the closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration of the fastest measured batch.
    best_ns_per_iter: f64,
    iters_measured: u64,
}

impl Bencher {
    /// Times `f`, called in doubling batches until the budget is spent.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: one call to fault in caches/allocations.
        black_box(f());
        let mut batch = 1u64;
        let start = Instant::now();
        let mut best = f64::INFINITY;
        let mut total_iters = 0u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            total_iters += batch;
            let per_iter = dt.as_nanos() as f64 / batch as f64;
            if per_iter < best {
                best = per_iter;
            }
            if start.elapsed() >= self.budget {
                break;
            }
            if dt < self.budget / 10 {
                batch = batch.saturating_mul(2);
            }
        }
        self.best_ns_per_iter = best;
        self.iters_measured = total_iters;
    }
}

/// Collects and prints benchmark results.
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    ran: usize,
}

impl Harness {
    /// Builds a harness from the command line: the first non-flag
    /// argument is a name filter; all flags (e.g. cargo's `--bench`) are
    /// ignored.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget_ms = std::env::var("CGCT_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Harness {
            filter,
            budget: Duration::from_millis(budget_ms),
            ran: 0,
        }
    }

    /// Runs `f` as the benchmark `name` (unless filtered out).
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget: self.budget,
            best_ns_per_iter: 0.0,
            iters_measured: 0,
        };
        f(&mut b);
        self.ran += 1;
        println!(
            "{name:<44} {:>14}/iter ({} iters)",
            format_ns(b.best_ns_per_iter),
            b.iters_measured
        );
    }

    /// Prints the summary footer.
    pub fn finish(self) {
        println!("{} benchmarks run", self.ran);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            best_ns_per_iter: 0.0,
            iters_measured: 0,
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(b.iters_measured > 0);
        assert!(b.best_ns_per_iter.is_finite());
    }

    #[test]
    fn timing_log_round_trips_through_json() {
        let mut log = TimingLog::new(4);
        assert!(log.is_empty());
        log.record("suite:barnes/baseline#s1", 1.25);
        log.extend([("phase:ablations".to_string(), 2.75)]);
        assert_eq!(log.len(), 2);
        assert!((log.total_seconds() - 4.0).abs() < 1e-12);
        let v = Json::parse(&log.to_json().dump()).unwrap();
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("items").and_then(Json::as_u64), Some(2));
        let rows = v.get("timings").and_then(Json::as_array).unwrap();
        assert_eq!(
            rows[0].get("label").and_then(Json::as_str),
            Some("suite:barnes/baseline#s1")
        );
        assert_eq!(rows[1].get("seconds").and_then(Json::as_f64), Some(2.75));
    }

    #[test]
    fn timing_log_writes_to_dir() {
        let dir = std::env::temp_dir().join(format!("cgct-timing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut log = TimingLog::new(1);
        log.record("x", 0.5);
        let path = log.write(dir.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"jobs\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn units_format_sensibly() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("us"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2.3e9).ends_with(" s"));
    }
}
