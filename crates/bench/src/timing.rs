//! A minimal wall-clock benchmark harness (replaces Criterion so the
//! workspace needs no external crates), plus the [`TimingLog`] the
//! `experiments` binary writes to `results/timing.json`.
//!
//! Each bench target is a plain binary (`harness = false`): build a
//! [`Harness`], register closures with [`Harness::bench`], and call
//! [`Harness::finish`]. Timing is adaptive — every benchmark is run in
//! doubling batches until it has consumed a fixed time budget, then the
//! per-iteration mean of the best batch is reported. Pass a substring on
//! the command line to run a subset; `cargo bench`'s `--bench` flag is
//! accepted and ignored.

use cgct_sim::{Json, ToJson};
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// One timed entry in a [`TimingLog`]: a work item or command phase,
/// plus — for entries that are actual simulations — the simulated
/// cycles the item covered, so throughput (simulated cycles per
/// wall-clock second) is derivable from artifacts alone.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// `prefix:bench/mode#seed`-style identifier, canonical item order.
    pub label: String,
    /// Wall-clock seconds the item took on its worker.
    pub seconds: f64,
    /// Simulated cycles of the measured phase (`None` for rows that are
    /// not simulations: command phases, analytic tables, cache models).
    pub sim_cycles: Option<u64>,
    /// Memory completion events the item delivered (`None` for
    /// non-simulation rows) — with `seconds`, the raw material for the
    /// `memory_events_per_sec` throughput figure.
    pub mem_events: Option<u64>,
    /// Whether the item was restored from the content-addressed result
    /// cache instead of simulated (`None` for non-simulation rows;
    /// `Some(false)` covers both a cache miss and a disabled cache —
    /// either way the cell was actually simulated).
    pub cache_hit: Option<bool>,
}

impl TimingRow {
    /// Simulated cycles per wall-clock second, or `None` for rows with
    /// no cycle count (or an unmeasurably short wall time).
    pub fn cycles_per_sec(&self) -> Option<f64> {
        match self.sim_cycles {
            Some(c) if self.seconds > 0.0 => Some(c as f64 / self.seconds),
            _ => None,
        }
    }
}

/// Per-item wall-clock record of an experiments run, written to
/// `<json-dir>/timing.json` so run-over-run speedup (serial vs
/// `CGCT_JOBS=N`, cycle-skipping vs `--no-skip`) is measurable from
/// artifacts alone.
///
/// Unlike the figure outputs, timing is *not* expected to be
/// byte-identical across runs — it is explicitly excluded from the
/// determinism guarantee.
#[derive(Debug, Clone)]
pub struct TimingLog {
    /// Worker threads the run used (1 for `--serial`).
    jobs: usize,
    /// One row per completed work item or command phase.
    rows: Vec<TimingRow>,
}

impl TimingLog {
    /// An empty log for a run on `jobs` workers.
    pub fn new(jobs: usize) -> TimingLog {
        TimingLog {
            jobs,
            rows: Vec::new(),
        }
    }

    /// Appends one `(label, seconds)` row with no cycle count (command
    /// phases and other non-simulation work).
    pub fn record(&mut self, label: impl Into<String>, seconds: f64) {
        self.rows.push(TimingRow {
            label: label.into(),
            seconds,
            sim_cycles: None,
            mem_events: None,
            cache_hit: None,
        });
    }

    /// Appends one simulation row: wall seconds plus the simulated
    /// cycles the item covered, the memory completion events it
    /// delivered, and whether the cell was restored from the result
    /// cache rather than simulated.
    pub fn record_run(
        &mut self,
        label: impl Into<String>,
        seconds: f64,
        sim_cycles: u64,
        mem_events: u64,
        cache_hit: bool,
    ) {
        self.rows.push(TimingRow {
            label: label.into(),
            seconds,
            sim_cycles: Some(sim_cycles),
            mem_events: Some(mem_events),
            cache_hit: Some(cache_hit),
        });
    }

    /// Appends many cycle-free rows (e.g. phase timings).
    pub fn extend(&mut self, rows: impl IntoIterator<Item = (String, f64)>) {
        for (label, seconds) in rows {
            self.record(label, seconds);
        }
    }

    /// Appends many simulation rows (e.g. a suite's per-item timings).
    pub fn extend_runs(&mut self, rows: impl IntoIterator<Item = (String, f64, u64, u64, bool)>) {
        for (label, seconds, cycles, events, hit) in rows {
            self.record_run(label, seconds, cycles, events, hit);
        }
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of all recorded item times — the serial-equivalent cost of
    /// the work, to compare against actual wall-clock.
    pub fn total_seconds(&self) -> f64 {
        self.rows.iter().map(|r| r.seconds).sum()
    }

    /// Sum of simulated cycles over rows that carry one.
    pub fn total_sim_cycles(&self) -> u64 {
        self.rows.iter().filter_map(|r| r.sim_cycles).sum()
    }

    /// Sum of memory completion events over rows that carry one.
    pub fn total_mem_events(&self) -> u64 {
        self.rows.iter().filter_map(|r| r.mem_events).sum()
    }

    /// The recorded rows, in insertion order.
    pub fn rows(&self) -> &[TimingRow] {
        &self.rows
    }

    /// Writes the log to `<dir>/timing.json`, returning the path.
    pub fn write(&self, dir: &str) -> std::io::Result<String> {
        let path = format!("{dir}/timing.json");
        std::fs::write(&path, self.to_json().dump_pretty())?;
        Ok(path)
    }
}

impl ToJson for TimingLog {
    fn to_json(&self) -> Json {
        let items = Json::Array(
            self.rows
                .iter()
                .map(|row| {
                    let mut fields = vec![
                        ("label", Json::str(&row.label)),
                        ("seconds", Json::f64(row.seconds)),
                    ];
                    if let Some(c) = row.sim_cycles {
                        fields.push(("sim_cycles", Json::u64(c)));
                        fields.push((
                            "cycles_per_sec",
                            Json::f64(row.cycles_per_sec().unwrap_or(0.0)),
                        ));
                    }
                    if let Some(e) = row.mem_events {
                        fields.push(("mem_events", Json::u64(e)));
                    }
                    if let Some(h) = row.cache_hit {
                        fields.push(("cache_hit", Json::Bool(h)));
                    }
                    Json::obj(fields)
                })
                .collect(),
        );
        Json::obj([
            ("jobs", Json::u64(self.jobs as u64)),
            ("items", Json::u64(self.rows.len() as u64)),
            ("total_item_seconds", Json::f64(self.total_seconds())),
            ("total_sim_cycles", Json::u64(self.total_sim_cycles())),
            ("total_mem_events", Json::u64(self.total_mem_events())),
            ("timings", items),
        ])
    }
}

/// Per-benchmark driver handed to the closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    budget: Duration,
    /// Mean nanoseconds per iteration of the fastest measured batch.
    best_ns_per_iter: f64,
    iters_measured: u64,
}

impl Bencher {
    /// Times `f`, called in doubling batches until the budget is spent.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: one call to fault in caches/allocations.
        black_box(f());
        let mut batch = 1u64;
        let start = Instant::now();
        let mut best = f64::INFINITY;
        let mut total_iters = 0u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            total_iters += batch;
            let per_iter = dt.as_nanos() as f64 / batch as f64;
            if per_iter < best {
                best = per_iter;
            }
            if start.elapsed() >= self.budget {
                break;
            }
            if dt < self.budget / 10 {
                batch = batch.saturating_mul(2);
            }
        }
        self.best_ns_per_iter = best;
        self.iters_measured = total_iters;
    }
}

/// Collects and prints benchmark results.
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    ran: usize,
}

impl Harness {
    /// Builds a harness from the command line: the first non-flag
    /// argument is a name filter; all flags (e.g. cargo's `--bench`) are
    /// ignored.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget_ms = std::env::var("CGCT_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Harness {
            filter,
            budget: Duration::from_millis(budget_ms),
            ran: 0,
        }
    }

    /// Runs `f` as the benchmark `name` (unless filtered out).
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget: self.budget,
            best_ns_per_iter: 0.0,
            iters_measured: 0,
        };
        f(&mut b);
        self.ran += 1;
        println!(
            "{name:<44} {:>14}/iter ({} iters)",
            format_ns(b.best_ns_per_iter),
            b.iters_measured
        );
    }

    /// Prints the summary footer.
    pub fn finish(self) {
        println!("{} benchmarks run", self.ran);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut b = Bencher {
            budget: Duration::from_millis(5),
            best_ns_per_iter: 0.0,
            iters_measured: 0,
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(b.iters_measured > 0);
        assert!(b.best_ns_per_iter.is_finite());
    }

    #[test]
    fn timing_log_round_trips_through_json() {
        let mut log = TimingLog::new(4);
        assert!(log.is_empty());
        log.record("suite:barnes/baseline#s1", 1.25);
        log.extend([("phase:ablations".to_string(), 2.75)]);
        assert_eq!(log.len(), 2);
        assert!((log.total_seconds() - 4.0).abs() < 1e-12);
        let v = Json::parse(&log.to_json().dump()).unwrap();
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("items").and_then(Json::as_u64), Some(2));
        let rows = v.get("timings").and_then(Json::as_array).unwrap();
        assert_eq!(
            rows[0].get("label").and_then(Json::as_str),
            Some("suite:barnes/baseline#s1")
        );
        assert_eq!(rows[1].get("seconds").and_then(Json::as_f64), Some(2.75));
        // Cycle-free rows carry no throughput fields.
        assert!(rows[0].get("sim_cycles").is_none());
        assert!(rows[0].get("cycles_per_sec").is_none());
    }

    #[test]
    fn simulation_rows_carry_cycles_and_throughput() {
        let mut log = TimingLog::new(1);
        log.record_run("suite:ocean/cgct-512B#s1", 0.5, 1_000_000, 900, false);
        log.extend_runs([(
            "suite:ocean/cgct-512B#s2".to_string(),
            0.25,
            500_000u64,
            450u64,
            true,
        )]);
        log.record("phase:total", 0.75);
        assert_eq!(log.total_sim_cycles(), 1_500_000);
        assert_eq!(log.total_mem_events(), 1_350);
        assert_eq!(log.rows()[0].cycles_per_sec(), Some(2_000_000.0));
        assert_eq!(log.rows()[2].cycles_per_sec(), None);
        let v = Json::parse(&log.to_json().dump()).unwrap();
        assert_eq!(
            v.get("total_sim_cycles").and_then(Json::as_u64),
            Some(1_500_000)
        );
        assert_eq!(
            v.get("total_mem_events").and_then(Json::as_u64),
            Some(1_350)
        );
        let rows = v.get("timings").and_then(Json::as_array).unwrap();
        assert_eq!(
            rows[0].get("sim_cycles").and_then(Json::as_u64),
            Some(1_000_000)
        );
        assert_eq!(rows[0].get("mem_events").and_then(Json::as_u64), Some(900));
        assert_eq!(
            rows[0].get("cache_hit").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(rows[1].get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(
            rows[1].get("cycles_per_sec").and_then(Json::as_f64),
            Some(2_000_000.0)
        );
        assert!(rows[2].get("sim_cycles").is_none());
        assert!(rows[2].get("mem_events").is_none());
        assert!(rows[2].get("cache_hit").is_none());
        // A zero wall-time reading cannot produce an infinite rate.
        let mut zero = TimingLog::new(1);
        zero.record_run("x", 0.0, 10, 1, false);
        assert_eq!(zero.rows()[0].cycles_per_sec(), None);
        let z = Json::parse(&zero.to_json().dump()).unwrap();
        let zr = z.get("timings").and_then(Json::as_array).unwrap();
        assert_eq!(
            zr[0].get("cycles_per_sec").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn timing_log_writes_to_dir() {
        let dir = std::env::temp_dir().join(format!("cgct-timing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut log = TimingLog::new(1);
        log.record("x", 0.5);
        let path = log.write(dir.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"jobs\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn units_format_sensibly() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("us"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2.3e9).ends_with(" s"));
    }
}
