//! Benchmark harness for the CGCT reproduction.
//!
//! * `src/bin/experiments.rs` — regenerates every table and figure of the
//!   paper (run `cargo run --release -p cgct-bench --bin experiments -- all`).
//! * `benches/` — plain-`Instant` benches (see [`timing`]): one
//!   scaled-down bench per table/figure plus microbenchmarks of the core
//!   structures.
//!
//! This library exposes the shared experiment scales so the binary and
//! the benches agree on what "quick" and "full" mean.

use cgct_system::RunPlan;

pub mod timing;

/// The scaled-down plan used by Criterion benches and `--quick` runs:
/// small but large enough that every figure's qualitative shape (who
/// wins, roughly by how much) is already visible.
pub fn quick_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 60_000,
        instructions_per_core: 20_000,
        max_cycles: 40_000_000,
        runs: 2,
        base_seed: 1,
    }
}

/// The full evaluation plan used for `EXPERIMENTS.md` numbers.
pub fn full_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 250_000,
        instructions_per_core: 150_000,
        max_cycles: 200_000_000,
        runs: 4,
        base_seed: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_ordered() {
        assert!(quick_plan().instructions_per_core < full_plan().instructions_per_core);
        assert!(quick_plan().runs <= full_plan().runs);
    }
}
