//! Benchmark harness for the CGCT reproduction.
//!
//! * `src/bin/experiments.rs` — regenerates every table and figure of the
//!   paper (run `cargo run --release -p cgct-bench --bin experiments -- all`).
//! * `benches/` — plain-`Instant` benches (see [`timing`]): one
//!   scaled-down bench per table/figure plus microbenchmarks of the core
//!   structures.
//!
//! This library exposes the shared experiment scales so the binary and
//! the benches agree on what "quick" and "full" mean.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]
// ^ clippy mirror of D001/D004 (clippy.toml): the bench harness is
// host-facing by policy (wall-clock timing is its whole job), exactly
// as cgct-lint exempts crates/bench.

use cgct_system::RunPlan;

pub mod timing;

/// The scaled-down plan used by Criterion benches and `--quick` runs:
/// small but large enough that every figure's qualitative shape (who
/// wins, roughly by how much) is already visible.
pub fn quick_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 60_000,
        instructions_per_core: 20_000,
        max_cycles: 40_000_000,
        runs: 2,
        base_seed: 1,
    }
}

/// The full evaluation plan used for `EXPERIMENTS.md` numbers.
pub fn full_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 250_000,
        instructions_per_core: 150_000,
        max_cycles: 200_000_000,
        runs: 4,
        base_seed: 1,
    }
}

/// Ensures the `--json` output directory exists and is writable
/// *before* any experiment runs, so a bad path fails in milliseconds
/// with an actionable message instead of panicking after minutes of
/// simulation.
///
/// Creates the directory (and parents) if missing, then probes it with
/// a throwaway write.
pub fn prepare_output_dir(dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create --json output directory '{dir}': {e}"))?;
    let probe = std::path::Path::new(dir).join(".cgct-write-probe");
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("--json output directory '{dir}' is not writable: {e}"))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_ordered() {
        assert!(quick_plan().instructions_per_core < full_plan().instructions_per_core);
        assert!(quick_plan().runs <= full_plan().runs);
    }

    #[test]
    fn prepare_output_dir_creates_missing_directories() {
        let dir = std::env::temp_dir().join(format!("cgct-json-{}/nested", std::process::id()));
        let dir_s = dir.to_str().unwrap();
        assert!(prepare_output_dir(dir_s).is_ok());
        assert!(dir.is_dir());
        // No probe file left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn prepare_output_dir_reports_unusable_paths() {
        // A path *under a regular file* can never be a directory: the
        // clear-error case for a mistyped --json argument.
        let file = std::env::temp_dir().join(format!("cgct-blocker-{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let bad = format!("{}/sub", file.to_str().unwrap());
        let err = prepare_output_dir(&bad).unwrap_err();
        assert!(
            err.contains("cannot create") && err.contains(&bad),
            "unexpected message: {err}"
        );
        std::fs::remove_file(&file).unwrap();
    }
}
