//! Protocol fuzzer: hammers the memory system with random request
//! interleavings across random configurations, checking every coherence,
//! inclusion, and exclusivity invariant as it goes. A development tool —
//! run it for as long as you like:
//!
//! ```text
//! cargo run --release -p cgct-bench --bin fuzz_protocol -- [iterations] [seed]
//! ```
//!
//! Each iteration builds a fresh system from a random configuration
//! (coherence mode, region size, feature flags, topology) and applies a
//! few thousand random operations with aggressive region/set collisions.
//! Any invariant violation aborts with the failing seed, which reproduces
//! deterministically.

use cgct_cache::Addr;
use cgct_interconnect::{CoreId, Topology};
use cgct_sim::Cycle;
use cgct_sim::Xoshiro256pp;
use cgct_system::{CoherenceMode, MemorySystem, SystemConfig};

fn random_config(rng: &mut Xoshiro256pp) -> SystemConfig {
    let region_bytes = *[256u64, 512, 1024].get(rng.gen_range(0usize..3)).unwrap();
    let mode = match rng.gen_range(0u32..5) {
        0 => CoherenceMode::Baseline,
        1 => CoherenceMode::Cgct {
            region_bytes,
            sets: *[2usize, 64, 8192].get(rng.gen_range(0usize..3)).unwrap(),
        },
        2 => CoherenceMode::Scaled {
            region_bytes,
            sets: 64,
        },
        3 => CoherenceMode::RegionScout { region_bytes },
        _ => CoherenceMode::Directory,
    };
    let mut cfg = SystemConfig::paper_default(mode);
    cfg.perturbation = 0;
    cfg.stream_prefetch = rng.gen_bool(0.5);
    cfg.exclusive_prefetch = rng.gen_bool(0.5);
    cfg.self_invalidation = rng.gen_bool(0.8);
    cfg.favor_empty_replacement = rng.gen_bool(0.8);
    cfg.direct_writebacks = rng.gen_bool(0.8);
    cfg.owner_prediction = rng.gen_bool(0.3);
    cfg.region_prefetch_filter = rng.gen_bool(0.3);
    cfg.dram_speculation_filter = rng.gen_bool(0.3);
    cfg.shared_read_bypass = rng.gen_bool(0.3);
    cfg.jetty_filter = rng.gen_bool(0.3);
    if rng.gen_bool(0.2) {
        cfg.topology = Topology::two_boards();
    }
    // Shrink the L2 sometimes to force eviction pressure.
    if rng.gen_bool(0.3) {
        cfg.hierarchy.l2.capacity_bytes = 64 * 1024;
    }
    cfg
}

fn main() {
    let mut args = std::env::args().skip(1);
    let iterations: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let base_seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    let mut total_ops = 0u64;
    for iter in 0..iterations {
        let seed = base_seed.wrapping_add(iter);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let cfg = random_config(&mut rng);
        let label = cfg.mode.label();
        let cores = cfg.topology.total_cores();
        let mut mem = MemorySystem::new(cfg, seed);
        let ops = rng.gen_range(500u64..4_000);
        // A small address pool with deliberate region/set collisions.
        let pool_lines: u64 = rng.gen_range(16..512);
        let mut now = Cycle(0);
        for op in 0..ops {
            let core = CoreId(rng.gen_range(0..cores));
            // Mix nearby lines with far-apart set-conflicting ones.
            let line = if rng.gen_bool(0.8) {
                rng.gen_range(0..pool_lines)
            } else {
                rng.gen_range(0..pool_lines) + 8192 * rng.gen_range(1u64..4)
            };
            let addr = Addr(line * 64 + rng.gen_range(0u64..64) / 8 * 8);
            match rng.gen_range(0u32..10) {
                0..=3 => {
                    mem.load(core, now, addr, rng.gen_bool(0.2));
                }
                4..=6 => {
                    mem.store(core, now, addr);
                }
                7..=8 => {
                    mem.ifetch(core, now, addr);
                }
                _ => {
                    mem.dcbz(core, now, addr);
                }
            }
            now += rng.gen_range(1u64..30);
            if op % 512 == 511 {
                if let Err(e) = mem.check_invariants() {
                    eprintln!("INVARIANT VIOLATION (seed {seed}, {label}, op {op}): {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Err(e) = mem.check_invariants() {
            eprintln!("INVARIANT VIOLATION (seed {seed}, {label}, final): {e}");
            std::process::exit(1);
        }
        total_ops += ops;
        if iter % 25 == 24 {
            println!(
                "{}/{iterations} configurations fuzzed ({total_ops} ops)",
                iter + 1
            );
        }
    }
    println!("ok: {iterations} random configurations, {total_ops} operations, all invariants held");
}
