//! Validates the artifacts written by `experiments --trace <dir>`.
//!
//! Usage: `trace_check <trace_dir>`
//!
//! Checks, hard-failing on the first violation:
//!
//! 1. `chrome_trace.json` parses with [`cgct_sim::json`] and every
//!    track's (`pid`, `tid`) timestamps are nondecreasing — the order
//!    Chrome's `about://tracing` importer expects.
//! 2. `trace_summary.json` parses and survives a `parse -> dump_pretty`
//!    round trip byte-for-byte (the summary is integer-exact by
//!    construction, so any drift is a serializer bug).
//! 3. Figure 6 ordering: within every run and request category that
//!    exercised both paths, the mean latency of direct (memory-sourced,
//!    snoop-free) requests is below the mean of snooped
//!    broadcast-memory requests. At least one such comparison must
//!    exist, otherwise the check is vacuous and fails.
//! 4. Directory-bypass ordering: in directory-mode runs, requests whose
//!    region claim skipped the home's in-memory lookup
//!    (`directory-bypassed`) must show a lower mean latency than
//!    requests that paid the full lookup (`directory-memory`). Also
//!    required to be non-vacuous.

use cgct_sim::Json;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: FAIL: {msg}");
    std::process::exit(1);
}

fn read(dir: &str, name: &str) -> String {
    let path = format!("{dir}/{name}");
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    }
}

fn parse(name: &str, text: &str) -> Json {
    match Json::parse(text) {
        Ok(v) => v,
        Err(e) => fail(&format!("{name} does not parse as JSON: {e:?}")),
    }
}

/// Chrome trace: per-(pid, tid) timestamps must be nondecreasing.
fn check_chrome(dir: &str) {
    let text = read(dir, "chrome_trace.json");
    let value = parse("chrome_trace.json", &text);
    let Some(events) = value.get("traceEvents").and_then(Json::as_array) else {
        fail("chrome_trace.json has no traceEvents array");
    };
    let mut last: Vec<((u64, u64), u64)> = Vec::new();
    let mut timed = 0u64;
    for ev in events {
        let Some(ts) = ev.get("ts").and_then(Json::as_u64) else {
            continue; // metadata events carry no timestamp
        };
        timed += 1;
        let (Some(pid), Some(tid)) = (
            ev.get("pid").and_then(Json::as_u64),
            ev.get("tid").and_then(Json::as_u64),
        ) else {
            fail("timed chrome event without pid/tid");
        };
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                if *prev > ts {
                    fail(&format!(
                        "track ({pid}, {tid}) goes backwards: {prev} -> {ts}"
                    ));
                }
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }
    if timed == 0 {
        fail("chrome_trace.json contains no timed events");
    }
    println!(
        "trace_check: chrome_trace.json ok ({timed} spans on {} tracks)",
        last.len()
    );
}

/// Summary: byte-exact round trip plus the Figure 6 latency ordering.
fn check_summary(dir: &str) {
    let text = read(dir, "trace_summary.json");
    let value = parse("trace_summary.json", &text);
    if value.dump_pretty() != text {
        fail("trace_summary.json does not round-trip byte-exactly");
    }
    if value.get("schema").and_then(Json::as_str) != Some("cgct-trace-summary-v1") {
        fail("trace_summary.json schema mismatch");
    }
    let Some(runs) = value.get("runs").and_then(Json::as_array) else {
        fail("trace_summary.json has no runs array");
    };
    if runs.is_empty() {
        fail("trace_summary.json lists no runs");
    }
    // Direct requests skip snoop-response serialization, so whenever a
    // run's category saw both memory-sourced paths the direct mean must
    // be lower (paper Figure 6). Tiny cells are noise; require a few
    // spans on each side.
    const MIN_COUNT: u64 = 5;
    let mut compared = 0u64;
    for run in runs {
        let label = run.get("label").and_then(Json::as_str).unwrap_or("?");
        let Some(paths) = run.get("paths").and_then(Json::as_array) else {
            fail(&format!("{label}: no paths array"));
        };
        let cell = |category: &str, path: &str| -> Option<(u64, u64)> {
            paths.iter().find_map(|p| {
                if p.get("category").and_then(Json::as_str) == Some(category)
                    && p.get("path").and_then(Json::as_str) == Some(path)
                {
                    Some((
                        p.get("count").and_then(Json::as_u64)?,
                        p.get("mean_milli").and_then(Json::as_u64)?,
                    ))
                } else {
                    None
                }
            })
        };
        for category in ["data", "ifetch"] {
            let (Some(direct), Some(bcast)) =
                (cell(category, "direct"), cell(category, "broadcast-memory"))
            else {
                continue;
            };
            if direct.0 < MIN_COUNT || bcast.0 < MIN_COUNT {
                continue;
            }
            if direct.1 >= bcast.1 {
                fail(&format!(
                    "{label}/{category}: direct mean {}m >= broadcast-memory mean {}m \
                     (Figure 6 ordering violated)",
                    direct.1, bcast.1
                ));
            }
            compared += 1;
        }
    }
    if compared == 0 {
        fail("no run had both direct and broadcast-memory cells to compare");
    }
    // The same argument at the home directory: a bypassed request skips
    // the serialized in-memory directory lookup, so its mean must beat
    // the full-lookup path whenever a run exercised both.
    let mut dir_compared = 0u64;
    for run in runs {
        let label = run.get("label").and_then(Json::as_str).unwrap_or("?");
        let Some(paths) = run.get("paths").and_then(Json::as_array) else {
            fail(&format!("{label}: no paths array"));
        };
        let cell = |category: &str, path: &str| -> Option<(u64, u64)> {
            paths.iter().find_map(|p| {
                if p.get("category").and_then(Json::as_str) == Some(category)
                    && p.get("path").and_then(Json::as_str) == Some(path)
                {
                    Some((
                        p.get("count").and_then(Json::as_u64)?,
                        p.get("mean_milli").and_then(Json::as_u64)?,
                    ))
                } else {
                    None
                }
            })
        };
        for category in ["data", "ifetch"] {
            let (Some(bypassed), Some(lookup)) = (
                cell(category, "directory-bypassed"),
                cell(category, "directory-memory"),
            ) else {
                continue;
            };
            if bypassed.0 < MIN_COUNT || lookup.0 < MIN_COUNT {
                continue;
            }
            if bypassed.1 >= lookup.1 {
                fail(&format!(
                    "{label}/{category}: directory-bypassed mean {}m >= \
                     directory-memory mean {}m (lookup bypass saved nothing)",
                    bypassed.1, lookup.1
                ));
            }
            dir_compared += 1;
        }
    }
    if dir_compared == 0 {
        fail("no run had both directory-bypassed and directory-memory cells to compare");
    }
    println!(
        "trace_check: trace_summary.json ok ({} runs, {compared} Figure-6 + \
         {dir_compared} directory-bypass comparisons)",
        runs.len()
    );
}

fn main() {
    let dir = match std::env::args().nth(1) {
        Some(d) => d,
        None => fail("usage: trace_check <trace_dir>"),
    };
    check_chrome(&dir);
    check_summary(&dir);
    println!("trace_check: OK");
}
