//! Regenerates every table and figure of the CGCT paper.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]
// ^ clippy mirror of D001/D004 (clippy.toml): host-facing binary —
// wall-clock timing.json and CLI env plumbing live here by policy,
// exactly as cgct-lint exempts src/bin/ paths.
//!
//! ```text
//! experiments <command> [--quick] [--serial] [--intra-serial] [--no-skip] [--sanitize] [--json <dir>]
//!
//! commands:
//!   table1 table2 table3 table4    analytic tables
//!   fig2 fig6 fig7 fig8 fig9 fig10 the paper's figures
//!   rca-stats                      §3.2/§5.2 statistics (quarter scale)
//!   ablations                      design choices + §3.1/§6 extensions
//!   scalability                    16-core two-board study
//!   energy                         §6 energy estimate (incl. Jetty)
//!   region-sweep                   64B-4KB region sizes
//!   directory                      snoop vs CGCT vs full-map directory
//!   sectoring                      sectored-cache miss ratios (§2)
//!   diag                           calibration diagnostics
//!   all                            everything, in paper order
//!   run <benchmark>                one cell, checkpointable/resumable
//!   cache gc                       prune stale result-cache entries
//! ```
//!
//! `--quick` uses the scaled-down plan (CI-friendly); the default plan is
//! the full evaluation scale used for `EXPERIMENTS.md`.
//!
//! Work fans out across the deterministic thread pool
//! (`cgct_sim::pool`): worker count comes from `CGCT_JOBS` or the
//! machine's available parallelism, and `--serial` forces a one-worker
//! in-order run. Output is byte-identical whatever the worker count —
//! only `timing.json` (per-item wall clock, written next to the other
//! `--json` artifacts) varies run over run.
//!
//! Independently, `CGCT_INTRA_JOBS=<n>` parallelizes *within* each run
//! using the conservative epoch engine (`cgct_system`'s `epoch` module),
//! and `--intra-serial` runs that engine on one worker — the reference a
//! `CGCT_INTRA_JOBS=<n>` run must match byte for byte. The two knobs
//! multiply; prefer `CGCT_JOBS=1` when turning intra-run parallelism on.
//!
//! Every simulated cell goes through the content-addressed result cache
//! (`cgct_system::resultcache`) rooted at `CGCT_CACHE_DIR` (default
//! `.cgct-cache`): a warm re-run restores every cell from disk and
//! produces byte-identical artifacts without simulating. `--no-cache`
//! or `CGCT_CACHE=0` disables it; tracing, sanitizing, and `--no-skip`
//! runs bypass it automatically (they exist to exercise the simulator).

use cgct::StorageModel;
use cgct_bench::timing::TimingLog;
use cgct_bench::{full_plan, prepare_output_dir, quick_plan};
use cgct_interconnect::LatencyModel;
use cgct_sim::pool;
use cgct_system::experiments::{
    fig10, fig2, fig7, half_size_mode, rca_stats, speedups, standard_modes, summary_reductions,
    Suite,
};
use cgct_system::report::{
    markdown_table, progress_line, render_fig10, render_fig2, render_fig6, render_fig7,
    render_rca_stats, render_speedups, render_table1, render_table2,
};
use cgct_system::{CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::{table4, BenchmarkSpec};
use std::time::Instant;

struct Args {
    command: String,
    /// Positional operand after the command (`run <benchmark>`,
    /// `cache <gc>`).
    operand: Option<String>,
    quick: bool,
    serial: bool,
    intra_serial: bool,
    no_skip: bool,
    sanitize: bool,
    no_cache: bool,
    mode: Option<String>,
    seed: Option<u64>,
    checkpoint: Option<String>,
    checkpoint_every: Option<u64>,
    resume: Option<String>,
    stop_after: Option<u64>,
    json_dir: Option<String>,
    trace_dir: Option<String>,
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("error: {flag} needs a number");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut command = "all".to_string();
    let mut operand = None;
    let mut positionals = 0usize;
    let mut quick = false;
    let mut serial = false;
    let mut intra_serial = false;
    let mut no_skip = false;
    let mut sanitize = false;
    let mut no_cache = false;
    let mut mode = None;
    let mut seed = None;
    let mut checkpoint = None;
    let mut checkpoint_every = None;
    let mut resume = None;
    let mut stop_after = None;
    let mut json_dir = None;
    let mut trace_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: experiments <command> [--quick] [--serial] [--json <dir>]\n\n\
                     commands:\n\
                       table1 table2 table3 table4    analytic tables\n\
                       fig2 fig6 fig7 fig8 fig9 fig10 the paper's figures\n\
                       rca-stats                      §3.2/§5.2 statistics\n\
                       ablations                      design-choice ablations\n\
                       scalability                    16-core two-board study\n\
                       energy                         §6 energy estimate\n\
                       region-sweep                   64B-4KB region sizes\n\
                       directory                      snoop vs CGCT vs directory\n\
                       sectoring                      sectored-cache miss ratios\n\
                       diag                           calibration diagnostics\n\
                       all                            everything, paper order\n\
                       run <benchmark>                one cell, checkpointable\n\
                       cache gc                       prune stale cache entries\n\n\
                     --quick    scaled-down plan (CI-friendly)\n\
                     --serial   one worker, in-order (same output, no threads)\n\
                     --intra-serial\n\
                                run the intra-run epoch engine on one\n\
                                worker — the byte-identical reference for\n\
                                CGCT_INTRA_JOBS=<n> runs (see DESIGN.md,\n\
                                'Concurrency & determinism model')\n\
                     --no-skip  cycle-stepped reference loop (same output,\n\
                                no wakeup-driven time skipping; slow)\n\
                     --sanitize runtime coherence sanitizer: re-check the\n\
                                global coherence invariants during every\n\
                                run (same output, slower)\n\
                     --json     also dump machine-readable results to <dir>\n\
                     --trace    record per-request lifetime traces and write\n\
                                chrome_trace.json / trace_summary.json /\n\
                                trace_report.md to <dir> (implies CGCT_TRACE=1;\n\
                                all other outputs stay byte-identical)\n\
                     --no-cache bypass the content-addressed result cache\n\
                                (also CGCT_CACHE=0; tracing/sanitizing/no-skip\n\
                                runs bypass it automatically)\n\n\
                     run-command flags (see EXPERIMENTS.md):\n\
                     --mode <label>        baseline | cgct-<N>B | scaled-<N>B |\n\
                                           regionscout-<N>B | directory\n\
                     --seed <n>            root seed (default: the plan's)\n\
                     --checkpoint <file>   write a snapshot at each pause\n\
                     --checkpoint-every <cycles>\n\
                                           pause/snapshot cadence\n\
                     --resume <file>       continue from a snapshot\n\
                     --stop-after <k>      exit after k segments (interrupt)\n\n\
                     CGCT_JOBS=<n> overrides the worker count (default: all cores)\n\
                     CGCT_INTRA_JOBS=<n> parallelizes *within* each run with the\n\
                                conservative epoch engine (default: off; the\n\
                                legacy single-threaded engine)\n\
                     CGCT_CACHE_DIR=<dir> result-cache root (default .cgct-cache)"
                );
                std::process::exit(0);
            }
            "--quick" => quick = true,
            "--serial" => serial = true,
            "--intra-serial" => intra_serial = true,
            "--no-skip" => no_skip = true,
            "--sanitize" => sanitize = true,
            "--no-cache" => no_cache = true,
            "--mode" => mode = it.next(),
            "--seed" => seed = Some(parse_u64("--seed", it.next())),
            "--checkpoint" => checkpoint = it.next(),
            "--checkpoint-every" => {
                checkpoint_every = Some(parse_u64("--checkpoint-every", it.next()));
            }
            "--resume" => resume = it.next(),
            "--stop-after" => stop_after = Some(parse_u64("--stop-after", it.next())),
            "--json" => json_dir = it.next(),
            "--trace" => trace_dir = it.next(),
            c if !c.starts_with('-') => {
                match positionals {
                    0 => command = c.to_string(),
                    1 => operand = Some(c.to_string()),
                    _ => {
                        eprintln!("unexpected argument {c}");
                        std::process::exit(2);
                    }
                }
                positionals += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        command,
        operand,
        quick,
        serial,
        intra_serial,
        no_skip,
        sanitize,
        no_cache,
        mode,
        seed,
        checkpoint,
        checkpoint_every,
        resume,
        stop_after,
        json_dir,
        trace_dir,
    }
}

fn dump_json(dir: &Option<String>, name: &str, value: &dyn cgct_sim::ToJson) {
    if let Some(dir) = dir {
        let path = format!("{dir}/{name}.json");
        if let Err(e) = std::fs::write(&path, value.to_json().dump_pretty()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

/// Live progress line on stderr: `done/total | elapsed | rate | ETA`.
struct Progress {
    t0: Instant,
}

impl Progress {
    fn start() -> Progress {
        Progress { t0: Instant::now() }
    }

    /// Renders one `\r`-overwritten update (called from worker threads).
    fn tick(&self, done: usize, total: usize) {
        eprint!(
            "\r{}    ",
            progress_line(done, total, self.t0.elapsed().as_secs_f64())
        );
    }

    /// Terminates the progress line.
    fn finish(&self) {
        eprintln!();
    }
}

/// Pool-maps `f` over `items`, recording per-item wall time under
/// `prefix:<label>` and showing a live progress line. `stats` extracts
/// the simulated cycles an item covered, the memory events it
/// delivered, and whether the cell was restored from the result cache
/// (for the timing log's throughput and `cache_hit` columns); return
/// `None` for non-simulation work.
fn run_pooled<T, R, F>(
    jobs: usize,
    prefix: &str,
    labels: Vec<String>,
    items: Vec<T>,
    f: F,
    stats: impl Fn(&R) -> Option<(u64, u64, bool)>,
    timing: &mut TimingLog,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let seconds = std::sync::Mutex::new(vec![0.0f64; items.len()]);
    let progress = Progress::start();
    let out = pool::run_observed(jobs, items, f, |report| {
        seconds.lock().expect("timing poisoned")[report.index] = report.seconds;
        progress.tick(report.done, report.total);
    });
    progress.finish();
    let per_item = seconds.into_inner().unwrap();
    for ((label, secs), result) in labels.into_iter().zip(per_item).zip(&out) {
        match stats(result) {
            Some((c, e, hit)) => timing.record_run(format!("{prefix}:{label}"), secs, c, e, hit),
            None => timing.record(format!("{prefix}:{label}"), secs),
        }
    }
    out
}

/// Per-section result-cache report on stderr: cells restored from the
/// cache vs actually simulated since the last report. Silent when the
/// cache is off or the section simulated nothing.
fn cache_report(section: &str) {
    if let Some(cache) = cgct_system::resultcache::global() {
        let (hits, misses) = (cache.hits(), cache.misses());
        if hits + misses > 0 {
            eprintln!("[cache] {section}: {hits} cells restored, {misses} simulated");
        }
        cache.reset_counts();
    }
}

/// Benchmark × mode work list in canonical (benchmark-major) order,
/// with matching `bench/mode` labels.
fn cross_product(
    benchmarks: &[BenchmarkSpec],
    modes: &[CoherenceMode],
) -> (Vec<String>, Vec<(BenchmarkSpec, CoherenceMode)>) {
    let mut labels = Vec::new();
    let mut items = Vec::new();
    for spec in benchmarks {
        for &mode in modes {
            labels.push(format!("{}/{}", spec.name, mode.label()));
            items.push((spec.clone(), mode));
        }
    }
    (labels, items)
}

fn print_table3() {
    // Table 3 is the configuration itself: print the defaults in use.
    let cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    });
    let rows = vec![
        vec![
            "cores per chip".into(),
            cfg.topology.cores_per_chip.to_string(),
        ],
        vec![
            "chips per data switch".into(),
            cfg.topology.chips_per_switch.to_string(),
        ],
        vec![
            "total processors".into(),
            cfg.topology.total_cores().to_string(),
        ],
        vec!["L1 I-cache".into(), "32KB 4-way, 64B lines, 1 cycle".into()],
        vec![
            "L1 D-cache".into(),
            "64KB 4-way, 64B lines, 1 cycle (writeback)".into(),
        ],
        vec![
            "L2 cache".into(),
            "1MB 2-way, 64B lines, 12 cycles (writeback)".into(),
        ],
        vec![
            "pipeline".into(),
            format!(
                "{}-wide, ROB {}, window {}, LSQ {}",
                cfg.core.issue_width, cfg.core.rob, cfg.core.issue_window, cfg.core.lsq
            ),
        ],
        vec![
            "branch prediction".into(),
            "16K gshare, 4Kx4 BTB, 8-entry RAS".into(),
        ],
        vec!["snoop latency".into(), "16 system cycles (106ns)".into()],
        vec!["DRAM latency".into(), "16 system cycles (106ns)".into()],
        vec![
            "DRAM overlapped with snoop".into(),
            "7 system cycles (47ns)".into(),
        ],
        vec![
            "RCA".into(),
            "8192 sets, 2-way (16K entries); regions 256B/512B/1KB".into(),
        ],
        vec![
            "direct request latency".into(),
            "1 cpu cycle / 2 / 4 / 6 system cycles by distance".into(),
        ],
        vec![
            "prefetching".into(),
            "Power4-style 8 streams x 5-line runahead + exclusive prefetch".into(),
        ],
    ];
    println!("## Table 3 — simulation parameters\n");
    println!("{}", markdown_table(&["parameter", "value"], &rows));
}

fn print_table4() {
    println!("## Table 4 — benchmarks\n");
    let rows: Vec<Vec<String>> = table4()
        .into_iter()
        .map(|b| {
            vec![
                b.category.to_string(),
                b.name.to_string(),
                b.comments.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["category", "benchmark", "comments"], &rows)
    );
}

fn diag(plan: RunPlan) {
    use cgct_system::run_once;
    println!("benchmark | mode | ipc | l2 MPKI | reqs/kinstr (d/w/i/z) | pf/kinstr | bcast/kinstr | demand lat | avoided | runtime");
    for spec in cgct_workloads::all_benchmarks() {
        for mode in [
            CoherenceMode::Baseline,
            CoherenceMode::Cgct {
                region_bytes: 512,
                sets: 8192,
            },
        ] {
            let cfg = SystemConfig::paper_default(mode);
            let r = run_once(&cfg, &spec, 1, &plan);
            let ki = r.committed as f64 / 1000.0;
            println!(
                "{} | {} | {:.3} | {:.1} | {:.1} ({:.1}/{:.1}/{:.1}/{:.1}) | {:.1} | {:.1} | {:.0} | {:.1}% | {}",
                r.benchmark,
                r.mode,
                r.ipc,
                r.metrics.l2_misses as f64 / ki,
                r.metrics.requests.total() as f64 / ki,
                r.metrics.requests.data as f64 / ki,
                r.metrics.requests.writeback as f64 / ki,
                r.metrics.requests.ifetch as f64 / ki,
                r.metrics.requests.dcb as f64 / ki,
                r.metrics.prefetches as f64 / ki,
                r.metrics.broadcasts as f64 / ki,
                r.metrics.demand_latency.mean(),
                r.metrics.avoided_fraction() * 100.0,
                r.runtime_cycles,
            );
            if r.metrics.avoided_fraction() > 0.0 {
                let ki2 = ki;
                println!(
                    "    avoided/kinstr: data {:.1} wb {:.1} ifetch {:.1} dcb {:.1} (direct {:.1} local {:.1})",
                    (r.metrics.direct.data + r.metrics.local.data) as f64 / ki2,
                    (r.metrics.direct.writeback + r.metrics.local.writeback) as f64 / ki2,
                    (r.metrics.direct.ifetch + r.metrics.local.ifetch) as f64 / ki2,
                    (r.metrics.direct.dcb + r.metrics.local.dcb) as f64 / ki2,
                    r.metrics.direct.total() as f64 / ki2,
                    r.metrics.local.total() as f64 / ki2,
                );
            }
        }
    }
}

/// `cache gc`: prune result-cache entries that can never hit again
/// (stale code fingerprint, corrupt, truncated) and report bytes
/// reclaimed. Operates on `CGCT_CACHE_DIR` regardless of whether the
/// cache is enabled for runs.
fn run_cache_command(args: &Args) {
    match args.operand.as_deref() {
        Some("gc") => {
            let dir = cgct_system::config::env_knobs()
                .cache_dir
                .unwrap_or_else(|| ".cgct-cache".to_string());
            let cache = cgct_system::ResultCache::new(dir.clone().into());
            match cache.gc() {
                Ok(r) => println!(
                    "cache gc: {dir}: scanned {} entries, kept {}, removed {}, reclaimed {} bytes",
                    r.scanned, r.kept, r.removed, r.bytes_reclaimed
                ),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!(
                "error: unknown cache subcommand {:?} (try: cache gc)",
                other.unwrap_or("<none>")
            );
            std::process::exit(2);
        }
    }
}

/// Parses a coherence-mode label of the kind `CoherenceMode::label`
/// prints (`baseline`, `cgct-512B`, `scaled-256B`, `regionscout-1024B`,
/// `directory`, `dir-cgct-512B`, `hier-512B`).
fn parse_mode(label: &str) -> CoherenceMode {
    let size = |s: &str| s.strip_suffix('B').and_then(|n| n.parse::<u64>().ok());
    match label {
        "baseline" => return CoherenceMode::Baseline,
        "directory" => return CoherenceMode::Directory,
        _ => {
            if let Some(rb) = label.strip_prefix("cgct-").and_then(size) {
                return CoherenceMode::Cgct {
                    region_bytes: rb,
                    sets: 8192,
                };
            }
            if let Some(rb) = label.strip_prefix("scaled-").and_then(size) {
                return CoherenceMode::Scaled {
                    region_bytes: rb,
                    sets: 8192,
                };
            }
            if let Some(rb) = label.strip_prefix("regionscout-").and_then(size) {
                return CoherenceMode::RegionScout { region_bytes: rb };
            }
            if let Some(rb) = label.strip_prefix("dir-cgct-").and_then(size) {
                return CoherenceMode::DirectoryCgct {
                    region_bytes: rb,
                    sets: 8192,
                };
            }
            if let Some(rb) = label.strip_prefix("hier-").and_then(size) {
                return CoherenceMode::Hierarchical {
                    region_bytes: rb,
                    sets: 8192,
                };
            }
        }
    }
    eprintln!(
        "error: unknown mode '{label}' \
         (baseline | cgct-<N>B | scaled-<N>B | regionscout-<N>B | directory \
         | dir-cgct-<N>B | hier-<N>B)"
    );
    std::process::exit(2);
}

/// Writes `contents` to `path` atomically (temp + rename), so an
/// interrupted process never leaves a truncated checkpoint behind.
fn write_atomic(path: &str, contents: &str) {
    let temp = format!("{path}.tmp-{}", std::process::id());
    let write = std::fs::write(&temp, contents).and_then(|()| std::fs::rename(&temp, path));
    if let Err(e) = write {
        let _ = std::fs::remove_file(&temp);
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// `run <benchmark>`: one checkpointable cell. Prints the RunResult
/// snapshot (one deterministic JSON line) on completion, so a resumed
/// run is byte-comparable to an uninterrupted one. `--checkpoint-every
/// N` pauses every N cycles and (with `--checkpoint FILE`) writes a
/// snapshot; `--stop-after K` exits after K segments (a controlled
/// interruption); `--resume FILE` continues from a snapshot.
fn run_single(plan: RunPlan, args: &Args) {
    use cgct_sim::{Json, Snap};
    use cgct_system::{CheckpointRun, Machine};
    let mode = parse_mode(args.mode.as_deref().unwrap_or("baseline"));
    let cfg = SystemConfig::paper_default(mode);
    let or_die = |r: Result<CheckpointRun, String>| {
        r.unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    };
    let mut run = if let Some(path) = &args.resume {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("{path}: {e:?}")));
        match parsed {
            Ok(v) => {
                // Benchmark comes from the snapshot itself; the operand
                // (if given) and config must agree or restore fails.
                let bench: String = v
                    .get("machine")
                    .and_then(|m| m.get("benchmark"))
                    .and_then(|b| b.as_str())
                    .unwrap_or_default()
                    .to_string();
                let spec = cgct_workloads::by_name(&bench).unwrap_or_else(|| {
                    eprintln!("error: snapshot names unknown benchmark '{bench}'");
                    std::process::exit(1);
                });
                or_die(CheckpointRun::resume(cfg, &spec, &v))
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let bench = args.operand.clone().unwrap_or_else(|| {
            eprintln!("error: run needs a benchmark name (or --resume <file>)");
            std::process::exit(2);
        });
        let spec = cgct_workloads::by_name(&bench).unwrap_or_else(|| {
            eprintln!("error: unknown benchmark '{bench}'");
            std::process::exit(2);
        });
        let seed = args.seed.unwrap_or(plan.base_seed);
        or_die(CheckpointRun::new(
            Machine::new(cfg, &spec, seed),
            plan.warmup_per_core,
            plan.instructions_per_core,
            plan.max_cycles,
        ))
    };
    let segment = args.checkpoint_every.unwrap_or(u64::MAX);
    let mut segments = 0u64;
    loop {
        let done = run.step(segment);
        segments += 1;
        if done {
            break;
        }
        if let Some(path) = &args.checkpoint {
            let snap = run.snapshot().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            write_atomic(path, &snap.dump());
        }
        if args.stop_after.is_some_and(|k| segments >= k) {
            eprintln!(
                "paused after {segments} segment(s) at cycle {} ({})",
                run.machine().now().0,
                match &args.checkpoint {
                    Some(path) => format!("checkpoint in {path}"),
                    None => "no --checkpoint file; state discarded".to_string(),
                }
            );
            return;
        }
    }
    let result = run.finish().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "completed in {segments} segment(s): {} cycles, {} instructions",
        result.runtime_cycles, result.committed
    );
    println!("{}", result.snap().dump());
}

fn main() {
    let args = parse_args();
    if args.serial {
        // Force every pool in the process (including library-internal
        // fan-outs like rca_stats) down to one in-order worker.
        std::env::set_var("CGCT_JOBS", "1");
    }
    if args.intra_serial {
        // Every Machine in the process uses the conservative epoch
        // engine on one worker — the reference whose outputs a
        // CGCT_INTRA_JOBS=<n> run must reproduce byte for byte.
        std::env::set_var("CGCT_INTRA_JOBS", "1");
    }
    if args.no_skip {
        // Every Machine in the process falls back to the cycle-stepped
        // reference loop; outputs must be byte-identical, only slower.
        std::env::set_var("CGCT_NO_SKIP", "1");
    }
    if args.sanitize {
        // Every MemorySystem in the process re-checks the global
        // coherence invariants as it runs (read-only: outputs must be
        // byte-identical, the runs just take longer).
        std::env::set_var("CGCT_SANITIZE", "1");
    }
    if args.trace_dir.is_some() {
        // Every Machine in the process records request-lifetime trace
        // events (pure observation: all non-trace outputs must be
        // byte-identical to an untraced run).
        std::env::set_var("CGCT_TRACE", "1");
    }
    if !args.no_cache && args.command != "diag" {
        // Default-ON content-addressed result cache. install_from_env
        // re-checks CGCT_CACHE / trace / sanitize / no-skip (set above
        // from the flags), so a bypassed run never consults it.
        if cgct_system::resultcache::install_from_env() {
            let dir = cgct_system::resultcache::global().expect("installed").dir();
            eprintln!("result cache: {}", dir.display());
        }
    }
    if args.command == "cache" {
        run_cache_command(&args);
        return;
    }
    let jobs = pool::jobs();
    if let Some(dir) = &args.json_dir {
        if let Err(e) = prepare_output_dir(dir) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if let Some(dir) = &args.trace_dir {
        if let Err(e) = prepare_output_dir(dir) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    let plan: RunPlan = if args.quick {
        quick_plan()
    } else {
        full_plan()
    };
    let mut timing = TimingLog::new(jobs);
    // Request-lifetime trace reports, accumulated in canonical item
    // order (so the trace artifacts are deterministic under any
    // CGCT_JOBS) from the phases that keep their raw RunResults.
    let mut trace_reports: Vec<cgct_trace::TraceReport> = Vec::new();
    let t0 = Instant::now();
    let cmd = args.command.as_str();
    if cmd == "diag" {
        diag(plan);
        return;
    }
    if cmd == "run" {
        run_single(plan, &args);
        return;
    }
    let needs_suite = matches!(
        cmd,
        "all" | "fig2" | "fig7" | "fig8" | "fig9" | "fig10" | "rca-stats"
    );

    if matches!(cmd, "all" | "table1") {
        println!("## Table 1 — region protocol states\n");
        println!("{}", render_table1());
    }
    if matches!(cmd, "all" | "table2") {
        println!("## Table 2 — storage overhead (analytic; matches paper exactly)\n");
        println!("{}", render_table2(&StorageModel::paper_default()));
    }
    if matches!(cmd, "all" | "table3") {
        print_table3();
    }
    if matches!(cmd, "all" | "table4") {
        print_table4();
    }
    if matches!(cmd, "all" | "fig6") {
        println!("## Figure 6 — memory request latency (analytic)\n");
        println!("{}", render_fig6(&LatencyModel::paper_default()));
    }

    if needs_suite {
        eprintln!(
            "running suite: {} instructions/core x {} seeds ({} mode, {} worker{})...",
            plan.instructions_per_core,
            plan.runs,
            if args.quick { "quick" } else { "full" },
            jobs,
            if jobs == 1 { "" } else { "s" }
        );
        let mut modes = standard_modes();
        modes.push(half_size_mode());
        let suite_t0 = Instant::now();
        let progress = Progress::start();
        let suite = Suite::run_configured(
            plan,
            &modes,
            |c| c,
            jobs,
            |report| progress.tick(report.done, report.total),
        );
        progress.finish();
        timing.extend_runs(
            suite
                .timings
                .iter()
                .map(|(label, secs, cycles, events, hit)| {
                    (format!("suite:{label}"), *secs, *cycles, *events, *hit)
                }),
        );
        timing.record("phase:suite", suite_t0.elapsed().as_secs_f64());
        eprintln!("suite done in {:.1}s", t0.elapsed().as_secs_f64());
        cache_report("suite");
        if args.trace_dir.is_some() {
            for bench in suite.benchmarks() {
                for mode in &modes {
                    for run in &suite.get(&bench, &mode.label()).runs {
                        if let Some(t) = &run.trace {
                            let mut t = t.clone();
                            t.label = format!("suite:{}", t.label);
                            trace_reports.push(t);
                        }
                    }
                }
            }
        }

        if matches!(cmd, "all" | "fig2") {
            let rows = fig2(&suite);
            println!("## Figure 2 — unnecessary broadcasts (baseline, oracle)\n");
            println!("{}", render_fig2(&rows));
            dump_json(&args.json_dir, "fig2", &rows);
        }
        if matches!(cmd, "all" | "fig7") {
            let sizes = [256, 512, 1024];
            let rows = fig7(&suite, &sizes);
            println!("## Figure 7 — broadcasts avoided by CGCT\n");
            println!("{}", render_fig7(&rows, &sizes));
            dump_json(&args.json_dir, "fig7", &rows);
        }
        if matches!(cmd, "all" | "fig8") {
            let labels: Vec<String> = [256u64, 512, 1024]
                .iter()
                .map(|&rs| {
                    CoherenceMode::Cgct {
                        region_bytes: rs,
                        sets: 8192,
                    }
                    .label()
                })
                .collect();
            let rows = speedups(&suite, &labels);
            println!("## Figure 8 — run-time reduction by region size\n");
            println!("{}", render_speedups(&rows, &labels));
            for l in &labels {
                let (all, comm) = summary_reductions(&rows, l);
                println!("**{l}**: mean reduction all = {all:.1}%, commercial = {comm:.1}%\n");
            }
            println!("(paper, 512B: 8.8% all, 10.4% commercial, max 21.7% on TPC-W)\n");
            dump_json(&args.json_dir, "fig8", &rows);
        }
        if matches!(cmd, "all" | "fig9") {
            let labels = vec![
                CoherenceMode::Cgct {
                    region_bytes: 512,
                    sets: 8192,
                }
                .label(),
                half_size_mode().label(),
            ];
            let rows = speedups(&suite, &labels);
            println!("## Figure 9 — full vs half-size RCA (512B regions)\n");
            println!("{}", render_speedups(&rows, &labels));
            for l in &labels {
                let (all, comm) = summary_reductions(&rows, l);
                println!("**{l}**: mean reduction all = {all:.1}%, commercial = {comm:.1}%\n");
            }
            println!("(paper: 8.8% -> 7.8% all, 10.4% -> 9.1% commercial)\n");
            dump_json(&args.json_dir, "fig9", &rows);
        }
        if matches!(cmd, "all" | "fig10") {
            let rows = fig10(&suite);
            println!("## Figure 10 — broadcast traffic\n");
            println!("{}", render_fig10(&rows, 100_000));
            dump_json(&args.json_dir, "fig10", &rows);
        }
        if matches!(cmd, "all" | "rca-stats") {
            let rca_t0 = Instant::now();
            let rows = rca_stats(&suite);
            timing.record("phase:rca-stats", rca_t0.elapsed().as_secs_f64());
            cache_report("rca-stats");
            println!("## RCA statistics (§3.2, §5.2)\n");
            println!("{}", render_rca_stats(&rows));
            println!("(paper: 65.1% empty / 17.2% one line / 5.1% two; ~1.2% miss-ratio increase; 2.8-5 lines/region)\n");
            dump_json(&args.json_dir, "rca_stats", &rows);
        }
    }

    let phase = |name: &str, timing: &mut TimingLog, f: &mut dyn FnMut(usize, &mut TimingLog)| {
        let t = Instant::now();
        f(jobs, timing);
        timing.record(format!("phase:{name}"), t.elapsed().as_secs_f64());
        cache_report(name);
    };
    if matches!(cmd, "all" | "ablations") {
        phase("ablations", &mut timing, &mut |jobs, timing| {
            run_ablations(plan, &args, jobs, timing)
        });
    }
    if matches!(cmd, "all" | "scalability") {
        phase("scalability", &mut timing, &mut |jobs, timing| {
            run_scalability(plan, &args, jobs, timing)
        });
    }
    if matches!(cmd, "all" | "energy") {
        phase("energy", &mut timing, &mut |jobs, timing| {
            run_energy(plan, &args, jobs, timing)
        });
    }
    if matches!(cmd, "all" | "region-sweep") {
        phase("region-sweep", &mut timing, &mut |jobs, timing| {
            run_region_sweep(plan, &args, jobs, timing)
        });
    }
    if matches!(cmd, "all" | "directory") {
        let traces = &mut trace_reports;
        phase("directory", &mut timing, &mut |jobs, timing| {
            run_directory_comparison(plan, &args, jobs, timing, traces)
        });
    }
    if matches!(cmd, "all" | "sectoring") {
        phase("sectoring", &mut timing, &mut |jobs, timing| {
            run_sectoring_comparison(plan, &args, jobs, timing)
        });
    }

    if let Some(dir) = &args.trace_dir {
        let write = |name: &str, contents: String| {
            let path = format!("{dir}/{name}");
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        };
        write(
            "chrome_trace.json",
            cgct_trace::report::chrome_trace(&trace_reports).dump(),
        );
        write(
            "trace_summary.json",
            cgct_trace::report::summary(&trace_reports).dump_pretty(),
        );
        write(
            "trace_report.md",
            cgct_trace::report::markdown_report(&trace_reports),
        );
    }
    if let Some(dir) = &args.json_dir {
        timing.record("phase:total", t0.elapsed().as_secs_f64());
        match timing.write(dir) {
            Ok(path) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {dir}/timing.json: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("total {:.1}s", t0.elapsed().as_secs_f64());
}

/// Sectored-cache comparison (related work, §2): sectoring shares one
/// tag per 512 B and pays internal fragmentation in miss ratio; CGCT
/// tracks regions *beyond* the cache and leaves the miss ratio alone.
fn run_sectoring_comparison(plan: RunPlan, args: &Args, jobs: usize, timing: &mut TimingLog) {
    use cgct_cache::{Addr, ConventionalCache, Geometry, SectoredCache};
    use cgct_cpu::UopSource;
    use cgct_workloads::WorkloadThread;
    println!("## Sectored vs conventional cache (related work §2)\n");
    let geom = Geometry::new(64, 512);
    let accesses = (plan.instructions_per_core as usize).max(50_000);
    let benchmarks = cgct_workloads::all_benchmarks();
    let labels: Vec<String> = benchmarks.iter().map(|b| b.name.to_string()).collect();
    let mut rows = run_pooled(
        jobs,
        "sectoring",
        labels,
        benchmarks,
        |_, spec| {
            let mut conventional = ConventionalCache::new(1024 * 1024, 2, geom);
            let mut sectored = SectoredCache::new(1024 * 1024, 2, geom);
            let mut thread = WorkloadThread::new(spec.clone(), 0, 4, plan.base_seed);
            let mut seen = 0usize;
            while seen < accesses {
                if let Some(a) = thread.next_uop().kind.mem_addr() {
                    let line = geom.line_of(Addr(a.0));
                    conventional.access(line);
                    sectored.access(line);
                    seen += 1;
                }
            }
            let delta = if conventional.miss_ratio() > 0.0 {
                (sectored.miss_ratio() - conventional.miss_ratio()) / conventional.miss_ratio()
            } else {
                0.0
            };
            vec![
                spec.name.to_string(),
                format!("{:.2}%", conventional.miss_ratio() * 100.0),
                format!("{:.2}%", sectored.miss_ratio() * 100.0),
                format!("{:+.0}%", delta * 100.0),
                format!("{:.2}", sectored.mean_sector_occupancy()),
            ]
        },
        |_| None,
        timing,
    );
    // A sparse pointer-chase (one line per sector over 2x the cache):
    // the workload class where sectoring's fragmentation bites hardest.
    {
        let mut conventional = ConventionalCache::new(1024 * 1024, 2, geom);
        let mut sectored = SectoredCache::new(1024 * 1024, 2, geom);
        let sectors = 2 * 1024 * 1024 / 512; // 2 MB footprint
        let mut x = 1u64;
        for _ in 0..accesses {
            // LCG walk over sectors; slot varies with the sector id so
            // conventional sets spread uniformly.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sector = (x >> 33) % sectors;
            let slot = (x >> 13) % 8; // independent of the sector bits
            let line = cgct_cache::LineAddr(sector * 8 + slot);
            conventional.access(line);
            sectored.access(line);
        }
        let delta = (sectored.miss_ratio() - conventional.miss_ratio()) / conventional.miss_ratio();
        rows.push(vec![
            "sparse pointer-chase".into(),
            format!("{:.2}%", conventional.miss_ratio() * 100.0),
            format!("{:.2}%", sectored.miss_ratio() * 100.0),
            format!("{:+.0}%", delta * 100.0),
            format!("{:.2}", sectored.mean_sector_occupancy()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "benchmark",
                "conventional miss ratio",
                "sectored miss ratio",
                "relative increase",
                "lines/sector resident",
            ],
            &rows
        )
    );
    println!(
        "(The Table 4 workloads are spatially dense, so sectoring costs them\nlittle; the sparse pointer-chase shows the fragmentation failure mode\nthe paper cites. CGCT's own inclusion cost on the same 1MB cache is\n~0-1% — see the RCA statistics table.)\n"
    );
    dump_json(&args.json_dir, "sectoring", &rows);
}

/// Snooping vs CGCT vs full-map directory (§1.2): the directory gets the
/// same low-latency unshared access as CGCT but pays three hops for
/// cache-to-cache data, which is exactly the trade-off the paper claims
/// CGCT sidesteps.
fn run_directory_comparison(
    plan: RunPlan,
    args: &Args,
    jobs: usize,
    timing: &mut TimingLog,
    traces: &mut Vec<cgct_trace::TraceReport>,
) {
    use cgct_system::run_once_cached;
    println!("## Snooping vs CGCT vs directory (§1.2 comparison)\n");
    let modes = [
        CoherenceMode::Baseline,
        CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        },
        CoherenceMode::Directory,
        CoherenceMode::DirectoryCgct {
            region_bytes: 512,
            sets: 8192,
        },
    ];
    // One work item per (benchmark, mode) cell, benchmark-major; rows
    // fold from canonical-order chunks of three.
    let (labels, items) = cross_product(&cgct_workloads::all_benchmarks(), &modes);
    let results: Vec<_> = run_pooled(
        jobs,
        "directory",
        labels,
        items,
        |_, (spec, mode)| {
            let cfg = SystemConfig::paper_default(mode);
            run_once_cached(&cfg, &spec, plan.base_seed, &plan)
        },
        |(r, hit)| Some((r.runtime_cycles, r.mem_events, *hit)),
        timing,
    )
    .into_iter()
    .map(|(r, _)| r)
    .collect();
    if args.trace_dir.is_some() {
        // Canonical order is guaranteed by run_pooled (item order, not
        // completion order), so the trace summary is deterministic
        // under any CGCT_JOBS.
        for r in &results {
            if let Some(t) = &r.trace {
                let mut t = t.clone();
                t.label = format!("directory:{}", t.label);
                traces.push(t);
            }
        }
    }
    let mut rows = Vec::new();
    for chunk in results.chunks(modes.len()) {
        let base_runtime = chunk[0].runtime_cycles as f64;
        let mut cells = vec![chunk[0].benchmark.clone()];
        cells.push(format!("{:.0}", chunk[0].metrics.demand_latency.mean()));
        for r in &chunk[1..] {
            cells.push(format!(
                "{:.1}%",
                100.0 * (1.0 - r.runtime_cycles as f64 / base_runtime)
            ));
            cells.push(format!("{:.0}", r.metrics.demand_latency.mean()));
        }
        // Region claims let the region-tracking directory skip the home
        // lookup entirely; report how often.
        let dc = &chunk[3];
        let looked = dc.metrics.dir_lookups + dc.metrics.dir_bypasses;
        cells.push(format!(
            "{:.1}%",
            100.0 * dc.metrics.dir_bypasses as f64 / looked.max(1) as f64
        ));
        rows.push(cells);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "benchmark",
                "snoop latency",
                "cgct reduction",
                "cgct latency",
                "directory reduction",
                "directory latency",
                "dir-cgct reduction",
                "dir-cgct latency",
                "lookup bypass",
            ],
            &rows
        )
    );
    dump_json(&args.json_dir, "directory", &rows);
}

/// Region-size sweep beyond the paper's three points (64 B = line-grain
/// tracking, up to 4 KB = page-grain): exposes the trade-off between
/// spatial coverage and false region-sharing that makes mid-size regions
/// the sweet spot.
fn run_region_sweep(plan: RunPlan, args: &Args, jobs: usize, timing: &mut TimingLog) {
    use cgct_system::run_once_cached;
    println!("## Region-size sweep (64B - 4KB, mean across benchmarks)\n");
    let benchmarks = cgct_workloads::all_benchmarks();
    let base_runtime: Vec<f64> = run_pooled(
        jobs,
        "region-sweep-base",
        benchmarks.iter().map(|b| b.name.to_string()).collect(),
        benchmarks.clone(),
        |_, spec| {
            let cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
            let (r, hit) = run_once_cached(&cfg, &spec, plan.base_seed, &plan);
            (r.runtime_cycles, r.mem_events, hit)
        },
        |(rt, ev, hit)| Some((*rt, *ev, *hit)),
        timing,
    )
    .into_iter()
    .map(|(rt, _, _)| rt as f64)
    .collect();
    eprintln!("region-sweep baselines done");
    let sizes = [64u64, 128, 256, 512, 1024, 2048, 4096];
    // Region-major item order; per-region sums fold from canonical
    // chunks, so the (order-sensitive) f64 accumulation matches a
    // serial sweep bit for bit.
    let mut labels = Vec::new();
    let mut items = Vec::new();
    for &region_bytes in &sizes {
        for spec in &benchmarks {
            labels.push(format!("{}B/{}", region_bytes, spec.name));
            items.push((region_bytes, spec.clone()));
        }
    }
    let results = run_pooled(
        jobs,
        "region-sweep",
        labels,
        items,
        |_, (region_bytes, spec)| {
            let cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
                region_bytes,
                sets: 8192,
            });
            let (r, hit) = run_once_cached(&cfg, &spec, plan.base_seed, &plan);
            (
                r.runtime_cycles as f64,
                r.metrics.avoided_fraction(),
                r.mem_events,
                hit,
            )
        },
        |(rt, _, ev, hit)| Some((*rt as u64, *ev, *hit)),
        timing,
    );
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    for (size_idx, chunk) in results.chunks(benchmarks.len()).enumerate() {
        let region_bytes = sizes[size_idx];
        let mut reduction_sum = 0.0;
        let mut avoided_sum = 0.0;
        for ((runtime, avoided, _, _), base) in chunk.iter().zip(&base_runtime) {
            reduction_sum += 100.0 * (1.0 - runtime / base);
            avoided_sum += avoided * 100.0;
        }
        let n = benchmarks.len() as f64;
        rows.push(vec![
            format!("{region_bytes} B"),
            format!("{:.1}%", reduction_sum / n),
            format!("{:.1}%", avoided_sum / n),
        ]);
        chart.push((format!("{region_bytes}B"), reduction_sum / n));
    }
    println!(
        "{}",
        markdown_table(
            &[
                "region size",
                "mean runtime reduction",
                "mean requests avoided"
            ],
            &rows
        )
    );
    println!("```");
    println!("{}", cgct_system::report::ascii_bars(&chart, 40));
    println!("```");
    dump_json(&args.json_dir, "region_sweep", &rows);
}

/// Energy estimate (§6 future work): relative interconnect/memory energy
/// for baseline vs CGCT, including the RCA's own lookup overhead.
fn run_energy(plan: RunPlan, args: &Args, jobs: usize, timing: &mut TimingLog) {
    use cgct_system::energy::{energy_of, EnergyModel};
    use cgct_system::run_once_cached;
    println!("## Energy (§6 extension) — relative units, default weights\n");
    let weights = EnergyModel::default_weights();
    // Three configurations per benchmark: baseline, baseline+Jetty,
    // and CGCT-512B. Benchmark-major item order.
    let variants: Vec<(&str, SystemConfig)> = {
        let base_cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        let cgct_cfg = SystemConfig::paper_default(CoherenceMode::Cgct {
            region_bytes: 512,
            sets: 8192,
        });
        let mut jetty_cfg = SystemConfig::paper_default(CoherenceMode::Baseline);
        jetty_cfg.jetty_filter = true;
        vec![
            ("baseline", base_cfg),
            ("jetty", jetty_cfg),
            ("cgct", cgct_cfg),
        ]
    };
    let mut labels = Vec::new();
    let mut items = Vec::new();
    for spec in cgct_workloads::all_benchmarks() {
        for (tag, cfg) in &variants {
            labels.push(format!("{}/{tag}", spec.name));
            items.push((spec.clone(), cfg.clone()));
        }
    }
    let results: Vec<_> = run_pooled(
        jobs,
        "energy",
        labels,
        items,
        |_, (spec, cfg)| run_once_cached(&cfg, &spec, plan.base_seed, &plan),
        |(r, hit)| Some((r.runtime_cycles, r.mem_events, *hit)),
        timing,
    )
    .into_iter()
    .map(|(r, _)| r)
    .collect();
    let mut rows = Vec::new();
    for chunk in results.chunks(variants.len()) {
        let (base, jetty, cgct) = (&chunk[0], &chunk[1], &chunk[2]);
        let eb = energy_of(&base.metrics, 3, false, &weights);
        let ej = energy_of(&jetty.metrics, 3, false, &weights);
        let ec = energy_of(&cgct.metrics, 3, true, &weights);
        // Totals are exact integer milli-units; floats appear only here,
        // at format time (milli -> units -> kilo-units).
        let base_total = (eb.total_milli() as f64).max(1000.0);
        let saving = 100.0 * (1.0 - ec.total_milli() as f64 / base_total);
        let jetty_saving = 100.0 * (1.0 - ej.total_milli() as f64 / base_total);
        rows.push(vec![
            base.benchmark.clone(),
            format!("{:.0}", eb.total_milli() as f64 / 1_000_000.0),
            format!(
                "{:.0} ({jetty_saving:+.1}%)",
                ej.total_milli() as f64 / 1_000_000.0
            ),
            format!("{:.0}", ec.total_milli() as f64 / 1_000_000.0),
            format!("{:.0}", ec.rca_overhead_milli as f64 / 1_000_000.0),
            format!("{saving:.1}%"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "benchmark",
                "baseline (ku)",
                "+jetty (ku)",
                "cgct-512B (ku)",
                "of which RCA (ku)",
                "cgct saving",
            ],
            &rows
        )
    );
    dump_json(&args.json_dir, "energy", &rows);
}

/// Scalability (§5.3 extended): the paper argues lower broadcast rates
/// improve scalability; here three machine organisations (flat
/// directory, directory+RCA lookup bypass, clustered hierarchy) are
/// swept from 4 to 64 nodes on the same workloads to locate the
/// crossover where snooping stops scaling.
fn run_scalability(plan: RunPlan, args: &Args, jobs: usize, timing: &mut TimingLog) {
    use cgct_interconnect::Topology;
    use cgct_system::run_once_cached;
    println!("## Scalability — 4 to 64 nodes, directory and hierarchical machines\n");
    // Broadcast snooping stops at the bus; past it the contenders are a
    // flat full-map directory, the same directory with region-tracking
    // lookup bypass (dir-cgct), and cluster-snooping with an
    // inter-cluster region directory (hier). Sweep all three across the
    // node counts the paper's §6 points toward.
    let modes = [
        CoherenceMode::Directory,
        CoherenceMode::DirectoryCgct {
            region_bytes: 512,
            sets: 8192,
        },
        CoherenceMode::Hierarchical {
            region_bytes: 512,
            sets: 8192,
        },
    ];
    let core_counts = [4usize, 8, 16, 32, 64];
    let benchmarks: Vec<BenchmarkSpec> = ["specjbb2000", "tpc-w", "barnes"]
        .iter()
        .map(|b| cgct_workloads::by_name(b).expect("benchmark"))
        .collect();
    let mut labels = Vec::new();
    let mut items = Vec::new();
    for &cores in &core_counts {
        for spec in &benchmarks {
            for &mode in &modes {
                labels.push(format!("{cores}c/{}/{}", spec.name, mode.label()));
                items.push((cores, spec.clone(), mode));
            }
        }
    }
    let results: Vec<_> = run_pooled(
        jobs,
        "scalability",
        labels,
        items,
        |_, (cores, spec, mode)| {
            let mut cfg = SystemConfig::paper_default(mode);
            cfg.topology = Topology::for_cores(cores);
            run_once_cached(&cfg, &spec, plan.base_seed, &plan)
        },
        |(r, hit)| Some((r.runtime_cycles, r.mem_events, *hit)),
        timing,
    )
    .into_iter()
    .map(|(r, _)| r)
    .collect();
    let mut rows = Vec::new();
    for (ci, &cores) in core_counts.iter().enumerate() {
        for (bi, spec) in benchmarks.iter().enumerate() {
            let at = |mi: usize| &results[(ci * benchmarks.len() + bi) * modes.len() + mi];
            let (dir, dc, hier) = (at(0), at(1), at(2));
            let looked = dc.metrics.dir_bypasses + dc.metrics.dir_lookups;
            let (cl, cc) = (
                hier.metrics.cluster_local_requests,
                hier.metrics.cross_cluster_requests,
            );
            rows.push(vec![
                cores.to_string(),
                spec.name.to_string(),
                dir.runtime_cycles.to_string(),
                dc.runtime_cycles.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * (1.0 - dc.runtime_cycles as f64 / dir.runtime_cycles as f64)
                ),
                format!(
                    "{:.1}%",
                    100.0 * dc.metrics.dir_bypasses as f64 / looked.max(1) as f64
                ),
                dc.metrics.three_hop_transfers.to_string(),
                hier.runtime_cycles.to_string(),
                cl.to_string(),
                cc.to_string(),
                hier.metrics.cluster_snoops_filtered.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "nodes",
                "benchmark",
                "dir cycles",
                "dir-cgct cycles",
                "dir-cgct vs dir",
                "lookup bypass",
                "3-hop xfers",
                "hier cycles",
                "cluster-local",
                "cross-cluster",
                "hops saved",
            ],
            &rows
        )
    );
    println!(
        "(Lookup bypass = home-directory DRAM lookups skipped via region\nclaims; hops saved = cross-cluster snoop deliveries the inter-cluster\nregion directory filtered out.)\n"
    );
    dump_json(&args.json_dir, "scalability", &rows);
}

/// Ablations: the design choices §3 calls out, plus the cheaper variants.
fn run_ablations(plan: RunPlan, args: &Args, jobs: usize, timing: &mut TimingLog) {
    let cgct512 = CoherenceMode::Cgct {
        region_bytes: 512,
        sets: 8192,
    };
    println!("## Ablations (512B regions, mean run-time reduction vs baseline)\n");
    type Adjust = Box<dyn Fn(SystemConfig) -> SystemConfig + Sync>;
    let variants: Vec<(&str, Vec<CoherenceMode>, Adjust)> = vec![
        (
            "full CGCT",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|c| c),
        ),
        (
            "no self-invalidation",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.self_invalidation = false;
                c
            }),
        ),
        (
            "pure-LRU RCA replacement",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.favor_empty_replacement = false;
                c
            }),
        ),
        (
            "broadcast write-backs",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.direct_writebacks = false;
                c
            }),
        ),
        (
            "scaled 3-state protocol",
            vec![
                CoherenceMode::Baseline,
                CoherenceMode::Scaled {
                    region_bytes: 512,
                    sets: 8192,
                },
            ],
            Box::new(|c| c),
        ),
        (
            "RegionScout filter",
            vec![
                CoherenceMode::Baseline,
                CoherenceMode::RegionScout { region_bytes: 512 },
            ],
            Box::new(|c| c),
        ),
        (
            "+ shared-read bypass (§3.1)",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.shared_read_bypass = true;
                c
            }),
        ),
        (
            "+ owner prediction (§6)",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.owner_prediction = true;
                c
            }),
        ),
        (
            "+ region prefetch filter (§6)",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.region_prefetch_filter = true;
                c
            }),
        ),
        (
            "+ DRAM speculation filter (§6)",
            vec![CoherenceMode::Baseline, cgct512],
            Box::new(|mut c: SystemConfig| {
                c.dram_speculation_filter = true;
                c
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, modes, adjust) in &variants {
        let t0 = Instant::now();
        let suite = Suite::run_configured(plan, modes, adjust, jobs, |_| {});
        timing.record(format!("ablation:{name}"), t0.elapsed().as_secs_f64());
        let label = modes[1].label();
        let sp = speedups(&suite, std::slice::from_ref(&label));
        let (all, comm) = summary_reductions(&sp, &label);
        let avoided: f64 = suite
            .benchmarks()
            .iter()
            .map(|b| suite.get(b, &label).avoided_fraction.mean())
            .sum::<f64>()
            / 9.0;
        rows.push(vec![
            name.to_string(),
            format!("{all:.1}%"),
            format!("{comm:.1}%"),
            format!("{:.1}%", avoided * 100.0),
        ]);
        eprintln!("ablation '{name}' done");
    }
    println!(
        "{}",
        markdown_table(
            &[
                "variant",
                "mean reduction (all)",
                "mean reduction (commercial)",
                "requests avoided"
            ],
            &rows
        )
    );
    dump_json(&args.json_dir, "ablations", &rows);
}
