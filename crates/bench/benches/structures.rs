//! Microbenchmarks of the core data structures: the RCA and line-protocol
//! operations that sit on the simulated critical path, plus the generic
//! set-associative array.

use cgct::{FillKind, RcaConfig, RegionCoherenceArray, RegionSnoopResponse};
use cgct_cache::{
    requester_next_state, snoop_line, LineSnoopResponse, MoesiState, RegionAddr, ReqKind,
    SetAssocArray,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_set_assoc_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_assoc_array");
    g.bench_function("insert_lru_hit_stream", |b| {
        let mut a: SetAssocArray<u64> = SetAssocArray::new(8192, 2);
        for k in 0..16384u64 {
            a.insert_lru(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 16384;
            black_box(a.access(k));
        });
    });
    g.bench_function("insert_lru_evicting", |b| {
        let mut a: SetAssocArray<u64> = SetAssocArray::new(8192, 2);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert_lru(k, k));
        });
    });
    g.finish();
}

fn bench_rca(c: &mut Criterion) {
    let mut g = c.benchmark_group("rca");
    g.bench_function("permission_hit", |b| {
        let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
        for r in 0..16384u64 {
            rca.local_fill(
                RegionAddr(r),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            );
        }
        let mut r = 0u64;
        b.iter(|| {
            r = (r + 1) % 16384;
            black_box(rca.permission(RegionAddr(r), ReqKind::Read));
        });
    });
    g.bench_function("local_fill_allocating", |b| {
        let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            black_box(rca.local_fill(
                RegionAddr(r),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            ));
        });
    });
    g.bench_function("external_request", |b| {
        let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
        for r in 0..16384u64 {
            rca.local_fill(
                RegionAddr(r),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            );
            rca.line_cached(RegionAddr(r));
        }
        let mut r = 0u64;
        b.iter(|| {
            r = (r + 1) % 16384;
            black_box(rca.external_request(RegionAddr(r), ReqKind::Read, false));
        });
    });
    g.finish();
}

fn bench_line_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_protocol");
    g.bench_function("snoop_line", |b| {
        let states = [
            MoesiState::Modified,
            MoesiState::Owned,
            MoesiState::Exclusive,
            MoesiState::Shared,
            MoesiState::Invalid,
        ];
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % states.len();
            black_box(snoop_line(states[i], ReqKind::ReadExclusive));
        });
    });
    g.bench_function("requester_next_state", |b| {
        let resp = LineSnoopResponse {
            shared: true,
            dirty: false,
            exclusive: false,
        };
        b.iter(|| black_box(requester_next_state(ReqKind::Read, resp)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_set_assoc_array,
    bench_rca,
    bench_line_protocol
);
criterion_main!(benches);
