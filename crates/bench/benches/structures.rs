//! Microbenchmarks of the core data structures: the RCA and line-protocol
//! operations that sit on the simulated critical path, plus the generic
//! set-associative array.
//!
//! Run with `cargo bench -p cgct-bench --bench structures [filter]`.

use cgct::{FillKind, RcaConfig, RegionCoherenceArray, RegionSnoopResponse};
use cgct_bench::timing::{black_box, Harness};
use cgct_cache::{
    requester_next_state, snoop_line, LineSnoopResponse, MoesiState, RegionAddr, ReqKind,
    SetAssocArray,
};

fn main() {
    let mut h = Harness::from_args();

    h.bench("set_assoc_array/insert_lru_hit_stream", |b| {
        let mut a: SetAssocArray<u64> = SetAssocArray::new(8192, 2);
        for k in 0..16384u64 {
            a.insert_lru(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 16384;
            black_box(a.access(k));
        });
    });

    h.bench("set_assoc_array/insert_lru_evicting", |b| {
        let mut a: SetAssocArray<u64> = SetAssocArray::new(8192, 2);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(a.insert_lru(k, k));
        });
    });

    h.bench("rca/permission_hit", |b| {
        let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
        for r in 0..16384u64 {
            rca.local_fill(
                RegionAddr(r),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            );
        }
        let mut r = 0u64;
        b.iter(|| {
            r = (r + 1) % 16384;
            black_box(rca.permission(RegionAddr(r), ReqKind::Read));
        });
    });

    h.bench("rca/local_fill_allocating", |b| {
        let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
        let mut r = 0u64;
        b.iter(|| {
            r += 1;
            black_box(rca.local_fill(
                RegionAddr(r),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            ));
        });
    });

    h.bench("rca/external_request", |b| {
        let mut rca = RegionCoherenceArray::new(RcaConfig::paper_default(512));
        for r in 0..16384u64 {
            rca.local_fill(
                RegionAddr(r),
                FillKind::Exclusive,
                Some(RegionSnoopResponse::NONE),
                0,
            );
            rca.line_cached(RegionAddr(r));
        }
        let mut r = 0u64;
        b.iter(|| {
            r = (r + 1) % 16384;
            black_box(rca.external_request(RegionAddr(r), ReqKind::Read, false));
        });
    });

    h.bench("line_protocol/snoop_line", |b| {
        let states = [
            MoesiState::Modified,
            MoesiState::Owned,
            MoesiState::Exclusive,
            MoesiState::Shared,
            MoesiState::Invalid,
        ];
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % states.len();
            black_box(snoop_line(states[i], ReqKind::ReadExclusive));
        });
    });

    h.bench("line_protocol/requester_next_state", |b| {
        let resp = LineSnoopResponse {
            shared: true,
            dirty: false,
            exclusive: false,
        };
        b.iter(|| black_box(requester_next_state(ReqKind::Read, resp)));
    });

    h.finish();
}
