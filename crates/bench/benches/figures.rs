//! One bench per table and figure of the paper.
//!
//! Analytic tables (1, 2, Figure 6) are benchmarked at full fidelity; the
//! simulation-backed figures (2, 7, 8, 9, 10, and the RCA statistics) run
//! a scaled-down single-seed plan per iteration so `cargo bench` stays
//! tractable — the full-scale numbers come from the `experiments` binary
//! (see `EXPERIMENTS.md`).
//!
//! Run with `cargo bench -p cgct-bench --bench figures [filter]`.

use cgct::StorageModel;
use cgct_bench::timing::{black_box, Harness};
use cgct_interconnect::{DistanceClass, LatencyModel};
use cgct_system::{run_once, CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::by_name;

/// A per-iteration plan small enough for a timing loop.
fn bench_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 4_000,
        instructions_per_core: 4_000,
        max_cycles: 4_000_000,
        runs: 1,
        base_seed: 1,
    }
}

fn run(mode: CoherenceMode, bench: &str, seed: u64) -> f64 {
    let cfg = SystemConfig::paper_default(mode);
    let spec = by_name(bench).expect("benchmark");
    let plan = bench_plan();
    let r = run_once(&cfg, &spec, seed, &plan);
    r.runtime_cycles as f64
}

fn main() {
    let mut h = Harness::from_args();

    h.bench("table1_region_state_rules", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in cgct::RegionState::ALL {
                for req in [
                    cgct_cache::ReqKind::Read,
                    cgct_cache::ReqKind::ReadShared,
                    cgct_cache::ReqKind::ReadExclusive,
                    cgct_cache::ReqKind::Upgrade,
                    cgct_cache::ReqKind::Writeback,
                    cgct_cache::ReqKind::Dcbz,
                ] {
                    acc += s.permission(req) as usize;
                }
            }
            black_box(acc)
        })
    });

    h.bench("table2_storage_overhead", |b| {
        let m = StorageModel::paper_default();
        b.iter(|| black_box(m.table2()))
    });

    h.bench("fig6_latency_scenarios", |b| {
        let lat = LatencyModel::paper_default();
        b.iter(|| {
            let mut acc = 0u64;
            for d in DistanceClass::ALL {
                acc += lat.snoop_memory_access(d) + lat.direct_memory_access(d);
            }
            black_box(acc)
        })
    });

    // Figure 2 is measured on a baseline run with the oracle classifier.
    h.bench("fig2_baseline_oracle_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(CoherenceMode::Baseline, "tpc-w", seed))
        })
    });

    for region in [256u64, 512, 1024] {
        h.bench(&format!("fig7_avoidance/cgct_{region}B_specjbb"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run(
                    CoherenceMode::Cgct {
                        region_bytes: region,
                        sets: 8192,
                    },
                    "specjbb2000",
                    seed,
                ))
            })
        });
    }

    // Figure 8's quantity is the runtime ratio between these two runs.
    h.bench("fig8_runtime/baseline_tpcw", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(CoherenceMode::Baseline, "tpc-w", seed))
        })
    });
    h.bench("fig8_runtime/cgct512_tpcw", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(
                CoherenceMode::Cgct {
                    region_bytes: 512,
                    sets: 8192,
                },
                "tpc-w",
                seed,
            ))
        })
    });

    h.bench("fig9_half_size_rca/cgct512_4096sets_ocean", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(
                CoherenceMode::Cgct {
                    region_bytes: 512,
                    sets: 4096,
                },
                "ocean",
                seed,
            ))
        })
    });

    // Figure 10 measures broadcasts per interval; the run itself is the
    // cost being benchmarked here.
    h.bench("fig10_traffic/baseline_barnes", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(CoherenceMode::Baseline, "barnes", seed))
        })
    });

    // Tables 3 and 4 are configuration/benchmarks; this measures the
    // workload generators' throughput across all nine specs.
    h.bench("table4_workload_generation", |b| {
        use cgct_cpu::UopSource;
        use cgct_workloads::{all_benchmarks, WorkloadThread};
        let mut threads: Vec<WorkloadThread> = all_benchmarks()
            .into_iter()
            .map(|s| WorkloadThread::new(s, 0, 4, 7))
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            for t in &mut threads {
                for _ in 0..100 {
                    acc ^= t.next_uop().pc;
                }
            }
            black_box(acc)
        })
    });

    h.finish();
}
