//! One Criterion bench per table and figure of the paper.
//!
//! Analytic tables (1, 2, Figure 6) are benchmarked at full fidelity; the
//! simulation-backed figures (2, 7, 8, 9, 10, and the RCA statistics) run
//! a scaled-down single-seed plan per iteration so `cargo bench` stays
//! tractable — the full-scale numbers come from the `experiments` binary
//! (see `EXPERIMENTS.md`).

use cgct::StorageModel;
use cgct_interconnect::{DistanceClass, LatencyModel};
use cgct_system::{run_once, CoherenceMode, RunPlan, SystemConfig};
use cgct_workloads::by_name;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A per-iteration plan small enough for Criterion.
fn bench_plan() -> RunPlan {
    RunPlan {
        warmup_per_core: 4_000,
        instructions_per_core: 4_000,
        max_cycles: 4_000_000,
        runs: 1,
        base_seed: 1,
    }
}

fn run(mode: CoherenceMode, bench: &str, seed: u64) -> f64 {
    let cfg = SystemConfig::paper_default(mode);
    let spec = by_name(bench).expect("benchmark");
    let plan = bench_plan();
    let r = run_once(&cfg, &spec, seed, &plan);
    r.runtime_cycles as f64
}

fn table1_region_states(c: &mut Criterion) {
    c.bench_function("table1_region_state_rules", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in cgct::RegionState::ALL {
                for req in [
                    cgct_cache::ReqKind::Read,
                    cgct_cache::ReqKind::ReadShared,
                    cgct_cache::ReqKind::ReadExclusive,
                    cgct_cache::ReqKind::Upgrade,
                    cgct_cache::ReqKind::Writeback,
                    cgct_cache::ReqKind::Dcbz,
                ] {
                    acc += s.permission(req) as usize;
                }
            }
            black_box(acc)
        })
    });
}

fn table2_storage_overhead(c: &mut Criterion) {
    c.bench_function("table2_storage_overhead", |b| {
        let m = StorageModel::paper_default();
        b.iter(|| black_box(m.table2()))
    });
}

fn fig6_latency_scenarios(c: &mut Criterion) {
    c.bench_function("fig6_latency_scenarios", |b| {
        let lat = LatencyModel::paper_default();
        b.iter(|| {
            let mut acc = 0u64;
            for d in DistanceClass::ALL {
                acc += lat.snoop_memory_access(d) + lat.direct_memory_access(d);
            }
            black_box(acc)
        })
    });
}

fn fig2_oracle_classification(c: &mut Criterion) {
    // Figure 2 is measured on a baseline run with the oracle classifier.
    c.bench_function("fig2_baseline_oracle_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(CoherenceMode::Baseline, "tpc-w", seed))
        })
    });
}

fn fig7_broadcast_avoidance(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_avoidance_by_region_size");
    g.sample_size(10);
    for region in [256u64, 512, 1024] {
        g.bench_function(format!("cgct_{region}B_specjbb"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run(
                    CoherenceMode::Cgct {
                        region_bytes: region,
                        sets: 8192,
                    },
                    "specjbb2000",
                    seed,
                ))
            })
        });
    }
    g.finish();
}

fn fig8_runtime_reduction(c: &mut Criterion) {
    // Figure 8's quantity is the runtime ratio between these two runs.
    let mut g = c.benchmark_group("fig8_runtime");
    g.sample_size(10);
    g.bench_function("baseline_tpcw", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(CoherenceMode::Baseline, "tpc-w", seed))
        })
    });
    g.bench_function("cgct512_tpcw", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(
                CoherenceMode::Cgct {
                    region_bytes: 512,
                    sets: 8192,
                },
                "tpc-w",
                seed,
            ))
        })
    });
    g.finish();
}

fn fig9_half_size_rca(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_half_size_rca");
    g.sample_size(10);
    g.bench_function("cgct512_4096sets_ocean", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(
                CoherenceMode::Cgct {
                    region_bytes: 512,
                    sets: 4096,
                },
                "ocean",
                seed,
            ))
        })
    });
    g.finish();
}

fn fig10_traffic(c: &mut Criterion) {
    // Figure 10 measures broadcasts per interval; the run itself is the
    // cost being benchmarked here.
    let mut g = c.benchmark_group("fig10_traffic");
    g.sample_size(10);
    g.bench_function("baseline_barnes_traffic", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run(CoherenceMode::Baseline, "barnes", seed))
        })
    });
    g.finish();
}

fn table34_workload_generation(c: &mut Criterion) {
    // Tables 3 and 4 are configuration/benchmarks; this measures the
    // workload generators' throughput across all nine specs.
    use cgct_cpu::UopSource;
    use cgct_workloads::{all_benchmarks, WorkloadThread};
    c.bench_function("table4_workload_generation", |b| {
        let mut threads: Vec<WorkloadThread> = all_benchmarks()
            .into_iter()
            .map(|s| WorkloadThread::new(s, 0, 4, 7))
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            for t in &mut threads {
                for _ in 0..100 {
                    acc ^= t.next_uop().pc;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        table1_region_states,
        table2_storage_overhead,
        fig6_latency_scenarios,
        fig2_oracle_classification,
        fig7_broadcast_avoidance,
        fig8_runtime_reduction,
        fig9_half_size_rca,
        fig10_traffic,
        table34_workload_generation
}
criterion_main!(figures);
