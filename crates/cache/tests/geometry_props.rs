//! Property tests for address geometry and the line protocol.

use cgct_cache::{
    requester_next_state, snoop_line, Addr, Geometry, LineSnoopResponse, MoesiState, ReqKind,
};
use proptest::prelude::*;

fn geometries() -> impl Strategy<Value = Geometry> {
    (6u32..9, 0u32..5)
        .prop_map(|(line_log, extra)| Geometry::new(1 << line_log, 1 << (line_log + extra)))
}

fn any_state() -> impl Strategy<Value = MoesiState> {
    prop_oneof![
        Just(MoesiState::Modified),
        Just(MoesiState::Owned),
        Just(MoesiState::Exclusive),
        Just(MoesiState::Shared),
        Just(MoesiState::Invalid),
    ]
}

fn any_req() -> impl Strategy<Value = ReqKind> {
    prop_oneof![
        Just(ReqKind::Read),
        Just(ReqKind::ReadShared),
        Just(ReqKind::ReadExclusive),
        Just(ReqKind::Upgrade),
        Just(ReqKind::Writeback),
        Just(ReqKind::Dcbz),
    ]
}

proptest! {
    #[test]
    fn line_and_region_mappings_are_consistent(g in geometries(), addr in 0u64..(1 << 40)) {
        let a = Addr(addr);
        let line = g.line_of(a);
        let region = g.region_of(a);
        // The line's region is the address's region.
        prop_assert_eq!(g.region_of_line(line), region);
        // The line base maps back to the same line, ditto regions.
        prop_assert_eq!(g.line_of(g.line_base(line)), line);
        prop_assert_eq!(g.region_of(g.region_base(region)), region);
        // The line is enumerated by its region, exactly once.
        let hits = g.lines_in_region(region).filter(|&l| l == line).count();
        prop_assert_eq!(hits, 1);
        // Index within region is within bounds and consistent.
        prop_assert!(g.line_index_in_region(line) < g.lines_per_region());
    }

    #[test]
    fn lines_per_region_matches_enumeration(g in geometries(), region in 0u64..(1 << 25)) {
        let r = cgct_cache::RegionAddr(region);
        prop_assert_eq!(
            g.lines_in_region(r).count() as u64,
            g.lines_per_region()
        );
        // All enumerated lines belong to the region.
        for l in g.lines_in_region(r) {
            prop_assert_eq!(g.region_of_line(l), r);
        }
    }

    #[test]
    fn snoop_never_leaves_writable_copies_behind_invalidating_requests(
        s in any_state(),
        req in any_req(),
    ) {
        let out = snoop_line(s, req);
        if req.invalidates_others() {
            prop_assert_eq!(out.next, MoesiState::Invalid);
        }
        // Snooping never upgrades a copy's write permission.
        prop_assert!(!out.next.can_silently_modify() || s.can_silently_modify());
    }

    #[test]
    fn requester_and_snooper_states_always_compatible(
        states in prop::collection::vec(any_state(), 1..4),
        req in any_req(),
    ) {
        // Merge the snoop outcome across an arbitrary set of snoopers and
        // check the requester's fill never creates a second writable copy.
        let mut resp = LineSnoopResponse::default();
        let mut nexts = Vec::new();
        for &s in &states {
            let out = snoop_line(s, req);
            resp.merge(out.response);
            nexts.push(out.next);
        }
        if let Some(fill) = requester_next_state(req, resp) {
            if fill.can_silently_modify() {
                for (&_before, &after) in states.iter().zip(&nexts) {
                    prop_assert_eq!(after, MoesiState::Invalid,
                        "requester fills {:?} but a snooper kept {:?}", fill, after);
                }
            }
            if fill == MoesiState::Exclusive {
                // E fill only when nobody reported a copy.
                prop_assert!(!resp.shared);
            }
        }
    }
}
